"""Sweep the fusion window M and reproduce the Table 1 trend interactively.

The multi-frame fusion parameter ``M`` (Eq. 3) controls how many consecutive
frames are merged: ``2M + 1``.  This example trains the baseline CNN for each
``M`` in a small sweep and prints the resulting MAE per axis — a compact,
configurable version of the Table 1 experiment that is convenient for
exploring other operating points (different movements, sparser radars,
larger windows).

Run with::

    python examples/fusion_sweep.py [--seconds 6] [--epochs 20] [--max-m 3]
"""

from __future__ import annotations

import argparse

from repro.core import FuseConfig, FusePoseEstimator, TrainingConfig
from repro.dataset import SyntheticDatasetConfig, generate_dataset, per_movement_split
from repro.viz import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seconds", type=float, default=6.0, help="seconds per (subject, movement) pair")
    parser.add_argument("--epochs", type=int, default=20, help="training epochs per fusion setting")
    parser.add_argument("--max-m", type=int, default=2, help="largest fusion parameter M to sweep")
    args = parser.parse_args()

    dataset = generate_dataset(SyntheticDatasetConfig(seconds_per_pair=args.seconds, seed=3))
    split = per_movement_split(dataset)
    print(f"dataset: {len(dataset)} frames, train/val/test = {split.sizes()}")

    rows = []
    for m in range(args.max_m + 1):
        estimator = FusePoseEstimator(
            FuseConfig(
                num_context_frames=m,
                training=TrainingConfig(epochs=args.epochs, batch_size=128),
                model_seed=0,
            )
        )
        train_arrays = estimator.prepare(split.train)
        test_arrays = estimator.prepare(split.test)
        print(f"training with M={m} (window of {2 * m + 1} frames)...")
        estimator.fit_supervised(train_arrays)
        report = estimator.evaluate(test_arrays)
        rows.append([f"{2 * m + 1} frame(s)", report.mae_x, report.mae_y, report.mae_z, report.mae_average])

    print()
    print(
        format_table(
            ["fusion window", "X (cm)", "Y (cm)", "Z (cm)", "Average (cm)"],
            rows,
            title="Frame-fusion sweep (compare with Table 1 of the paper)",
        )
    )


if __name__ == "__main__":
    main()

"""Quickstart: train FUSE on synthetic mmWave data and estimate a pose.

This is the five-minute tour of the library:

1. generate a small MARS-like synthetic dataset (mmWave point clouds labelled
   with 19-joint skeletons),
2. fuse frames and train the pose-estimation CNN,
3. run inference on held-out frames and print the error,
4. render the predicted and ground-truth skeletons as ASCII art.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core import FuseConfig, FusePoseEstimator, TrainingConfig
from repro.dataset import SyntheticDatasetConfig, generate_dataset, per_movement_split, summarize
from repro.viz import render_skeleton


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Generate a small labelled dataset (2 subjects x 3 movements).
    # ------------------------------------------------------------------
    dataset_config = SyntheticDatasetConfig(
        subject_ids=(1, 2),
        movement_names=("squat", "left_upper_limb_extension", "right_front_lunge"),
        seconds_per_pair=8.0,
        seed=7,
    )
    dataset = generate_dataset(dataset_config)
    print("Synthetic mmWave pose dataset")
    print(summarize(dataset).as_text())
    print()

    # ------------------------------------------------------------------
    # 2. Fuse three frames (M = 1) and train the CNN.
    # ------------------------------------------------------------------
    split = per_movement_split(dataset)
    estimator = FusePoseEstimator(
        FuseConfig(num_context_frames=1, training=TrainingConfig(epochs=20, batch_size=128))
    )
    train_arrays = estimator.prepare(split.train)
    validation_arrays = estimator.prepare(split.validation)
    print(f"Training on {len(train_arrays)} fused frames "
          f"({estimator.model.num_parameters():,} parameters)...")
    estimator.fit_supervised(train_arrays, validation_arrays, verbose=True)

    # ------------------------------------------------------------------
    # 3. Evaluate on the held-out test partition.
    # ------------------------------------------------------------------
    test_arrays = estimator.prepare(split.test)
    report = estimator.evaluate(test_arrays)
    print("\nTest-set mean absolute error:", report.as_row())

    # ------------------------------------------------------------------
    # 4. Predict one frame and draw it next to the ground truth.
    # ------------------------------------------------------------------
    sample_index = len(split.test) // 2
    sample = split.test[sample_index]
    predicted = estimator.predict(split.test[sample_index : sample_index + 1])[0]
    print()
    print(render_skeleton(
        sample.joints,
        title=f"ground truth ({sample.movement_name}, subject {sample.subject_id})",
    ))
    print()
    print(render_skeleton(predicted, title="FUSE prediction"))
    error_cm = 100 * np.abs(predicted - sample.joints).mean()
    print(f"\nMean absolute error on this frame: {error_cm:.1f} cm")


if __name__ == "__main__":
    main()

"""Drive the ``fuse-serve`` socket front-end end to end over a Unix socket.

This example is the full network serving story:

1. launch ``fuse-experiment fuse-serve`` in a separate process — it trains a
   small estimator on synthetic data, starts a
   :class:`repro.serve.ProcessShardedPoseServer` (one worker process per
   shard) and listens on a Unix-domain socket;
2. connect one :class:`repro.serve.AsyncPoseClient` per simulated user and
   stream every user's frames concurrently with asyncio — frames travel as
   length-prefixed msgpack/JSON messages (see ``docs/serving.md``);
3. fetch the aggregated serving metrics and the Prometheus exposition over
   the same socket, then ask the front-end to shut down.

Run with::

    python examples/serving_frontend.py
"""

from __future__ import annotations

import asyncio
import os
import subprocess
import sys
import tempfile
import time

import numpy as np

from repro.dataset import SyntheticDatasetConfig, generate_dataset
from repro.serve import AsyncPoseClient, user_streams_from_dataset

NUM_USERS = 8
FRAMES_PER_USER = 10
NUM_SHARDS = 2


def launch_frontend(socket_path: str) -> subprocess.Popen:
    """Start ``fuse-serve`` exactly as an operator would, as a subprocess."""
    command = [
        sys.executable,
        "-m",
        "repro.experiments.cli",
        "fuse-serve",
        "--unix",
        socket_path,
        "--shards",
        str(NUM_SHARDS),
        "--train-seconds",
        "6.0",
        "--train-epochs",
        "2",
        "--allow-remote-shutdown",
    ]
    return subprocess.Popen(command)


def wait_for_socket(path: str, process: subprocess.Popen, timeout_s: float = 300.0) -> None:
    """Block until the front-end binds its socket (training happens first)."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if os.path.exists(path):
            return
        if process.poll() is not None:
            raise RuntimeError(f"fuse-serve exited early with code {process.returncode}")
        time.sleep(0.2)
    raise TimeoutError(f"front-end did not bind {path} within {timeout_s:.0f}s")


async def stream_user(socket_path: str, user_id: str, frames) -> np.ndarray:
    """One user's connection: submit every frame in order, collect joints."""
    async with AsyncPoseClient() as client:
        await client.connect_unix(socket_path)
        predictions = [await client.submit(user_id, sample.cloud) for sample in frames]
    return np.stack(predictions)


async def drive(socket_path: str) -> None:
    # The client slices its own copy of the synthetic dataset into user
    # streams — same generator, same seed, so frames are realistic mmWave
    # clouds rather than random noise.
    dataset = generate_dataset(
        SyntheticDatasetConfig(
            subject_ids=(1, 2),
            movement_names=("squat", "right_limb_extension"),
            seconds_per_pair=6.0,
            seed=5,
        )
    )
    streams = user_streams_from_dataset(
        dataset, num_users=NUM_USERS, frames_per_user=FRAMES_PER_USER
    )

    async with AsyncPoseClient() as admin:
        await admin.connect_unix(socket_path)
        hello = await admin.hello()
        print(f"Connected: protocol v{hello['protocol']}, codecs {hello['codecs']}, "
              f"{hello['shards']} shard(s)")

        start = time.perf_counter()
        results = await asyncio.gather(
            *(stream_user(socket_path, user, frames) for user, frames in streams.items())
        )
        wall = time.perf_counter() - start
        total = sum(len(frames) for frames in streams.values())
        print(f"\nServed {total} frames from {len(streams)} concurrent users "
              f"in {wall:.2f}s ({total / wall:,.0f} frames/s over the socket)")

        errors = []
        for (user, frames), predicted in zip(streams.items(), results):
            labels = np.stack([sample.joints for sample in frames])
            errors.append(np.abs(predicted - labels).mean())
        print(f"Mean absolute joint error over the wire: {np.mean(errors) * 100:.2f} cm")

        metrics = await admin.metrics()
        print("\nAggregated serving metrics (via the socket):")
        for key in ("submitted", "completed", "flushes", "mean_batch_size",
                    "latency_p50_ms", "latency_p95_ms", "shards", "shard_restarts"):
            print(f"  {key:20s} {metrics[key]:10.3f}")

        prometheus = await admin.prometheus()
        print("\nPrometheus exposition (first lines):")
        print("\n".join(prometheus.splitlines()[:6]))

        await admin.shutdown()
        print("\nSent shutdown; front-end is draining.")


def main() -> None:
    socket_dir = tempfile.mkdtemp(prefix="fuse-serve-")
    socket_path = os.path.join(socket_dir, "fuse.sock")
    process = launch_frontend(socket_path)
    try:
        wait_for_socket(socket_path, process)
        asyncio.run(drive(socket_path))
        process.wait(timeout=60)
    finally:
        if process.poll() is None:
            process.terminate()
            process.wait(timeout=10)
    print("Front-end exited cleanly." if process.returncode == 0
          else f"Front-end exit code: {process.returncode}")


if __name__ == "__main__":
    main()

"""Drive the ``fuse-serve`` socket front-end end to end over TCP.

This example is the full network serving story, protocol v2 edition:

1. launch ``fuse-experiment fuse-serve`` in a separate process with
   ``--port 0`` — it trains a small estimator on synthetic data, starts a
   :class:`repro.serve.ProcessShardedPoseServer` (one worker process per
   shard), binds a kernel-assigned TCP port and prints a
   ``[fuse-serve] ready tcp=HOST:PORT`` line.  Waiting for that line (and
   connecting with bounded-backoff retries) makes the hand-off race-free —
   no sleeps, no socket-file polling;
2. stream every user's frames concurrently over **one pipelined
   connection per user** (:meth:`AsyncPoseClient.submit_many` with a
   bounded in-flight window), then replay the same traffic as **batched
   submits** — 50 frames per wire frame in one contiguous ndarray block —
   so the server's cross-user micro-batcher sees real batches;
3. fetch the aggregated serving metrics and the Prometheus exposition over
   the same socket, then ask the front-end to shut down.

Run with::

    python examples/serving_frontend.py
"""

from __future__ import annotations

import asyncio
import subprocess
import sys
import time

import numpy as np

from repro.dataset import SyntheticDatasetConfig, generate_dataset
from repro.serve import AsyncPoseClient, parse_ready_line, user_streams_from_dataset

NUM_USERS = 8
FRAMES_PER_USER = 10
NUM_SHARDS = 2
MAX_IN_FLIGHT = 8


def launch_frontend() -> subprocess.Popen:
    """Start ``fuse-serve`` exactly as an operator would, as a subprocess."""
    command = [
        sys.executable,
        "-m",
        "repro.experiments.cli",
        "fuse-serve",
        "--host",
        "127.0.0.1",
        "--port",
        "0",
        "--shards",
        str(NUM_SHARDS),
        "--train-seconds",
        "6.0",
        "--train-epochs",
        "2",
        "--allow-remote-shutdown",
    ]
    return subprocess.Popen(command, stdout=subprocess.PIPE, text=True)


def wait_for_ready(process: subprocess.Popen) -> tuple[str, int]:
    """Read stdout until the ready line reports the bound host and port."""
    assert process.stdout is not None
    for line in process.stdout:
        print(line, end="")  # pass training progress through
        address = parse_ready_line(line)
        if address is not None and address.kind == "tcp":
            return address.host, address.port
    raise RuntimeError(f"fuse-serve exited early with code {process.wait()}")


async def stream_user(host: str, port: int, user_id: str, frames) -> np.ndarray:
    """One user's pipelined connection: a bounded window of in-flight frames."""
    async with AsyncPoseClient() as client:
        await client.connect_tcp(host, port, retries=5)
        predictions = await client.submit_many(
            user_id, [sample.cloud for sample in frames], max_in_flight=MAX_IN_FLIGHT
        )
    return np.stack(predictions)


async def drive(host: str, port: int) -> None:
    # The client slices its own copy of the synthetic dataset into user
    # streams — same generator, same seed, so frames are realistic mmWave
    # clouds rather than random noise.
    dataset = generate_dataset(
        SyntheticDatasetConfig(
            subject_ids=(1, 2),
            movement_names=("squat", "right_limb_extension"),
            seconds_per_pair=6.0,
            seed=5,
        )
    )
    streams = user_streams_from_dataset(
        dataset, num_users=NUM_USERS, frames_per_user=FRAMES_PER_USER
    )
    total = sum(len(frames) for frames in streams.values())

    async with AsyncPoseClient() as admin:
        await admin.connect_tcp(host, port, retries=5)
        hello = await admin.hello()
        print(
            f"Connected: protocol v{hello['protocol']}, codecs {hello['codecs']}, "
            f"{hello['shards']} shard(s), window {hello['max_in_flight']}"
        )

        start = time.perf_counter()
        results = await asyncio.gather(
            *(stream_user(host, port, user, frames) for user, frames in streams.items())
        )
        wall = time.perf_counter() - start
        print(
            f"\nPipelined: {total} frames from {len(streams)} users, one "
            f"connection each ({MAX_IN_FLIGHT} in flight) in {wall:.2f}s "
            f"({total / wall:,.0f} frames/s over the socket)"
        )

        errors = []
        for (user, frames), predicted in zip(streams.items(), results):
            labels = np.stack([sample.joints for sample in frames])
            errors.append(np.abs(predicted - labels).mean())
        print(f"Mean absolute joint error over the wire: {np.mean(errors) * 100:.2f} cm")

        # The same traffic again, now as one submit_batch per tick: every
        # wire frame carries one frame per user in a contiguous ndarray
        # block, so the micro-batcher coalesces the whole cohort at once.
        start = time.perf_counter()
        for tick in range(FRAMES_PER_USER):
            await admin.submit_batch(
                [(user, streams[user][tick].cloud) for user in streams]
            )
        wall = time.perf_counter() - start
        print(
            f"Batched submits: {total} frames in {FRAMES_PER_USER} wire frames "
            f"in {wall:.2f}s ({total / wall:,.0f} frames/s over the socket)"
        )

        metrics = await admin.metrics()
        print("\nAggregated serving metrics (via the socket):")
        for key in ("submitted", "completed", "flushes", "mean_batch_size",
                    "latency_p50_ms", "latency_p95_ms", "shards", "shard_restarts"):
            print(f"  {key:20s} {metrics[key]:10.3f}")

        prometheus = await admin.prometheus()
        print("\nPrometheus exposition (first lines):")
        print("\n".join(prometheus.splitlines()[:6]))

        await admin.shutdown()
        print("\nSent shutdown; front-end is draining.")


def main() -> None:
    process = launch_frontend()
    try:
        host, port = wait_for_ready(process)
        asyncio.run(drive(host, port))
        # Drain the pipe and wait, with a bound: a wedged server must hit
        # the terminate path in the finally block, not block forever here.
        remaining, _ = process.communicate(timeout=60)
        print(remaining, end="")
    finally:
        if process.poll() is None:
            process.terminate()
            process.wait(timeout=10)
    print("Front-end exited cleanly." if process.returncode == 0
          else f"Front-end exit code: {process.returncode}")


if __name__ == "__main__":
    main()

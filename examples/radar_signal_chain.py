"""Inside the radar: from FMCW chirps to an Eq. 1 point cloud.

The FUSE paper consumes point clouds produced by a TI IWR1443 radar.  This
example walks through the simulated signal chain that stands in for that
device here, step by step:

1. pose a human body (squat) and sample surface scatterers,
2. synthesize the FMCW beat-signal data cube (fast time x chirps x antennas),
3. apply the range FFT and Doppler FFT,
4. detect reflections with CA-CFAR,
5. estimate angles and build the point cloud,
6. compare the result with the fast geometric backend used for dataset
   generation, and render both as ASCII front views.

Run with::

    python examples/radar_signal_chain.py
"""

from __future__ import annotations

import numpy as np

from repro.body import BodyScatteringModel, MotionSynthesizer, default_subjects
from repro.radar import (
    CfarConfig,
    RadarConfig,
    detect_peaks,
    detections_to_points,
    make_pipeline,
    range_doppler_processing,
    synthesize_data_cube,
    targets_from_scatterers,
)
from repro.viz import render_point_cloud


def main() -> None:
    config = RadarConfig()
    print("Radar configuration")
    print(" ", config.describe())

    # ------------------------------------------------------------------
    # 1. Pose the body and sample scatterers.
    # ------------------------------------------------------------------
    subject = default_subjects()[0]
    trajectory = MotionSynthesizer().synthesize(
        subject, "squat", duration=5.0, rng=np.random.default_rng(3)
    )
    frame_index = 25  # mid-squat
    positions, velocities = trajectory.frame(frame_index)
    scatterers = BodyScatteringModel().scatterers(positions, velocities, np.random.default_rng(4))
    print(f"\nBody model: {len(scatterers)} surface scatterers at "
          f"{positions[:, 1].mean():.1f} m standoff")

    # ------------------------------------------------------------------
    # 2-3. Beat-signal synthesis and range/Doppler processing.
    # ------------------------------------------------------------------
    scene = targets_from_scatterers(scatterers, config)
    cube = synthesize_data_cube(scene, config, rng=np.random.default_rng(5))
    print(f"Data cube: {cube.samples.shape} complex samples "
          f"(samples x chirps x azimuth x elevation antennas)")

    rd_map = range_doppler_processing(cube)
    occupied_range = np.argmax(rd_map.power.sum(axis=1))
    print(f"Range-Doppler map: {rd_map.power.shape}, strongest range bin "
          f"{occupied_range} = {rd_map.range_of_bin(int(occupied_range)):.2f} m")

    # ------------------------------------------------------------------
    # 4-5. CFAR detection and angle estimation.
    # ------------------------------------------------------------------
    detections = detect_peaks(rd_map.power, CfarConfig())
    points = detections_to_points(rd_map, detections, config)
    points[:, 2] += config.radar_height  # radar frame -> world frame
    print(f"CA-CFAR detections: {len(detections)} -> {points.shape[0]} point-cloud points")

    from repro.radar import PointCloudFrame

    signal_frame = PointCloudFrame(points, frame_index=frame_index)

    # ------------------------------------------------------------------
    # 6. Compare with the geometric backend.
    # ------------------------------------------------------------------
    geometric_frame = make_pipeline("geometric", config=config).process_scatterers(
        scatterers, np.random.default_rng(6), frame_index=frame_index
    )

    print()
    print(render_point_cloud(signal_frame, title="full FMCW signal-chain backend"))
    print()
    print(render_point_cloud(geometric_frame, title="fast geometric backend"))
    print(
        "\nBoth backends place the reflections on the subject "
        f"(signal-chain centroid {signal_frame.centroid().round(2)}, "
        f"geometric centroid {geometric_frame.centroid().round(2)}); the geometric backend "
        "is the one used to generate the large training datasets."
    )


if __name__ == "__main__":
    main()

"""Bonus scenario: movement (activity) recognition from mmWave point clouds.

The related-work section of the paper points out that earlier mmWave systems
(e.g. RadHAR) solved coarse-grained problems such as activity recognition.
This example shows that the same substrates built for FUSE — the radar
simulator, the body model and the feature maps — also support that simpler
task: a small CNN classifies *which rehabilitation movement* is being
performed from a short window of fused point clouds.

It also illustrates how to extend the library with a new model head (a
classifier) on top of the existing `repro.nn` framework.

Run with::

    python examples/activity_recognition.py
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.body import MOVEMENT_NAMES
from repro.core import FrameFusion
from repro.dataset import (
    FeatureMapBuilder,
    SyntheticDatasetConfig,
    generate_dataset,
    per_movement_split,
)
from repro.viz import format_table

MOVEMENTS = ("squat", "left_upper_limb_extension", "right_front_lunge", "left_side_lunge")


def build_classifier(num_classes: int, seed: int = 0) -> nn.Module:
    """A compact CNN classifier over the same 8x8x5 feature maps."""
    rng = np.random.default_rng(seed)
    return nn.Sequential(
        nn.Conv2d(5, 16, 3, padding=1, rng=rng),
        nn.ReLU(),
        nn.Conv2d(16, 16, 3, padding=1, rng=rng),
        nn.ReLU(),
        nn.Flatten(),
        nn.Linear(16 * 8 * 8, 128, rng=rng),
        nn.ReLU(),
        nn.Linear(128, num_classes, rng=rng),
    )


def featurize(dataset, builder, fusion):
    """Fused feature maps plus integer movement labels."""
    fused = fusion.fuse_dataset(dataset)
    features = builder.build_batch(sample.cloud for sample in fused)
    labels = np.array([MOVEMENTS.index(sample.movement_name) for sample in fused])
    return features, labels


def accuracy(model, features, labels) -> float:
    with nn.no_grad():
        logits = model(nn.Tensor(features)).numpy()
    return float((logits.argmax(axis=1) == labels).mean())


def main() -> None:
    dataset = generate_dataset(
        SyntheticDatasetConfig(
            subject_ids=(1, 2, 3),
            movement_names=MOVEMENTS,
            seconds_per_pair=8.0,
            seed=21,
        )
    )
    split = per_movement_split(dataset)
    builder = FeatureMapBuilder()
    fusion = FrameFusion(num_context_frames=1)

    train_x, train_y = featurize(split.train, builder, fusion)
    test_x, test_y = featurize(split.test, builder, fusion)
    print(f"training frames: {len(train_y)}, test frames: {len(test_y)}, "
          f"classes: {len(MOVEMENTS)} of {len(MOVEMENT_NAMES)} movements")

    model = build_classifier(num_classes=len(MOVEMENTS))
    optimizer = nn.Adam(model.parameters(), lr=1e-3)

    batch_size = 128
    for epoch in range(1, 13):
        order = np.random.default_rng(epoch).permutation(len(train_y))
        losses = []
        for start in range(0, len(order), batch_size):
            batch = order[start : start + batch_size]
            optimizer.zero_grad()
            logits = model(nn.Tensor(train_x[batch]))
            loss = nn.cross_entropy_loss(logits, train_y[batch])
            loss.backward()
            optimizer.step()
            losses.append(loss.item())
        print(f"epoch {epoch:2d}: loss {np.mean(losses):.3f} "
              f"train acc {accuracy(model, train_x, train_y):.2%} "
              f"test acc {accuracy(model, test_x, test_y):.2%}")

    # Per-class report.
    with nn.no_grad():
        predictions = model(nn.Tensor(test_x)).numpy().argmax(axis=1)
    rows = []
    for index, movement in enumerate(MOVEMENTS):
        mask = test_y == index
        rows.append([movement, int(mask.sum()), float((predictions[mask] == index).mean())])
    print()
    print(format_table(["movement", "test frames", "accuracy"], rows,
                       title="Per-movement recognition accuracy"))


if __name__ == "__main__":
    main()

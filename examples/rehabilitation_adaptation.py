"""Rehabilitation scenario: adapting to a new patient with a few frames.

The paper motivates FUSE with home rehabilitation: a pose-estimation model is
shipped pre-trained, and then a *new* patient — never seen during training —
starts exercising in front of the radar.  Only a handful of labelled frames
of the new patient can realistically be collected (e.g. during a short
calibration session supervised by a clinician), so the model must adapt from
very little data without forgetting the patients it already supports.

This example runs that exact workflow:

1. meta-train FUSE offline on three subjects and nine movements,
2. deploy it for a new patient (subject 4) doing an unseen movement
   ("right limb extension"),
3. fine-tune on a few seconds of calibration frames,
4. compare the error before and after adaptation, for the new patient and
   for the original training distribution.

Run with::

    python examples/rehabilitation_adaptation.py
"""

from __future__ import annotations

from repro.core import (
    FineTuneConfig,
    FuseConfig,
    FusePoseEstimator,
    MetaLearningConfig,
)
from repro.dataset import SyntheticDatasetConfig, generate_dataset, leave_out_split
from repro.viz import format_table


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Offline: meta-train on the existing patients.
    # ------------------------------------------------------------------
    dataset = generate_dataset(SyntheticDatasetConfig(seconds_per_pair=6.0, seed=11))
    split = leave_out_split(
        dataset,
        held_out_subject=4,
        held_out_movement="right_limb_extension",
        finetune_frames=40,
    )
    print(split.describe())

    estimator = FusePoseEstimator(
        FuseConfig(
            num_context_frames=1,
            meta=MetaLearningConfig(
                meta_iterations=80,
                tasks_per_batch=4,
                support_size=48,
                query_size=48,
                warmstart_epochs=8,
            ),
            finetune=FineTuneConfig(epochs=10, scope="all"),
        )
    )
    train_arrays = estimator.prepare(split.train)
    print(f"\nMeta-training on {len(train_arrays)} fused frames...")
    estimator.fit_meta(train_arrays)

    # ------------------------------------------------------------------
    # 2. Deployment: a new patient appears.
    # ------------------------------------------------------------------
    calibration = estimator.prepare(split.finetune)
    new_patient_eval = estimator.prepare(split.evaluation)
    original_eval = estimator.prepare(split.original_eval)

    before_new = estimator.evaluate(new_patient_eval).mae_average
    before_original = estimator.evaluate(original_eval).mae_average

    # ------------------------------------------------------------------
    # 3. Online: adapt with the calibration frames.
    # ------------------------------------------------------------------
    print(f"Adapting on {len(calibration)} calibration frames "
          f"({len(calibration) / 10:.0f} seconds of data)...")
    result = estimator.adapt(
        calibration,
        evaluation_sets={"new patient": new_patient_eval, "original patients": original_eval},
    )

    after_new = result.curves["new patient"][-1]
    after_original = result.curves["original patients"][-1]

    # ------------------------------------------------------------------
    # 4. Report.
    # ------------------------------------------------------------------
    print()
    print(
        format_table(
            ["evaluation set", "before adaptation (cm)", "after adaptation (cm)"],
            [
                ["new patient, unseen movement", before_new, after_new],
                ["original training distribution", before_original, after_original],
            ],
            title="Joint-coordinate MAE before/after few-shot adaptation",
        )
    )
    print(
        "\nThe meta-learned initialization adapts to the new patient within "
        f"{len(result.curves['new patient'])} epochs while keeping its accuracy on the "
        "patients it already knew — the property that makes in-home deployment practical."
    )


if __name__ == "__main__":
    main()

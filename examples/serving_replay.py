"""Serving replay: 50 concurrent simulated users against a PoseServer.

This example walks the full serving story:

1. generate a synthetic MARS-like dataset and train a FUSE estimator,
2. stand up an in-process :class:`PoseServer` (streaming fusion, cross-user
   micro-batching, bounded queues),
3. onboard half the users with personal last-layer adaptation — fine-tuned
   for all of them in grouped task-batched calls,
4. replay every user's frame stream interleaved (the worst case for
   batching: consecutive requests always come from different users),
5. compare the micro-batched run against the naive per-user loop and print
   the serving metrics,
6. replay the same streams through a 4-shard :class:`ShardedPoseServer`
   (users hashed onto independent server shards — identical predictions)
   and print the Prometheus text exposition a scrape endpoint would serve.

Run with::

    python examples/serving_replay.py
"""

from __future__ import annotations

import time

from repro.core import FuseConfig, FusePoseEstimator, TrainingConfig
from repro.core.finetune import FineTuneConfig
from repro.dataset import PoseDataset, SyntheticDatasetConfig, generate_dataset
from repro.serve import (
    PoseServer,
    ServeConfig,
    ShardedPoseServer,
    adaptation_split,
    replay_users,
    sequential_reference,
    user_streams_from_dataset,
)

NUM_USERS = 50
NUM_SHARDS = 4


def as_pose_dataset(frames) -> PoseDataset:
    dataset = PoseDataset(name="calibration")
    dataset.extend(frames)
    return dataset


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Data and a quickly trained estimator.
    # ------------------------------------------------------------------
    dataset = generate_dataset(
        SyntheticDatasetConfig(
            subject_ids=(1, 2),
            movement_names=("squat", "right_limb_extension"),
            seconds_per_pair=21.0,
            seed=5,
        )
    )
    estimator = FusePoseEstimator(
        FuseConfig(num_context_frames=1, training=TrainingConfig(epochs=5, batch_size=128))
    )
    print(f"Training on {len(dataset)} synthetic frames...")
    estimator.fit_supervised(estimator.prepare(dataset))

    # ------------------------------------------------------------------
    # 2. The server: micro-batching across users, bounded queues.
    # ------------------------------------------------------------------
    server = PoseServer(
        estimator,
        ServeConfig(max_batch_size=64, max_delay_ms=5.0, max_queue_depth=256),
        adaptation=FineTuneConfig(epochs=3, scope="last"),
    )

    # ------------------------------------------------------------------
    # 3. Simulated users; half get personal last-layer adaptation.
    # ------------------------------------------------------------------
    streams = user_streams_from_dataset(dataset, num_users=NUM_USERS, frames_per_user=15)
    calibration, serving = adaptation_split(streams, adaptation_frames=5)
    personalised = list(serving)[::2]
    print(f"Adapting {len(personalised)} of {NUM_USERS} users (grouped, last layer)...")
    start = time.perf_counter()
    server.adapt_users({user: as_pose_dataset(calibration[user]) for user in personalised})
    print(f"  grouped adaptation took {time.perf_counter() - start:.2f} s")

    # ------------------------------------------------------------------
    # 4. Interleaved replay through the micro-batched server.
    # ------------------------------------------------------------------
    result = replay_users(server, serving)
    print(
        f"\nServed {result.frames_served} frames from {result.num_users} users "
        f"at {result.frames_per_second:,.0f} frames/s "
        f"(MAE {result.mae_cm():.2f} cm, {result.frames_dropped} dropped)"
    )

    # ------------------------------------------------------------------
    # 5. The naive per-user loop as the honest yardstick.
    # ------------------------------------------------------------------
    total = sum(len(stream) for stream in serving.values())
    start = time.perf_counter()
    sequential_reference(estimator, serving)
    naive_fps = total / (time.perf_counter() - start)
    print(f"Naive per-user loop: {naive_fps:,.0f} frames/s "
          f"-> micro-batching speedup {result.frames_per_second / naive_fps:.1f}x")

    print("\nServing metrics:")
    for key, value in sorted(result.metrics.items()):
        print(f"  {key:28s} {value:10.3f}")

    # ------------------------------------------------------------------
    # 6. Multi-shard serving: same users, N independent shards, same bits.
    # ------------------------------------------------------------------
    sharded_server = ShardedPoseServer(
        estimator,
        num_shards=NUM_SHARDS,
        config=ServeConfig(max_batch_size=64, max_delay_ms=5.0, max_queue_depth=256),
        adaptation=FineTuneConfig(epochs=3, scope="last"),
    )
    # Same personalised cohort; each shard adapts its own users in one
    # grouped call, landing on exactly the same personal heads.
    sharded_server.adapt_users(
        {user: as_pose_dataset(calibration[user]) for user in personalised}
    )
    sharded = replay_users(sharded_server, serving)
    import numpy as np

    for user in serving:
        np.testing.assert_array_equal(
            sharded.predictions[user], result.predictions[user]
        )
    print(
        f"\n{NUM_SHARDS}-shard replay: {sharded.frames_served} frames at "
        f"{sharded.frames_per_second:,.0f} frames/s — predictions identical to "
        "the single-server run, user for user."
    )

    print("\nPrometheus exposition (what a /metrics endpoint would serve):")
    print(sharded_server.to_prometheus())


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Benchmark trending: fail CI when throughput regresses vs the baseline.

The slow CI tier regenerates ``BENCH_*.json`` at the repository root.  This
script compares every throughput-like figure (keys containing ``fps``,
``per_sec``, ``tps`` or ``throughput``) in the fresh files against the
committed baseline (``git show <ref>:<file>``) and exits non-zero when any
figure dropped by more than ``--threshold`` (default 30%).

With ``--history DIR`` the script additionally trends against a *rolling
window* of prior benchmark snapshots (e.g. the ``BENCH_*.json`` artifacts of
previous scheduled runs, downloaded into ``DIR/<stem>/``): the fresh figures
are compared against the per-figure median of the window — which is robust
to one noisy run in either direction, unlike the single committed baseline —
and the fresh file is appended to the window afterwards, pruned to
``--history-window`` snapshots.

Usage::

    python scripts/bench_regression.py BENCH_engine.json BENCH_serve.json
    python scripts/bench_regression.py --threshold 0.3 --baseline-ref HEAD BENCH_*.json
    python scripts/bench_regression.py --history .bench-history --run-id "$GITHUB_RUN_ID" \\
        BENCH_engine.json BENCH_serve.json

New figures (present only in the fresh file) and removed figures are
reported but never fail the check, so adding a benchmark does not require a
baseline in the same commit.
"""

from __future__ import annotations

import argparse
import json
import re
import subprocess
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

THROUGHPUT_KEY = re.compile(r"(^|_)(fps|tps|per_sec|throughput)($|_)")

# Machine-context keys a benchmark section may record.  Two runs are only
# comparable where this context matches: a figure measured on 4 cores with
# the "fast" kernel backend says nothing about a 1-core "reference" run, so
# mismatched sections are pruned from the comparison (loudly) instead of
# producing a bogus regression or a bogus pass.
CONTEXT_KEYS = ("cpu_count", "backend")


def section_context(section: dict) -> Dict[str, object]:
    """The machine context a benchmark section recorded (may be empty)."""
    return {key: section[key] for key in CONTEXT_KEYS if key in section}


def split_comparable(
    baseline: dict, fresh: dict
) -> "tuple[dict, dict, List[str]]":
    """Prune sections whose recorded machine context differs between runs.

    Returns ``(baseline, fresh, notices)`` with every section present in
    *both* payloads but carrying a different ``cpu_count``/``backend``
    context removed from both sides — those figures were measured under
    different conditions and must not be trended against each other.  The
    notices describe each pruned section for the run log.  Sections present
    on only one side are left alone (the missing-figure check owns those).
    """
    notices: List[str] = []
    pruned: List[str] = []
    for key in sorted(baseline):
        old, new = baseline.get(key), fresh.get(key)
        if not (isinstance(old, dict) and isinstance(new, dict)):
            continue
        old_ctx, new_ctx = section_context(old), section_context(new)
        if old_ctx != new_ctx:
            pruned.append(key)
            described = ", ".join(
                f"{ctx_key}: {old_ctx.get(ctx_key, '?')} -> {new_ctx.get(ctx_key, '?')}"
                for ctx_key in CONTEXT_KEYS
                if old_ctx.get(ctx_key) != new_ctx.get(ctx_key)
            )
            notices.append(
                f"section '{key}' not compared: machine context differs ({described})"
            )
    if pruned:
        baseline = {key: value for key, value in baseline.items() if key not in pruned}
        fresh = {key: value for key, value in fresh.items() if key not in pruned}
    return baseline, fresh, notices


@dataclass(frozen=True)
class Regression:
    """One throughput figure that dropped beyond the threshold."""

    path: str
    baseline: float
    fresh: float

    @property
    def drop(self) -> float:
        return 1.0 - self.fresh / self.baseline

    def __str__(self) -> str:
        return (
            f"{self.path}: {self.baseline:.2f} -> {self.fresh:.2f} "
            f"({self.drop:+.1%} drop)"
        )


def throughput_figures(payload, prefix: str = "") -> Dict[str, float]:
    """Flatten a benchmark JSON to ``dotted.path -> value`` throughput leaves."""
    figures: Dict[str, float] = {}
    if isinstance(payload, dict):
        for key, value in payload.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            if isinstance(value, (dict, list)):
                figures.update(throughput_figures(value, path))
            elif isinstance(value, (int, float)) and THROUGHPUT_KEY.search(str(key)):
                figures[path] = float(value)
    elif isinstance(payload, list):
        for index, value in enumerate(payload):
            figures.update(throughput_figures(value, f"{prefix}[{index}]"))
    return figures


def compare(baseline: dict, fresh: dict, threshold: float) -> List[Regression]:
    """Throughput figures that dropped by more than ``threshold`` (a fraction)."""
    return compare_figures(
        throughput_figures(baseline), throughput_figures(fresh), threshold
    )


def missing_from_fresh(baseline: dict, fresh: dict) -> List[str]:
    """Readable descriptions of baseline content absent from the fresh run.

    A benchmark section (top-level key) or an individual throughput figure
    that exists in the committed baseline but not in the fresh file means
    the current run silently skipped work the gate is supposed to watch —
    e.g. a renamed section, or a bench that crashed before recording.  The
    caller turns these into check failures with a readable message instead
    of the bare ``KeyError`` a naive lookup would raise.
    """
    problems: List[str] = []
    missing_sections = [
        key
        for key, value in baseline.items()
        if isinstance(value, dict) and key not in fresh
    ]
    for section in sorted(missing_sections):
        problems.append(
            f"section '{section}' exists in the baseline but is missing from "
            "the current run (renamed bench? crashed before recording?)"
        )
    baseline_figures = throughput_figures(baseline)
    fresh_figures = throughput_figures(fresh)
    for path in sorted(baseline_figures):
        section = path.split(".", 1)[0]
        if section in missing_sections:
            continue  # already reported at section granularity
        if path not in fresh_figures:
            problems.append(
                f"throughput figure '{path}' exists in the baseline but is "
                "missing from the current run"
            )
    return problems


def load_baseline(name: str, ref: str) -> Optional[dict]:
    """The committed version of ``name`` at ``ref``, or ``None`` if absent."""
    result = subprocess.run(
        ["git", "show", f"{ref}:{name}"], capture_output=True, text=True
    )
    if result.returncode != 0:
        return None
    try:
        return json.loads(result.stdout)
    except json.JSONDecodeError:
        return None


# ----------------------------------------------------------------------
# Rolling history window
# ----------------------------------------------------------------------
def history_dir_for(history_root: Path, name: str) -> Path:
    """Snapshots of one benchmark file live under ``<root>/<stem>/``."""
    return history_root / Path(name).stem


def load_history(history_root: Path, name: str) -> List[dict]:
    """Every parseable snapshot of ``name``, oldest first (by file name).

    Snapshot names sort chronologically (run ids or UTC timestamps), so a
    plain lexicographic order is the trend order.
    """
    directory = history_dir_for(history_root, name)
    if not directory.is_dir():
        return []
    snapshots: List[dict] = []
    for path in sorted(directory.glob("*.json")):
        try:
            snapshots.append(json.loads(path.read_text()))
        except (OSError, json.JSONDecodeError):
            continue  # a torn artifact must not break the trend check
    return snapshots


def history_baseline(snapshots: List[dict]) -> dict:
    """Per-figure median over a history window, as a flat figure dict.

    The median tolerates a single outlier run in either direction, which a
    lone committed baseline cannot.
    """
    pooled: Dict[str, List[float]] = {}
    for snapshot in snapshots:
        for path, value in throughput_figures(snapshot).items():
            pooled.setdefault(path, []).append(value)
    baseline: Dict[str, float] = {}
    for path, values in pooled.items():
        ordered = sorted(values)
        middle = len(ordered) // 2
        if len(ordered) % 2:
            baseline[path] = ordered[middle]
        else:
            baseline[path] = (ordered[middle - 1] + ordered[middle]) / 2.0
    return baseline


def compare_figures(
    baseline_figures: Dict[str, float], fresh_figures: Dict[str, float], threshold: float
) -> List[Regression]:
    """Like :func:`compare`, over already-flattened figure dicts."""
    if not 0.0 < threshold < 1.0:
        raise ValueError("threshold must be a fraction in (0, 1)")
    regressions: List[Regression] = []
    for path, old in sorted(baseline_figures.items()):
        new = fresh_figures.get(path)
        if new is None or old <= 0:
            continue
        if new < old * (1.0 - threshold):
            regressions.append(Regression(path=path, baseline=old, fresh=new))
    return regressions


def append_history(
    history_root: Path, name: str, fresh: dict, run_id: str, window: int
) -> Path:
    """Add the fresh snapshot to the rolling window and prune the oldest.

    Returns the path the snapshot was written to.  ``window`` bounds the
    number of retained snapshots per benchmark file.  Ordering — both for
    pruning and for :func:`load_history` — is lexicographic on the file
    name, so ``run_id`` must sort chronologically; :func:`main` guarantees
    this by prefixing every id with the UTC timestamp (a raw CI run counter
    would mis-sort when it grows a digit).
    """
    if window < 1:
        raise ValueError("window must be >= 1")
    directory = history_dir_for(history_root, name)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{run_id}.json"
    path.write_text(json.dumps(fresh, indent=2, sort_keys=True) + "\n")
    snapshots = sorted(directory.glob("*.json"))
    while len(snapshots) > window:
        snapshots.pop(0).unlink()
    return path


def default_run_id() -> str:
    """A lexicographically sortable snapshot id (UTC timestamp)."""
    return time.strftime("%Y%m%dT%H%M%SZ", time.gmtime())


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="+", help="fresh BENCH_*.json files to check")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.30,
        help="maximum tolerated fractional throughput drop (default 0.30)",
    )
    parser.add_argument(
        "--baseline-ref",
        default="HEAD",
        help="git ref holding the baseline files (default HEAD)",
    )
    parser.add_argument(
        "--history",
        type=Path,
        default=None,
        help="directory of prior benchmark snapshots (e.g. downloaded workflow "
        "artifacts); enables the rolling-window trend check",
    )
    parser.add_argument(
        "--history-window",
        type=int,
        default=10,
        help="snapshots retained per benchmark file in the history (default 10)",
    )
    parser.add_argument(
        "--run-id",
        default=None,
        help="snapshot id suffix for the history entry (e.g. the CI run id); "
        "the UTC timestamp is always prefixed so the window sorts "
        "chronologically",
    )
    args = parser.parse_args(argv)
    run_id = default_run_id()
    if args.run_id is not None:
        run_id = f"{run_id}-{args.run_id}"

    failures: List[str] = []
    for name in args.files:
        fresh_path = Path(name)
        if not fresh_path.exists():
            print(f"[bench-regression] {name}: fresh file missing, skipping")
            continue
        try:
            fresh = json.loads(fresh_path.read_text())
        except json.JSONDecodeError as error:
            failures.append(f"{name}: fresh file is not valid JSON ({error})")
            continue
        baseline = load_baseline(name, args.baseline_ref)
        if baseline is None:
            print(
                f"[bench-regression] {name}: no baseline at {args.baseline_ref}, skipping"
            )
        else:
            comparable_baseline, comparable_fresh, notices = split_comparable(
                baseline, fresh
            )
            for notice in notices:
                print(f"[bench-regression] {name}: {notice}")
            regressions = compare(comparable_baseline, comparable_fresh, args.threshold)
            checked = len(throughput_figures(comparable_baseline))
            for regression in regressions:
                failures.append(f"{name}: {regression}")
            missing = missing_from_fresh(comparable_baseline, comparable_fresh)
            for problem in missing:
                failures.append(f"{name}: {problem}")
            print(
                f"[bench-regression] {name}: {checked} throughput figures checked, "
                f"{len(regressions)} regressed beyond {args.threshold:.0%}, "
                f"{len(missing)} baseline entries missing from the fresh run"
                + (f", {len(notices)} section(s) skipped (context mismatch)" if notices else "")
            )

        if args.history is None:
            continue
        snapshots = load_history(args.history, name)
        if snapshots:
            comparable_snapshots = []
            snapshot_notices: set = set()
            for snapshot in snapshots:
                pruned_snapshot, _, notices = split_comparable(snapshot, fresh)
                comparable_snapshots.append(pruned_snapshot)
                snapshot_notices.update(notices)
            for notice in sorted(snapshot_notices):
                print(f"[bench-regression] {name} (history): {notice}")
            trend = history_baseline(comparable_snapshots)
            history_regressions = compare_figures(
                trend, throughput_figures(fresh), args.threshold
            )
            for regression in history_regressions:
                failures.append(f"{name} (history median): {regression}")
            print(
                f"[bench-regression] {name}: trend over {len(snapshots)} snapshot(s), "
                f"{len(history_regressions)} regressed beyond {args.threshold:.0%} "
                "of the median"
            )
        else:
            print(f"[bench-regression] {name}: no history yet, starting the window")
        append_history(args.history, name, fresh, run_id, args.history_window)

    if failures:
        print("\nThroughput regressions detected:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python
"""Benchmark trending: fail CI when throughput regresses vs the baseline.

The slow CI tier regenerates ``BENCH_*.json`` at the repository root.  This
script compares every throughput-like figure (keys containing ``fps``,
``per_sec``, ``tps`` or ``throughput``) in the fresh files against the
committed baseline (``git show <ref>:<file>``) and exits non-zero when any
figure dropped by more than ``--threshold`` (default 30%).

Usage::

    python scripts/bench_regression.py BENCH_engine.json BENCH_serve.json
    python scripts/bench_regression.py --threshold 0.3 --baseline-ref HEAD BENCH_*.json

New figures (present only in the fresh file) and removed figures are
reported but never fail the check, so adding a benchmark does not require a
baseline in the same commit.
"""

from __future__ import annotations

import argparse
import json
import re
import subprocess
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

THROUGHPUT_KEY = re.compile(r"(^|_)(fps|tps|per_sec|throughput)($|_)")


@dataclass(frozen=True)
class Regression:
    """One throughput figure that dropped beyond the threshold."""

    path: str
    baseline: float
    fresh: float

    @property
    def drop(self) -> float:
        return 1.0 - self.fresh / self.baseline

    def __str__(self) -> str:
        return (
            f"{self.path}: {self.baseline:.2f} -> {self.fresh:.2f} "
            f"({self.drop:+.1%} drop)"
        )


def throughput_figures(payload, prefix: str = "") -> Dict[str, float]:
    """Flatten a benchmark JSON to ``dotted.path -> value`` throughput leaves."""
    figures: Dict[str, float] = {}
    if isinstance(payload, dict):
        for key, value in payload.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            if isinstance(value, (dict, list)):
                figures.update(throughput_figures(value, path))
            elif isinstance(value, (int, float)) and THROUGHPUT_KEY.search(str(key)):
                figures[path] = float(value)
    elif isinstance(payload, list):
        for index, value in enumerate(payload):
            figures.update(throughput_figures(value, f"{prefix}[{index}]"))
    return figures


def compare(baseline: dict, fresh: dict, threshold: float) -> List[Regression]:
    """Throughput figures that dropped by more than ``threshold`` (a fraction)."""
    if not 0.0 < threshold < 1.0:
        raise ValueError("threshold must be a fraction in (0, 1)")
    regressions: List[Regression] = []
    baseline_figures = throughput_figures(baseline)
    fresh_figures = throughput_figures(fresh)
    for path, old in sorted(baseline_figures.items()):
        new = fresh_figures.get(path)
        if new is None or old <= 0:
            continue
        if new < old * (1.0 - threshold):
            regressions.append(Regression(path=path, baseline=old, fresh=new))
    return regressions


def load_baseline(name: str, ref: str) -> Optional[dict]:
    """The committed version of ``name`` at ``ref``, or ``None`` if absent."""
    result = subprocess.run(
        ["git", "show", f"{ref}:{name}"], capture_output=True, text=True
    )
    if result.returncode != 0:
        return None
    try:
        return json.loads(result.stdout)
    except json.JSONDecodeError:
        return None


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="+", help="fresh BENCH_*.json files to check")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.30,
        help="maximum tolerated fractional throughput drop (default 0.30)",
    )
    parser.add_argument(
        "--baseline-ref",
        default="HEAD",
        help="git ref holding the baseline files (default HEAD)",
    )
    args = parser.parse_args(argv)

    failures: List[str] = []
    for name in args.files:
        fresh_path = Path(name)
        if not fresh_path.exists():
            print(f"[bench-regression] {name}: fresh file missing, skipping")
            continue
        try:
            fresh = json.loads(fresh_path.read_text())
        except json.JSONDecodeError as error:
            failures.append(f"{name}: fresh file is not valid JSON ({error})")
            continue
        baseline = load_baseline(name, args.baseline_ref)
        if baseline is None:
            print(
                f"[bench-regression] {name}: no baseline at {args.baseline_ref}, skipping"
            )
            continue
        regressions = compare(baseline, fresh, args.threshold)
        checked = len(throughput_figures(baseline))
        if regressions:
            for regression in regressions:
                failures.append(f"{name}: {regression}")
        print(
            f"[bench-regression] {name}: {checked} throughput figures checked, "
            f"{len(regressions)} regressed beyond {args.threshold:.0%}"
        )

    if failures:
        print("\nThroughput regressions detected:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

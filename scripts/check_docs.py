#!/usr/bin/env python
"""Offline documentation checks: link integrity without any dependencies.

CI's fast tier runs this next to ``mkdocs build --strict``; unlike mkdocs it
needs nothing installed, so it also guards environments (and pre-commit
runs) where the docs toolchain is absent.  Checks:

* every relative Markdown link in ``docs/*.md`` and ``README.md`` resolves
  to an existing file (external ``http(s)``/``mailto`` links are skipped —
  the checker is offline by design);
* fragment links (``file.md#section`` and intra-page ``#section``) resolve
  to a real heading of the target document, using GitHub-style slugs;
* every page listed in the ``mkdocs.yml`` nav exists under ``docs/``.

Usage::

    python scripts/check_docs.py            # check the repository it lives in
    python scripts/check_docs.py --root DIR # check another tree
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path
from typing import Dict, List, Optional

#: inline Markdown links: [text](target) — images share the syntax
LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING = re.compile(r"^#{1,6}\s+(.+?)\s*#*\s*$")
#: fenced code blocks must not contribute links or headings
FENCE = re.compile(r"^(```|~~~)")

SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: lowercase, punctuation stripped, spaces to '-'."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)  # inline code keeps its text
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links keep their text
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
    return text.replace(" ", "-")


def markdown_lines(path: Path) -> List[str]:
    """The file's lines with fenced code blocks blanked out."""
    lines: List[str] = []
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if FENCE.match(line.strip()):
            in_fence = not in_fence
            lines.append("")
            continue
        lines.append("" if in_fence else line)
    return lines


def heading_slugs(path: Path) -> List[str]:
    slugs: List[str] = []
    for line in markdown_lines(path):
        match = HEADING.match(line)
        if match:
            slugs.append(github_slug(match.group(1)))
    return slugs


def check_file(path: Path, root: Path, slug_cache: Dict[Path, List[str]]) -> List[str]:
    problems: List[str] = []
    for number, line in enumerate(markdown_lines(path), start=1):
        for match in LINK.finditer(line):
            target = match.group(1)
            if target.startswith(SKIP_SCHEMES):
                continue
            target, _, fragment = target.partition("#")
            if target:
                resolved = (path.parent / target).resolve()
                if not resolved.exists():
                    problems.append(
                        f"{path.relative_to(root)}:{number}: broken link '{target}'"
                    )
                    continue
            else:
                resolved = path.resolve()
            if fragment and resolved.suffix == ".md":
                slugs = slug_cache.setdefault(resolved, heading_slugs(resolved))
                if fragment not in slugs:
                    problems.append(
                        f"{path.relative_to(root)}:{number}: broken anchor "
                        f"'#{fragment}' (no such heading in {resolved.name})"
                    )
    return problems


def nav_pages(mkdocs_yml: Path) -> List[str]:
    """Page paths referenced in the mkdocs nav (line-based, no YAML dep)."""
    pages: List[str] = []
    in_nav = False
    for line in mkdocs_yml.read_text(encoding="utf-8").splitlines():
        stripped = line.rstrip()
        if stripped.startswith("nav:"):
            in_nav = True
            continue
        if in_nav:
            if stripped and not stripped.startswith((" ", "-", "\t")):
                break  # left the nav block
            match = re.search(r":\s*([\w\-./]+\.md)\s*$", stripped)
            if match:
                pages.append(match.group(1))
    return pages


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--root",
        type=Path,
        default=Path(__file__).resolve().parents[1],
        help="repository root (default: this script's repository)",
    )
    args = parser.parse_args(argv)
    root = args.root.resolve()

    sources = sorted((root / "docs").glob("*.md"))
    readme = root / "README.md"
    if readme.exists():
        sources.append(readme)
    if not sources:
        print(f"[check-docs] no markdown sources under {root}", file=sys.stderr)
        return 1

    slug_cache: Dict[Path, List[str]] = {}
    problems: List[str] = []
    for path in sources:
        problems.extend(check_file(path, root, slug_cache))

    mkdocs_yml = root / "mkdocs.yml"
    if mkdocs_yml.exists():
        pages = nav_pages(mkdocs_yml)
        if not pages:
            problems.append("mkdocs.yml: nav lists no pages (parse failure?)")
        for page in pages:
            if not (root / "docs" / page).exists():
                problems.append(f"mkdocs.yml: nav page 'docs/{page}' does not exist")

    checked = len(sources)
    if problems:
        print(f"[check-docs] {checked} files checked, {len(problems)} problem(s):")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print(f"[check-docs] {checked} files checked, all links and nav entries resolve")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""The :class:`ExecutionPlan` — one object owning execution policy.

Parallelism used to be smeared across layers: the batched engine had its own
knobs (:class:`repro.engine.BatchPlan`), the serving layer its own scheduling
config, and dataset generation none at all.  The runtime layer centralizes
the *policy* half of that story: how many worker processes to use, how work
is cut into shards, which radar backend to select and how built features are
cached.  Every compute layer — synthetic dataset generation, the batched
engine, the experiment drivers and multi-shard serving — consults the same
plan, so one object switches the whole stack between serial, vectorized and
multi-process execution.

:class:`repro.engine.BatchPlan` is retained as a thin compatibility façade
(a subclass adding nothing), so existing engine-facing code keeps working
while new code can type against :class:`ExecutionPlan`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

__all__ = ["ExecutionPlan"]


@dataclass(frozen=True)
class ExecutionPlan:
    """Execution policy shared by every compute layer.

    Attributes
    ----------
    vectorized:
        Master switch: ``True`` (default) routes radar synthesis, feature
        building and meta-learning inner loops through the batched kernels;
        ``False`` selects the frame-at-a-time / task-at-a-time reference
        paths (used by the equivalence tests and throughput benchmarks).
    batch_size:
        Number of radar frames processed per vectorized chunk.  Bounds peak
        memory of the signal-chain backend (each frame's data cube is a
        ``(samples, chirps, antennas)`` complex array).
    workers:
        Number of worker processes for shardable stages (synthetic dataset
        generation, bulk feature building).  ``1`` (default) runs in-process;
        higher values fan shards out over a process pool via
        :func:`repro.runtime.map_shards`.  Per-shard seeding makes results
        bitwise independent of this knob — it only changes the wall clock.
    shard_size:
        Number of work items per shard when fanning out; ``None`` cuts the
        work into ``workers`` contiguous shards.  Smaller shards load-balance
        better when item costs are uneven, at slightly higher IPC cost.
    cache_policy:
        ``"memory"`` memoizes built feature/label arrays in the in-process
        content-addressed LRU cache (:mod:`repro.dataset.cache`);
        ``"disk"`` additionally spills entries to ``cache_dir`` so other
        processes (and later runs) reuse them; ``"none"`` rebuilds on every
        call.
    cache_capacity:
        Maximum number of cached feature datasets when caching is enabled.
    cache_dir:
        Directory of the on-disk cache tier (required when ``cache_policy``
        is ``"disk"``).
    cache_disk_capacity:
        Maximum number of persisted entries before the oldest are evicted.
    backend:
        Optional radar-backend override (``"geometric"`` or ``"signal"``)
        applied by engine helpers that construct pipelines; ``None`` keeps
        the caller's configured backend.  This selects the *radar* synthesis
        model — the numeric kernel implementation is ``kernel_backend``.
    kernel_backend:
        Optional kernel-backend name (validated against the
        :mod:`repro.nn.backend` registry — ``"reference"``, ``"fast"``,
        ``"compiled"``, or anything registered by the embedding
        application).  ``None`` defers to the process default
        (``REPRO_KERNEL_BACKEND`` environment variable or ``reference``).
        Layers that honor the plan scope the selection around their compute
        (e.g. :class:`repro.core.MetaTrainer` wraps its steps in
        ``nn.use_backend``).
    """

    vectorized: bool = True
    batch_size: int = 64
    workers: int = 1
    shard_size: Optional[int] = None
    cache_policy: str = "memory"
    cache_capacity: int = 16
    cache_dir: Optional[str] = None
    cache_disk_capacity: int = 64
    backend: Optional[str] = None
    kernel_backend: Optional[str] = None

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.shard_size is not None and self.shard_size < 1:
            raise ValueError("shard_size must be >= 1")
        if self.cache_policy not in ("none", "memory", "disk"):
            raise ValueError(f"unknown cache policy '{self.cache_policy}'")
        if self.cache_policy == "disk" and not self.cache_dir:
            raise ValueError("cache_policy='disk' requires cache_dir")
        if self.cache_capacity < 1:
            raise ValueError("cache_capacity must be >= 1")
        if self.cache_disk_capacity < 1:
            raise ValueError("cache_disk_capacity must be >= 1")
        if self.backend is not None and self.backend not in ("geometric", "signal"):
            raise ValueError(
                f"unknown radar backend '{self.backend}' (expected 'geometric' or "
                f"'signal'; numeric kernels are selected via kernel_backend)"
            )
        if self.kernel_backend is not None:
            # Late import: runtime must not drag the nn substrate in at
            # module load, and registration happens on repro.nn.backend
            # import.  Registry-driven validation means plans accept any
            # backend an embedding application registered.
            from repro.nn import backend as _kernel_backends

            if self.kernel_backend not in _kernel_backends.available_backends():
                raise ValueError(
                    f"unknown kernel backend '{self.kernel_backend}'; registered "
                    f"backends: {', '.join(sorted(_kernel_backends.available_backends()))}"
                )

    @classmethod
    def reference(cls) -> "ExecutionPlan":
        """The per-frame / per-task reference plan (no vectorization, no cache)."""
        return cls(vectorized=False, cache_policy="none")

    def with_workers(self, workers: int) -> "ExecutionPlan":
        """Return a copy of this plan with a different worker count."""
        return replace(self, workers=workers)

"""Deterministic seeding for sharded execution.

The invariant every sharded stage must honour is *shard transparency*: the
same configuration produces bit-identical results whether the work runs in
one process or forty.  The only way to get that with stochastic stages is to
derive randomness from the *work item*, never from the worker: each item
(e.g. one synthetic recording session) owns a child seed computed from a
stable string key, so the draw sequence is independent of how items are cut
into shards and of which process executes them.

Two derivation styles are provided:

* :func:`seed_for_key` / :func:`rng_for_key` — CRC32 of a ``/``-joined key
  string.  Deterministic across processes and Python versions (unlike the
  built-in string hash), and the scheme the synthetic dataset generator has
  always used, so datasets stay bitwise stable.
* :func:`spawn_shard_seeds` — :class:`numpy.random.SeedSequence` spawning for
  stages that are naturally indexed by shard number rather than by a
  structured key.
"""

from __future__ import annotations

import zlib
from typing import List

import numpy as np

__all__ = ["seed_for_key", "rng_for_key", "spawn_shard_seeds"]


def seed_for_key(*parts: object) -> int:
    """Stable 32-bit child seed derived from a structured key.

    The parts (typically a master seed plus work-item coordinates such as
    subject / movement / session) are joined with ``/`` and hashed with
    CRC32, which is deterministic across processes — the property that makes
    sharded generation bitwise independent of the shard layout.
    """
    if not parts:
        raise ValueError("at least one key part is required")
    key = "/".join(str(part) for part in parts).encode()
    return zlib.crc32(key)


def rng_for_key(*parts: object) -> np.random.Generator:
    """A :class:`numpy.random.Generator` seeded by :func:`seed_for_key`."""
    return np.random.default_rng(np.random.SeedSequence(seed_for_key(*parts)))


def spawn_shard_seeds(master_seed: int, num_shards: int) -> List[np.random.SeedSequence]:
    """Spawn one independent :class:`~numpy.random.SeedSequence` per shard.

    Spawned children are statistically independent streams; shard ``i``
    always receives the same child regardless of how many total shards are
    spawned alongside it in earlier calls (spawning is index-stable for a
    fresh parent).
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    return np.random.SeedSequence(master_seed).spawn(num_shards)

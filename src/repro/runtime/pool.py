"""Worker pools, shard layout and result merging.

:func:`map_shards` is the one fan-out primitive of the runtime layer: cut a
list of work items into contiguous shards, apply a function to every shard —
in-process when the plan asks for one worker, over a process pool otherwise —
and return the per-shard results *in shard order*, so merging is a plain
concatenation and the output is independent of scheduling.

Design constraints:

* **Determinism** — shard layout is a pure function of ``(len(items),
  workers, shard_size)``; results are returned in submission order
  (``ProcessPoolExecutor.map`` preserves it), and stochastic stages draw
  per-item randomness (:mod:`repro.runtime.seeding`), so worker count never
  changes bits.
* **Portability** — the pool prefers the cheap ``fork`` start method where
  the platform offers it and falls back to ``spawn`` elsewhere, which is why
  shard functions must be module-level callables (or ``functools.partial``
  of one): they cross a pickle boundary.
* **No pool for trivial work** — one worker or one shard short-circuits to a
  plain loop; callers never pay process start-up for small inputs.
"""

from __future__ import annotations

import multiprocessing
import zlib
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, List, Optional, Sequence, TypeVar

from .plan import ExecutionPlan

__all__ = ["shard_items", "map_shards", "merge_shards", "pool_context", "shard_for"]

ItemT = TypeVar("ItemT")
ResultT = TypeVar("ResultT")


def shard_items(
    items: Sequence[ItemT],
    num_shards: Optional[int] = None,
    shard_size: Optional[int] = None,
) -> List[List[ItemT]]:
    """Cut ``items`` into contiguous, order-preserving shards.

    Exactly one of ``num_shards`` / ``shard_size`` selects the layout; with
    ``num_shards`` the items are spread as evenly as possible (sizes differ
    by at most one).  Empty shards are never produced.
    """
    items = list(items)
    if (num_shards is None) == (shard_size is None):
        raise ValueError("provide exactly one of num_shards / shard_size")
    if not items:
        return []
    if shard_size is not None:
        if shard_size < 1:
            raise ValueError("shard_size must be >= 1")
        return [items[start : start + shard_size] for start in range(0, len(items), shard_size)]
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    num_shards = min(num_shards, len(items))
    base, extra = divmod(len(items), num_shards)
    shards: List[List[ItemT]] = []
    start = 0
    for index in range(num_shards):
        size = base + (1 if index < extra else 0)
        shards.append(items[start : start + size])
        start += size
    return shards


def pool_context(start_method: Optional[str] = None) -> multiprocessing.context.BaseContext:
    """The multiprocessing context every runtime consumer shares.

    Defaults to the cheapest available start method — ``fork`` where the OS
    has it (child processes inherit large read-only state, e.g. a trained
    estimator, copy-on-write), ``spawn`` elsewhere.  Both the shard pools
    here and the serving shard workers (:mod:`repro.serve.worker`) derive
    their processes from this one policy, so a deployment overrides the
    start method in exactly one place.
    """
    if start_method is not None:
        return multiprocessing.get_context(start_method)
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


#: backwards-compatible private alias (pre-frontend callers)
_pool_context = pool_context


def map_shards(
    fn: Callable[[List[ItemT]], ResultT],
    items: Sequence[ItemT],
    plan: Optional[ExecutionPlan] = None,
    *,
    workers: Optional[int] = None,
    shard_size: Optional[int] = None,
) -> List[ResultT]:
    """Apply ``fn`` to every shard of ``items``; results come back in order.

    The worker count and shard size default to the plan's (``workers=1`` and
    one shard per worker when no plan is given).  With one effective worker
    or one shard the call degenerates to a serial loop in this process;
    otherwise shards run on a process pool, so ``fn`` must be picklable — a
    module-level function or a :func:`functools.partial` of one.
    """
    if workers is None:
        workers = plan.workers if plan is not None else 1
    if shard_size is None and plan is not None:
        shard_size = plan.shard_size
    if workers < 1:
        raise ValueError("workers must be >= 1")

    items = list(items)
    if shard_size is not None:
        shards = shard_items(items, shard_size=shard_size)
    else:
        shards = shard_items(items, num_shards=max(workers, 1))
    if not shards:
        return []

    effective = min(workers, len(shards))
    if effective <= 1:
        return [fn(shard) for shard in shards]
    with ProcessPoolExecutor(max_workers=effective, mp_context=_pool_context()) as pool:
        return list(pool.map(fn, shards))


def merge_shards(per_shard: Sequence[Sequence[ResultT]]) -> List[ResultT]:
    """Concatenate per-shard result lists back into one flat, ordered list."""
    merged: List[ResultT] = []
    for shard in per_shard:
        merged.extend(shard)
    return merged


def shard_for(key: object, num_shards: int) -> int:
    """Stable shard assignment of an arbitrary key (e.g. a serving user id).

    Uses CRC32 of ``str(key)`` rather than :func:`hash` so the assignment is
    identical across processes and interpreter runs — a user always lands on
    the same shard, which is what keeps per-shard session state and adapted
    parameter sets consistent.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    return zlib.crc32(str(key).encode()) % num_shards

"""``repro.runtime`` — the shared execution-policy layer.

One subsystem owns *how* work executes so no other layer has to:

* :class:`ExecutionPlan` — worker count, shard layout, vectorization,
  feature-cache policy and radar-backend override in one frozen object.
  :class:`repro.engine.BatchPlan` is a thin compatibility façade over it.
* :func:`map_shards` / :func:`shard_items` / :func:`merge_shards` — the
  fan-out primitive: contiguous shards, optional process pool, results in
  shard order.
* :func:`seed_for_key` / :func:`rng_for_key` / :func:`spawn_shard_seeds` —
  per-work-item seeding, the invariant that makes sharded stages bitwise
  independent of the worker count.
* :func:`shard_for` — stable hash assignment of keys (serving users) onto
  shards.
* :func:`pool_context` — the one process-lifecycle policy (start method)
  shared by the shard pools and the serving shard workers.

Consumers: synthetic dataset generation and bulk feature building shard on
:func:`map_shards`; the batched engine reads its vectorization/cache policy
from the plan; :class:`repro.serve.ShardedPoseServer` places users with
:func:`shard_for`; :class:`repro.serve.ProcessShardedPoseServer` derives
its worker processes from :func:`pool_context` and seeds each shard with
:func:`seed_for_key`; the experiment drivers and CLI thread one plan
through all of it.
"""

from .plan import ExecutionPlan
from .pool import map_shards, merge_shards, pool_context, shard_for, shard_items
from .seeding import rng_for_key, seed_for_key, spawn_shard_seeds

__all__ = [
    "ExecutionPlan",
    "map_shards",
    "merge_shards",
    "pool_context",
    "rng_for_key",
    "seed_for_key",
    "shard_for",
    "shard_items",
    "spawn_shard_seeds",
]

"""Synthetic MARS-like dataset generation.

The FUSE paper evaluates on the MARS dataset: 40,083 labelled mmWave frames
of four subjects performing ten rehabilitation movements, recorded at 10 Hz
with a TI IWR1443 and labelled by a Kinect V2.  That data cannot be shipped
here, so this module regenerates a dataset with the same *structure* by
driving the kinematic body model (:mod:`repro.body`) through the radar
simulator (:mod:`repro.radar`):

* every (subject, movement) pair contributes one or more recording sessions,
* each session is a continuous 10 Hz sequence of sparse Eq. 1 point clouds,
* every frame is labelled with the 19-joint skeleton,
* an optional Kinect-style label noise model corrupts the ground truth the
  way a real depth-camera label pipeline would.

The generator is deterministic given its configuration and seed, and results
are memoized in-process so experiments and tests that share a configuration
do not pay the generation cost twice.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import partial
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..body.motion import MotionSynthesizer
from ..body.movements import MOVEMENT_NAMES, get_movement
from ..body.subjects import SubjectProfile, default_subjects, make_subject
from ..body.surface import BodyScatteringModel
from ..radar.config import RadarConfig
from ..radar.pipeline import make_pipeline
from ..radar.scene import scene_batch_from_world
from ..runtime import ExecutionPlan, map_shards, merge_shards, rng_for_key
from .sample import LabelledFrame, PoseDataset

__all__ = [
    "SessionSpec",
    "SyntheticDatasetConfig",
    "SyntheticDatasetGenerator",
    "generate_dataset",
]


@dataclass(frozen=True)
class SyntheticDatasetConfig:
    """Configuration of the synthetic dataset generator.

    Attributes
    ----------
    subject_ids:
        Subjects to include (1-4 are the canonical MARS-like profiles).
    movement_names:
        Movements to include; defaults to all ten MARS movements.
    seconds_per_pair:
        Recording length (seconds) per (subject, movement) pair.  At the
        paper's scale, 40,083 frames / (4 subjects x 10 movements) / 10 Hz
        is roughly 100 s per pair.
    frame_rate:
        Label/point-cloud rate in Hz (10 Hz in MARS).
    sessions_per_pair:
        Number of independent recording sessions per pair; fusion never
        crosses session boundaries.
    radar_backend:
        ``"geometric"`` (default, fast) or ``"signal"`` (full FMCW chain).
    points_per_segment:
        Scatterer density of the body surface model.
    label_noise_std:
        Standard deviation (metres) of the Kinect-style label noise.
    seed:
        Master seed; every session derives its own child seed from it.
    """

    subject_ids: Tuple[int, ...] = (1, 2, 3, 4)
    movement_names: Tuple[str, ...] = MOVEMENT_NAMES
    seconds_per_pair: float = 20.0
    frame_rate: float = 10.0
    sessions_per_pair: int = 1
    radar_backend: str = "geometric"
    # A slightly elevated noise floor (relative to the signal-chain demo
    # default) reproduces the MARS-like sparsity of 20-40 points per frame.
    radar_config: RadarConfig = field(default_factory=lambda: RadarConfig(noise_figure_db=-26.0))
    points_per_segment: int = 5
    label_noise_std: float = 0.0
    seed: int = 2022

    def __post_init__(self) -> None:
        if not self.subject_ids:
            raise ValueError("at least one subject is required")
        if not self.movement_names:
            raise ValueError("at least one movement is required")
        for name in self.movement_names:
            get_movement(name)  # validates the name
        if self.seconds_per_pair <= 0:
            raise ValueError("seconds_per_pair must be positive")
        if self.sessions_per_pair < 1:
            raise ValueError("sessions_per_pair must be >= 1")
        if self.label_noise_std < 0:
            raise ValueError("label_noise_std must be non-negative")

    @property
    def expected_frames(self) -> int:
        """Total number of frames the generator will emit."""
        frames_per_session = int(round(self.seconds_per_pair * self.frame_rate))
        return (
            frames_per_session
            * self.sessions_per_pair
            * len(self.subject_ids)
            * len(self.movement_names)
        )

    def scaled(self, fraction: float) -> "SyntheticDatasetConfig":
        """Return a copy with ``seconds_per_pair`` scaled by ``fraction``."""
        if fraction <= 0:
            raise ValueError("fraction must be positive")
        return replace(self, seconds_per_pair=self.seconds_per_pair * fraction)

    @classmethod
    def mars_scale(cls) -> "SyntheticDatasetConfig":
        """A configuration matching the MARS dataset size (~40 k frames)."""
        return cls(seconds_per_pair=100.0)

    @classmethod
    def ci_scale(cls) -> "SyntheticDatasetConfig":
        """A small configuration for tests and CI-scale benchmarks."""
        return cls(seconds_per_pair=6.0)


# In-process memoization of generated datasets keyed by configuration and
# generation path (the batched path draws its randomness in a different
# order, so the two paths produce distinct — equally valid — datasets).
# Worker count is deliberately absent from the key: sharded generation is
# bitwise identical to serial generation (pinned by tests/dataset).
_DATASET_CACHE: Dict[Tuple[SyntheticDatasetConfig, bool], PoseDataset] = {}


@dataclass(frozen=True)
class SessionSpec:
    """One unit of sharded generation work: a single recording session.

    Every session owns a child seed derived from its coordinates (via
    :func:`repro.runtime.rng_for_key`), so the frames it produces do not
    depend on which shard — or which process — generates it.
    """

    subject_id: int
    movement_name: str
    session: int
    sequence_id: int


@dataclass
class SyntheticDatasetGenerator:
    """Generates :class:`PoseDataset` objects from a configuration."""

    config: SyntheticDatasetConfig = field(default_factory=SyntheticDatasetConfig)

    def _subject(self, subject_id: int) -> SubjectProfile:
        canonical = {profile.subject_id: profile for profile in default_subjects()}
        return canonical.get(subject_id, make_subject(subject_id))

    def generate_sequence(
        self,
        subject: SubjectProfile,
        movement_name: str,
        sequence_id: int,
        rng: np.random.Generator,
    ) -> List[LabelledFrame]:
        """Generate one continuous labelled recording session."""
        cfg = self.config
        synthesizer = MotionSynthesizer(frame_rate=cfg.frame_rate)
        trajectory = synthesizer.synthesize(
            subject,
            movement_name,
            duration=cfg.seconds_per_pair,
            rng=rng,
            start_phase=float(rng.uniform(0.0, 1.0)),
        )
        scattering = BodyScatteringModel(
            points_per_segment=cfg.points_per_segment, reflectivity=subject.reflectivity
        )
        pipeline = make_pipeline(cfg.radar_backend, config=cfg.radar_config)

        samples: List[LabelledFrame] = []
        for frame_index in range(trajectory.num_frames):
            positions, velocities = trajectory.frame(frame_index)
            scatterers = scattering.scatterers(positions, velocities, rng)
            cloud = pipeline.process_scatterers(
                scatterers,
                rng,
                timestamp=float(trajectory.timestamps[frame_index]),
                frame_index=frame_index,
            )
            joints = positions
            if cfg.label_noise_std > 0:
                joints = joints + rng.normal(0.0, cfg.label_noise_std, size=joints.shape)
            samples.append(
                LabelledFrame(
                    cloud=cloud,
                    joints=joints,
                    subject_id=subject.subject_id,
                    movement_name=movement_name,
                    sequence_id=sequence_id,
                    frame_index=frame_index,
                )
            )
        return samples

    def generate_sequence_batched(
        self,
        subject: SubjectProfile,
        movement_name: str,
        sequence_id: int,
        rng: np.random.Generator,
    ) -> List[LabelledFrame]:
        """Generate one recording session through the batched radar path.

        The whole trajectory is pushed through the scattering model and the
        radar backend as ``(frames, scatterers, ...)`` arrays — no per-frame
        Python loop over targets.  The random draw order differs from
        :meth:`generate_sequence`, so the two paths yield statistically
        equivalent (not sample-identical) datasets; each is deterministic
        given the seed.
        """
        cfg = self.config
        synthesizer = MotionSynthesizer(frame_rate=cfg.frame_rate)
        trajectory = synthesizer.synthesize(
            subject,
            movement_name,
            duration=cfg.seconds_per_pair,
            rng=rng,
            start_phase=float(rng.uniform(0.0, 1.0)),
        )
        scattering = BodyScatteringModel(
            points_per_segment=cfg.points_per_segment, reflectivity=subject.reflectivity
        )
        pipeline = make_pipeline(cfg.radar_backend, config=cfg.radar_config)

        positions, velocities, rcs = scattering.scatterer_batch(
            trajectory.positions, trajectory.velocities, rng
        )
        scene_batch = scene_batch_from_world(positions, velocities, rcs, cfg.radar_config)
        clouds = pipeline.process_batch(
            scene_batch,
            rng,
            timestamps=trajectory.timestamps,
            frame_indices=np.arange(trajectory.num_frames),
        )

        joints = trajectory.positions
        if cfg.label_noise_std > 0:
            joints = joints + rng.normal(0.0, cfg.label_noise_std, size=joints.shape)

        return [
            LabelledFrame(
                cloud=clouds.frame(frame_index),
                joints=joints[frame_index],
                subject_id=subject.subject_id,
                movement_name=movement_name,
                sequence_id=sequence_id,
                frame_index=frame_index,
            )
            for frame_index in range(trajectory.num_frames)
        ]

    def session_specs(self) -> List[SessionSpec]:
        """The full work list: one :class:`SessionSpec` per recording session."""
        cfg = self.config
        specs: List[SessionSpec] = []
        sequence_id = 0
        for subject_id in cfg.subject_ids:
            for movement_name in cfg.movement_names:
                for session in range(cfg.sessions_per_pair):
                    specs.append(
                        SessionSpec(subject_id, movement_name, session, sequence_id)
                    )
                    sequence_id += 1
        return specs

    def generate_session(self, spec: SessionSpec, vectorized: bool = True) -> List[LabelledFrame]:
        """Generate one session from its spec, with its own derived seed.

        The child seed depends only on the master seed and the session
        coordinates — adding subjects or movements does not reshuffle other
        sessions, and neither does the shard layout or the worker count.
        """
        cfg = self.config
        rng = rng_for_key(cfg.seed, spec.subject_id, spec.movement_name, spec.session)
        generate_one = self.generate_sequence_batched if vectorized else self.generate_sequence
        return generate_one(
            self._subject(spec.subject_id), spec.movement_name, spec.sequence_id, rng
        )

    def generate(
        self, vectorized: Optional[bool] = None, plan: Optional[ExecutionPlan] = None
    ) -> PoseDataset:
        """Generate the full dataset described by the configuration.

        ``vectorized`` selects the batched radar/scattering path; the
        per-frame path is retained as the reference implementation and for
        throughput comparisons.  Left as ``None`` it follows
        ``plan.vectorized`` (the plan's master switch), defaulting to the
        batched path without a plan; an explicit argument wins over the
        plan.  ``plan.workers > 1`` shards the sessions over a process pool
        (:func:`repro.runtime.map_shards`); per-session seeding makes the
        output bitwise identical to the serial run.
        """
        if vectorized is None:
            vectorized = plan.vectorized if plan is not None else True
        cfg = self.config
        dataset = PoseDataset(name=f"synthetic-mars(seed={cfg.seed})")
        shard_results = map_shards(
            partial(_generate_session_shard, cfg, vectorized),
            self.session_specs(),
            plan,
        )
        dataset.extend(merge_shards(shard_results))
        return dataset


def _generate_session_shard(
    config: SyntheticDatasetConfig, vectorized: bool, specs: List[SessionSpec]
) -> List[LabelledFrame]:
    """Generate one shard of sessions (module-level: crosses the pool's
    pickle boundary)."""
    generator = SyntheticDatasetGenerator(config)
    frames: List[LabelledFrame] = []
    for spec in specs:
        frames.extend(generator.generate_session(spec, vectorized=vectorized))
    return frames


def generate_dataset(
    config: Optional[SyntheticDatasetConfig] = None,
    use_cache: bool = True,
    vectorized: Optional[bool] = None,
    plan: Optional[ExecutionPlan] = None,
) -> PoseDataset:
    """Generate (or fetch from the in-process cache) a synthetic dataset.

    The generation path follows ``vectorized`` when given, else
    ``plan.vectorized``, else the batched default (the batched and
    reference paths draw randomness in different orders, so they are
    distinct cache entries).  The plan's *scheduling* half (worker
    processes, shard layout) never affects contents, so cached datasets are
    shared across worker counts.
    """
    config = config if config is not None else SyntheticDatasetConfig()
    if vectorized is None:
        vectorized = plan.vectorized if plan is not None else True
    cache_key = (config, vectorized)
    if use_cache and cache_key in _DATASET_CACHE:
        return _DATASET_CACHE[cache_key]
    dataset = SyntheticDatasetGenerator(config).generate(vectorized=vectorized, plan=plan)
    if use_cache:
        _DATASET_CACHE[cache_key] = dataset
    return dataset

"""Content-addressed cache for built feature/label arrays, with disk spill.

Feature-map construction is the glue between the radar substrate and the
training stack, and the experiment drivers rebuild the same splits many
times (baseline vs FUSE, per-fusion-setting sweeps, repeated evaluation
sets).  :class:`FeatureCache` memoizes ``(features, labels)`` arrays keyed by
a content hash of the builder configuration and the exact point/label data,
so any change to either — a different grid range, a different normalization,
a regenerated dataset — invalidates the entry automatically.

The in-memory tier is bounded (LRU eviction) and returns read-only array
views so a cache hit can never be corrupted by a caller mutating the result
in place.  An optional on-disk tier (``cache_dir``) persists entries as
``<content-hash>.npz`` files for cross-process and cross-run reuse: a miss in
memory falls through to disk before rebuilding, writes are atomic
(temp-file + rename) so concurrent processes can share one directory, and the
directory is bounded by least-recently-used eviction.
"""

from __future__ import annotations

import hashlib
import os
import time
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional, Sequence, Tuple, Union

import numpy as np

from .features import FeatureMapBuilder
from .sample import LabelledFrame

__all__ = ["CacheStats", "FeatureCache"]

#: Age after which an orphaned spill temp file is reclaimed by eviction.
_STALE_TEMP_SECONDS = 3600.0


@dataclass
class CacheStats:
    """Counters describing cache effectiveness.

    ``hits`` counts in-memory hits, ``disk_hits`` entries recovered from the
    on-disk tier, ``misses`` full rebuilds.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    disk_hits: int = 0
    disk_evictions: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.disk_hits + self.misses

    @property
    def hit_rate(self) -> float:
        return (self.hits + self.disk_hits) / self.requests if self.requests else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "disk_hits": self.disk_hits,
            "disk_evictions": self.disk_evictions,
            "hit_rate": self.hit_rate,
        }


def _readonly(array: np.ndarray) -> np.ndarray:
    view = array.view()
    view.setflags(write=False)
    return view


class FeatureCache:
    """LRU cache of built feature maps keyed by content hash.

    Parameters
    ----------
    capacity:
        Maximum number of cached datasets.  Each entry holds the full
        ``(features, labels)`` arrays of one build, so the capacity bounds
        memory as ``capacity * dataset size``.
    cache_dir:
        Optional directory of the persistent tier.  When given, every build
        is spilled to ``<key>.npz`` and misses in memory try disk before
        rebuilding, so parallel workers and later runs share the work.
    disk_capacity:
        Maximum number of ``.npz`` entries kept on disk; least recently used
        files (by access time) are removed beyond it.
    """

    def __init__(
        self,
        capacity: int = 16,
        cache_dir: Optional[Union[str, Path]] = None,
        disk_capacity: int = 64,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if disk_capacity < 1:
            raise ValueError("disk_capacity must be >= 1")
        self.capacity = capacity
        self.disk_capacity = disk_capacity
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
        self._entries: "OrderedDict[str, Tuple[np.ndarray, np.ndarray]]" = OrderedDict()
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    # Keys
    # ------------------------------------------------------------------
    @staticmethod
    def builder_fingerprint(builder: FeatureMapBuilder) -> str:
        """Stable fingerprint of every field that affects the built features."""
        return repr(builder)

    def key_for(
        self, samples: Sequence[LabelledFrame], builder: FeatureMapBuilder
    ) -> str:
        """Content hash of the builder configuration plus the exact inputs."""
        digest = hashlib.sha256()
        digest.update(self.builder_fingerprint(builder).encode())
        digest.update(str(len(samples)).encode())
        for sample in samples:
            points = np.ascontiguousarray(sample.cloud.points)
            digest.update(points.shape[0].to_bytes(4, "little"))
            digest.update(points.tobytes())
            digest.update(np.ascontiguousarray(sample.joints).tobytes())
        return digest.hexdigest()

    # ------------------------------------------------------------------
    # Lookup / build
    # ------------------------------------------------------------------
    def get_or_build(
        self,
        samples: Iterable[LabelledFrame],
        builder: FeatureMapBuilder,
        rng: Optional[np.random.Generator] = None,
        workers: int = 1,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Return cached ``(features, labels)`` or build and remember them.

        Builds that depend on runtime randomness (the ``"random"`` selection
        mode with a caller-supplied generator) bypass the cache entirely —
        caching them would freeze one random draw forever.  ``workers``
        shards a cache-missing (rng-free) build over a process pool; sharded
        builds are bitwise identical to serial ones, so the cache key is
        unaffected.
        """
        sample_list = list(samples)
        if builder.selection == "random" and rng is not None:
            self.stats.misses += 1
            return builder.build_dataset(sample_list, rng=rng)

        key = self.key_for(sample_list, builder)
        if key in self._entries:
            self._entries.move_to_end(key)
            self.stats.hits += 1
            features, labels = self._entries[key]
            return features, labels

        loaded = self._load_from_disk(key)
        if loaded is not None:
            self.stats.disk_hits += 1
            features, labels = _readonly(loaded[0]), _readonly(loaded[1])
            self._remember(key, features, labels)
            return features, labels

        self.stats.misses += 1
        if rng is None:
            from .loader import build_features_sharded

            features, labels = build_features_sharded(sample_list, builder, workers=workers)
        else:
            features, labels = builder.build_dataset(sample_list, rng=rng)
        features, labels = _readonly(features), _readonly(labels)
        self._remember(key, features, labels)
        self._spill_to_disk(key, features, labels)
        return features, labels

    def _remember(self, key: str, features: np.ndarray, labels: np.ndarray) -> None:
        self._entries[key] = (features, labels)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    # ------------------------------------------------------------------
    # Disk tier
    # ------------------------------------------------------------------
    def _disk_path(self, key: str) -> Optional[Path]:
        return None if self.cache_dir is None else self.cache_dir / f"{key}.npz"

    def _load_from_disk(self, key: str) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        path = self._disk_path(key)
        if path is None or not path.exists():
            return None
        try:
            with np.load(path) as archive:
                features, labels = archive["features"], archive["labels"]
        except (OSError, ValueError, KeyError, EOFError):
            # A torn or foreign file is treated as a miss and removed so it
            # cannot poison later lookups.
            try:
                path.unlink()
            except OSError:
                pass
            return None
        try:
            os.utime(path)  # refresh the LRU clock of the disk tier
        except OSError:
            pass
        return features, labels

    def _spill_to_disk(self, key: str, features: np.ndarray, labels: np.ndarray) -> None:
        path = self._disk_path(key)
        if path is None:
            return
        temp = path.with_suffix(f".tmp-{os.getpid()}")
        try:
            with open(temp, "wb") as handle:
                np.savez(handle, features=features, labels=labels)
            os.replace(temp, path)  # atomic: readers never see a torn entry
        except OSError:
            try:
                temp.unlink()
            except OSError:
                pass
            return
        self._evict_disk()

    def _evict_disk(self) -> None:
        assert self.cache_dir is not None
        try:
            entries = sorted(
                self.cache_dir.glob("*.npz"), key=lambda p: p.stat().st_mtime
            )
            stale_temps = [
                temp
                for temp in self.cache_dir.glob("*.tmp-*")
                if time.time() - temp.stat().st_mtime > _STALE_TEMP_SECONDS
            ]
        except OSError:
            return
        # Temp files orphaned by a killed writer would otherwise accumulate
        # forever (eviction only counts finished .npz entries).
        for temp in stale_temps:
            try:
                temp.unlink()
            except OSError:
                pass
        while len(entries) > self.disk_capacity:
            oldest = entries.pop(0)
            try:
                oldest.unlink()
                self.stats.disk_evictions += 1
            except OSError:
                pass

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def clear(self) -> None:
        """Drop every entry and reset the statistics."""
        self._entries.clear()
        self.stats = CacheStats()

"""Content-addressed LRU cache for built feature/label arrays.

Feature-map construction is the glue between the radar substrate and the
training stack, and the experiment drivers rebuild the same splits many
times (baseline vs FUSE, per-fusion-setting sweeps, repeated evaluation
sets).  :class:`FeatureCache` memoizes ``(features, labels)`` arrays keyed by
a content hash of the builder configuration and the exact point/label data,
so any change to either — a different grid range, a different normalization,
a regenerated dataset — invalidates the entry automatically.

The cache is bounded (LRU eviction) and returns read-only array views so a
cache hit can never be corrupted by a caller mutating the result in place.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from .features import FeatureMapBuilder
from .sample import LabelledFrame

__all__ = ["CacheStats", "FeatureCache"]


@dataclass
class CacheStats:
    """Counters describing cache effectiveness."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


def _readonly(array: np.ndarray) -> np.ndarray:
    view = array.view()
    view.setflags(write=False)
    return view


class FeatureCache:
    """LRU cache of built feature maps keyed by content hash.

    Parameters
    ----------
    capacity:
        Maximum number of cached datasets.  Each entry holds the full
        ``(features, labels)`` arrays of one build, so the capacity bounds
        memory as ``capacity * dataset size``.
    """

    def __init__(self, capacity: int = 16) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[str, Tuple[np.ndarray, np.ndarray]]" = OrderedDict()
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    # Keys
    # ------------------------------------------------------------------
    @staticmethod
    def builder_fingerprint(builder: FeatureMapBuilder) -> str:
        """Stable fingerprint of every field that affects the built features."""
        return repr(builder)

    def key_for(
        self, samples: Sequence[LabelledFrame], builder: FeatureMapBuilder
    ) -> str:
        """Content hash of the builder configuration plus the exact inputs."""
        digest = hashlib.sha256()
        digest.update(self.builder_fingerprint(builder).encode())
        digest.update(str(len(samples)).encode())
        for sample in samples:
            points = np.ascontiguousarray(sample.cloud.points)
            digest.update(points.shape[0].to_bytes(4, "little"))
            digest.update(points.tobytes())
            digest.update(np.ascontiguousarray(sample.joints).tobytes())
        return digest.hexdigest()

    # ------------------------------------------------------------------
    # Lookup / build
    # ------------------------------------------------------------------
    def get_or_build(
        self,
        samples: Iterable[LabelledFrame],
        builder: FeatureMapBuilder,
        rng: Optional[np.random.Generator] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Return cached ``(features, labels)`` or build and remember them.

        Builds that depend on runtime randomness (the ``"random"`` selection
        mode with a caller-supplied generator) bypass the cache entirely —
        caching them would freeze one random draw forever.
        """
        sample_list = list(samples)
        if builder.selection == "random" and rng is not None:
            self.stats.misses += 1
            return builder.build_dataset(sample_list, rng=rng)

        key = self.key_for(sample_list, builder)
        if key in self._entries:
            self._entries.move_to_end(key)
            self.stats.hits += 1
            features, labels = self._entries[key]
            return features, labels

        self.stats.misses += 1
        features, labels = builder.build_dataset(sample_list, rng=rng)
        features, labels = _readonly(features), _readonly(labels)
        self._entries[key] = (features, labels)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        return features, labels

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def clear(self) -> None:
        """Drop every entry and reset the statistics."""
        self._entries.clear()
        self.stats = CacheStats()

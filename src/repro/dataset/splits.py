"""Dataset splitting strategies used by the paper's experiments.

Two splits matter:

* **Per-movement 60/20/20 split** (Section 4.1, used for Table 1): each
  movement's data is split chronologically into train/validation/test so that
  every movement and subject appears in all three partitions.
* **Leave-out split** (Section 4.3.1, used for Table 2 and Figures 3-4): all
  data from one subject *and* one movement is excluded from training and
  validation.  The "new data" :math:`D_{test}` used online is the held-out
  subject performing the held-out movement (749 frames in the paper — i.e.
  the intersection, one subject-movement pair the model has never seen any
  aspect of).  A small number of those frames (200 in the paper) are
  available for fine-tuning; the rest are only used for evaluation.  The
  remaining excluded data (the held-out subject's other movements and the
  held-out movement performed by other subjects) is not used at all, exactly
  as in the paper's frame counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..body.movements import HELD_OUT_MOVEMENT
from .sample import PoseDataset

__all__ = ["TrainValTest", "AdaptationSplit", "per_movement_split", "leave_out_split"]


@dataclass
class TrainValTest:
    """A conventional train/validation/test partition."""

    train: PoseDataset
    validation: PoseDataset
    test: PoseDataset

    def sizes(self) -> Tuple[int, int, int]:
        return len(self.train), len(self.validation), len(self.test)


@dataclass
class AdaptationSplit:
    """The leave-out split used for the adaptation experiments.

    Attributes
    ----------
    train:
        :math:`D_{train}` — every frame except the held-out subject/movement
        (the union of both exclusions is removed).
    finetune:
        The small portion of :math:`D_{test}` (the held-out subject
        performing the held-out movement) used for online fine-tuning
        (200 frames in the paper).
    evaluation:
        The remainder of :math:`D_{test}`, used only for evaluation of the
        adapted model ("new data" curves in Figures 3-4).
    original_eval:
        A held-back portion of :math:`D_{train}` used to measure forgetting
        ("original data" curves in Figures 3-4).
    held_out_subject / held_out_movement:
        What was excluded from training.
    """

    train: PoseDataset
    finetune: PoseDataset
    evaluation: PoseDataset
    original_eval: PoseDataset
    held_out_subject: int
    held_out_movement: str

    def describe(self) -> str:
        return (
            f"AdaptationSplit(train={len(self.train)}, finetune={len(self.finetune)}, "
            f"new-eval={len(self.evaluation)}, original-eval={len(self.original_eval)}, "
            f"held_out=subject {self.held_out_subject} + '{self.held_out_movement}')"
        )


def per_movement_split(
    dataset: PoseDataset,
    train_fraction: float = 0.6,
    validation_fraction: float = 0.2,
) -> TrainValTest:
    """Split each movement's frames chronologically into train/val/test.

    The paper splits "each movement data individually" 60/20/20; splitting
    chronologically (rather than by random shuffling) avoids leaking nearly
    identical neighbouring frames between partitions.
    """
    if not 0.0 < train_fraction < 1.0:
        raise ValueError("train_fraction must be in (0, 1)")
    if not 0.0 < validation_fraction < 1.0 - train_fraction:
        raise ValueError("validation_fraction must leave room for a test partition")

    train = PoseDataset(name=f"{dataset.name}-train")
    validation = PoseDataset(name=f"{dataset.name}-val")
    test = PoseDataset(name=f"{dataset.name}-test")

    for movement in dataset.movements():
        for subject in dataset.subjects():
            subset = dataset.for_movement(movement).for_subject(subject)
            if len(subset) == 0:
                continue
            # Preserve temporal order within each (movement, subject) block.
            ordered = sorted(subset, key=lambda s: (s.sequence_id, s.frame_index))
            n = len(ordered)
            train_end = int(round(n * train_fraction))
            val_end = train_end + int(round(n * validation_fraction))
            train.extend(ordered[:train_end])
            validation.extend(ordered[train_end:val_end])
            test.extend(ordered[val_end:])
    return TrainValTest(train=train, validation=validation, test=test)


def leave_out_split(
    dataset: PoseDataset,
    held_out_subject: int = 4,
    held_out_movement: str = HELD_OUT_MOVEMENT,
    finetune_frames: int = 200,
    original_eval_fraction: float = 0.2,
    rng: Optional[np.random.Generator] = None,
) -> AdaptationSplit:
    """Build the worst-case adaptation split of Section 4.3.1.

    ``held_out_subject`` and ``held_out_movement`` default to the paper's
    choices (user 4 and "right limb extension").  :math:`D_{test}` is the
    held-out subject performing the held-out movement; its first
    ``finetune_frames`` frames (chronological order, as they would arrive
    online) are made available for fine-tuning and the rest are reserved for
    evaluation.  Training data excludes every frame of the held-out subject
    and every frame of the held-out movement.
    """
    rng = rng if rng is not None else np.random.default_rng(0)

    held_out = dataset.filter(
        lambda s: s.subject_id == held_out_subject and s.movement_name == held_out_movement,
        name=f"{dataset.name}-heldout",
    )
    train_pool = dataset.exclude(subject_id=held_out_subject, movement_name=held_out_movement)
    if len(held_out) == 0:
        raise ValueError(
            f"the dataset contains no frames of subject {held_out_subject} performing "
            f"movement '{held_out_movement}'"
        )
    if len(train_pool) == 0:
        raise ValueError("excluding the held-out subject/movement removed every frame")

    ordered_held_out = sorted(held_out, key=lambda s: (s.sequence_id, s.frame_index))
    finetune_frames = min(finetune_frames, max(1, len(ordered_held_out) // 2))
    finetune = PoseDataset(ordered_held_out[:finetune_frames], name=f"{dataset.name}-finetune")
    evaluation = PoseDataset(ordered_held_out[finetune_frames:], name=f"{dataset.name}-neweval")

    # Hold back a slice of the training pool to measure forgetting.
    train_samples = list(train_pool)
    indices = rng.permutation(len(train_samples))
    eval_count = max(1, int(round(len(train_samples) * original_eval_fraction)))
    original_eval_idx = set(indices[:eval_count].tolist())
    original_eval = PoseDataset(
        [train_samples[i] for i in sorted(original_eval_idx)],
        name=f"{dataset.name}-origeval",
    )
    train = PoseDataset(
        [train_samples[i] for i in range(len(train_samples)) if i not in original_eval_idx],
        name=f"{dataset.name}-train",
    )

    return AdaptationSplit(
        train=train,
        finetune=finetune,
        evaluation=evaluation,
        original_eval=original_eval,
        held_out_subject=held_out_subject,
        held_out_movement=held_out_movement,
    )

"""Loader for the real MARS dataset CSV layout.

Users who have downloaded the MARS dataset (https://github.com/SizheAn/MARS)
can load it into the same :class:`~repro.dataset.sample.PoseDataset`
containers used by the synthetic generator, so every experiment in this
repository runs unchanged on the real data.

Expected directory layout (one directory per subject)::

    root/
      subject1/
        <movement>_pointcloud.csv   # columns: frame, x, y, z, doppler, intensity
        <movement>_labels.csv       # columns: frame, j0_x, j0_y, j0_z, ..., j18_z
      subject2/
        ...

The loader is intentionally tolerant: extra columns are ignored, movements
are matched case-insensitively against the canonical movement names, and
frames present in only one of the two files are dropped with a warning
counter (returned to the caller) rather than raising.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..body.movements import MOVEMENT_NAMES
from ..body.skeleton import NUM_JOINTS
from ..radar.pointcloud import PointCloudFrame
from .sample import LabelledFrame, PoseDataset

__all__ = ["MarsLoadReport", "load_mars_directory", "load_mars_pair"]


@dataclass
class MarsLoadReport:
    """Bookkeeping about a MARS load operation."""

    num_frames: int = 0
    num_dropped_unlabelled: int = 0
    num_dropped_empty: int = 0
    files_loaded: int = 0

    def merge(self, other: "MarsLoadReport") -> None:
        self.num_frames += other.num_frames
        self.num_dropped_unlabelled += other.num_dropped_unlabelled
        self.num_dropped_empty += other.num_dropped_empty
        self.files_loaded += other.files_loaded


def _read_csv_rows(path: Path) -> List[List[float]]:
    """Read a numeric CSV (optionally with a header row) into float rows."""
    rows: List[List[float]] = []
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        for raw in reader:
            if not raw:
                continue
            try:
                rows.append([float(value) for value in raw])
            except ValueError:
                # Header or malformed row — skip it.
                continue
    return rows


def _canonical_movement(stem: str) -> Optional[str]:
    """Map a file stem like ``Squat_pointcloud`` to a canonical movement name."""
    cleaned = stem.lower()
    for suffix in ("_pointcloud", "_labels", "_label"):
        if cleaned.endswith(suffix):
            cleaned = cleaned[: -len(suffix)]
    cleaned = cleaned.strip("_- ")
    for name in MOVEMENT_NAMES:
        if cleaned.replace("-", "_").replace(" ", "_") == name:
            return name
    # Fall back to substring matching (e.g. "squats" -> "squat").
    for name in MOVEMENT_NAMES:
        if name.replace("_", "") in cleaned.replace("_", "").replace("-", ""):
            return name
    return None


def load_mars_pair(
    pointcloud_csv: Path,
    labels_csv: Path,
    subject_id: int,
    movement_name: str,
    sequence_id: int = 0,
) -> Tuple[List[LabelledFrame], MarsLoadReport]:
    """Load one (point cloud CSV, labels CSV) pair into labelled frames."""
    report = MarsLoadReport(files_loaded=2)

    cloud_rows = _read_csv_rows(Path(pointcloud_csv))
    label_rows = _read_csv_rows(Path(labels_csv))

    # Group point rows by frame id.
    points_by_frame: Dict[int, List[List[float]]] = {}
    for row in cloud_rows:
        if len(row) < 6:
            continue
        frame_id = int(row[0])
        points_by_frame.setdefault(frame_id, []).append(row[1:6])

    labels_by_frame: Dict[int, np.ndarray] = {}
    expected_label_len = NUM_JOINTS * 3
    for row in label_rows:
        if len(row) < expected_label_len + 1:
            continue
        frame_id = int(row[0])
        labels_by_frame[frame_id] = np.asarray(row[1 : expected_label_len + 1], dtype=float)

    samples: List[LabelledFrame] = []
    for frame_id in sorted(labels_by_frame):
        label = labels_by_frame[frame_id]
        if frame_id not in points_by_frame:
            report.num_dropped_unlabelled += 1
            continue
        points = np.asarray(points_by_frame[frame_id], dtype=float)
        if points.shape[0] == 0:
            report.num_dropped_empty += 1
            continue
        cloud = PointCloudFrame(points, timestamp=frame_id * 0.1, frame_index=frame_id)
        samples.append(
            LabelledFrame(
                cloud=cloud,
                joints=label.reshape(NUM_JOINTS, 3),
                subject_id=subject_id,
                movement_name=movement_name,
                sequence_id=sequence_id,
                frame_index=frame_id,
            )
        )
    report.num_frames = len(samples)
    return samples, report


def load_mars_directory(root: Path | str) -> Tuple[PoseDataset, MarsLoadReport]:
    """Load a MARS-layout directory tree into a :class:`PoseDataset`."""
    root = Path(root)
    if not root.exists():
        raise FileNotFoundError(f"MARS root directory '{root}' does not exist")

    dataset = PoseDataset(name=f"mars({root.name})")
    report = MarsLoadReport()
    sequence_id = 0

    subject_dirs = sorted(p for p in root.iterdir() if p.is_dir())
    for subject_dir in subject_dirs:
        digits = "".join(ch for ch in subject_dir.name if ch.isdigit())
        subject_id = int(digits) if digits else len(dataset.subjects()) + 1

        pointcloud_files = sorted(subject_dir.glob("*pointcloud*.csv"))
        for pointcloud_csv in pointcloud_files:
            movement = _canonical_movement(pointcloud_csv.stem)
            if movement is None:
                continue
            label_candidates = [
                pointcloud_csv.with_name(pointcloud_csv.name.replace("pointcloud", "labels")),
                pointcloud_csv.with_name(pointcloud_csv.name.replace("pointcloud", "label")),
            ]
            labels_csv = next((c for c in label_candidates if c.exists()), None)
            if labels_csv is None:
                continue
            samples, pair_report = load_mars_pair(
                pointcloud_csv, labels_csv, subject_id, movement, sequence_id=sequence_id
            )
            dataset.extend(samples)
            report.merge(pair_report)
            sequence_id += 1
    return dataset, report

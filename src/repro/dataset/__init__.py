"""``repro.dataset`` — labelled mmWave pose datasets.

Contains the synthetic MARS-like dataset generator, a loader for the real
MARS CSV layout, the paper's dataset splits, the point-cloud-to-feature-map
conversion consumed by the CNN models, and batch iteration utilities.
"""

from .cache import CacheStats, FeatureCache
from .features import FeatureMapBuilder, FeatureNormalization
from .loader import ArrayDataset, BatchLoader, build_array_dataset
from .mars import MarsLoadReport, load_mars_directory, load_mars_pair
from .sample import LABEL_DIM, LabelledFrame, PoseDataset
from .splits import AdaptationSplit, TrainValTest, leave_out_split, per_movement_split
from .statistics import DatasetSummary, summarize
from .synthetic import SyntheticDatasetConfig, SyntheticDatasetGenerator, generate_dataset

__all__ = [
    "LabelledFrame",
    "PoseDataset",
    "LABEL_DIM",
    "SyntheticDatasetConfig",
    "SyntheticDatasetGenerator",
    "generate_dataset",
    "MarsLoadReport",
    "load_mars_directory",
    "load_mars_pair",
    "TrainValTest",
    "AdaptationSplit",
    "per_movement_split",
    "leave_out_split",
    "FeatureMapBuilder",
    "FeatureNormalization",
    "FeatureCache",
    "CacheStats",
    "ArrayDataset",
    "BatchLoader",
    "build_array_dataset",
    "DatasetSummary",
    "summarize",
]

"""``repro.dataset`` — labelled mmWave pose datasets and feature building.

The data layer's contract: everything between raw point clouds and the
``(N, C, H, W)`` feature tensors the models consume lives here, and every
stage is deterministic for a fixed configuration (generation draws
randomness per work item via :mod:`repro.runtime.seeding`, so sharded
generation is bitwise identical to serial).

Public entry points:

* :func:`generate_dataset` / :class:`SyntheticDatasetConfig` — the
  synthetic MARS-like dataset generator (shardable over a
  :class:`repro.runtime.ExecutionPlan`);
* :func:`load_mars_directory` / :func:`load_mars_pair` — loader for the
  real MARS CSV layout;
* :class:`PoseDataset` / :class:`LabelledFrame` — the labelled-frame
  containers every driver exchanges;
* :class:`FeatureMapBuilder` — point-cloud-to-feature-map conversion
  (vectorized ``build_batch``), with :class:`FeatureCache` memoization
  (in-memory LRU, optional disk spill);
* :func:`per_movement_split` / :func:`leave_out_split` — the paper's
  evaluation splits;
* :class:`BatchLoader` / :func:`build_array_dataset` — batch iteration for
  training loops.
"""

from .cache import CacheStats, FeatureCache
from .features import FeatureMapBuilder, FeatureNormalization
from .loader import ArrayDataset, BatchLoader, build_array_dataset
from .mars import MarsLoadReport, load_mars_directory, load_mars_pair
from .sample import LABEL_DIM, LabelledFrame, PoseDataset
from .splits import AdaptationSplit, TrainValTest, leave_out_split, per_movement_split
from .statistics import DatasetSummary, summarize
from .synthetic import SyntheticDatasetConfig, SyntheticDatasetGenerator, generate_dataset

__all__ = [
    "LabelledFrame",
    "PoseDataset",
    "LABEL_DIM",
    "SyntheticDatasetConfig",
    "SyntheticDatasetGenerator",
    "generate_dataset",
    "MarsLoadReport",
    "load_mars_directory",
    "load_mars_pair",
    "TrainValTest",
    "AdaptationSplit",
    "per_movement_split",
    "leave_out_split",
    "FeatureMapBuilder",
    "FeatureNormalization",
    "FeatureCache",
    "CacheStats",
    "ArrayDataset",
    "BatchLoader",
    "build_array_dataset",
    "DatasetSummary",
    "summarize",
]

"""Dataset summary statistics.

Used by the documentation examples and by EXPERIMENTS.md to report what the
synthetic dataset looks like (frames per subject/movement, point-cloud
sparsity, label ranges) next to the corresponding MARS numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from .sample import PoseDataset

__all__ = ["DatasetSummary", "summarize"]


@dataclass
class DatasetSummary:
    """Aggregate statistics of a pose dataset."""

    num_frames: int
    num_subjects: int
    num_movements: int
    frames_per_subject: Dict[int, int]
    frames_per_movement: Dict[str, int]
    mean_points_per_frame: float
    min_points_per_frame: int
    max_points_per_frame: int
    empty_frame_fraction: float
    label_min: np.ndarray
    label_max: np.ndarray

    def as_text(self) -> str:
        """Render the summary as a small human-readable report."""
        lines = [
            f"frames: {self.num_frames}",
            f"subjects: {self.num_subjects}, movements: {self.num_movements}",
            f"points/frame: mean {self.mean_points_per_frame:.1f}, "
            f"min {self.min_points_per_frame}, max {self.max_points_per_frame}",
            f"empty frames: {self.empty_frame_fraction * 100:.2f}%",
            "frames per subject: "
            + ", ".join(f"{k}: {v}" for k, v in sorted(self.frames_per_subject.items())),
            "frames per movement: "
            + ", ".join(f"{k}: {v}" for k, v in sorted(self.frames_per_movement.items())),
        ]
        return "\n".join(lines)


def summarize(dataset: PoseDataset) -> DatasetSummary:
    """Compute :class:`DatasetSummary` statistics for ``dataset``."""
    if len(dataset) == 0:
        return DatasetSummary(
            num_frames=0,
            num_subjects=0,
            num_movements=0,
            frames_per_subject={},
            frames_per_movement={},
            mean_points_per_frame=0.0,
            min_points_per_frame=0,
            max_points_per_frame=0,
            empty_frame_fraction=0.0,
            label_min=np.zeros(3),
            label_max=np.zeros(3),
        )

    counts = dataset.point_counts()
    frames_per_subject: Dict[int, int] = {}
    frames_per_movement: Dict[str, int] = {}
    for sample in dataset:
        frames_per_subject[sample.subject_id] = frames_per_subject.get(sample.subject_id, 0) + 1
        frames_per_movement[sample.movement_name] = (
            frames_per_movement.get(sample.movement_name, 0) + 1
        )

    labels = np.stack([sample.joints for sample in dataset])
    return DatasetSummary(
        num_frames=len(dataset),
        num_subjects=len(frames_per_subject),
        num_movements=len(frames_per_movement),
        frames_per_subject=frames_per_subject,
        frames_per_movement=frames_per_movement,
        mean_points_per_frame=float(counts.mean()),
        min_points_per_frame=int(counts.min()),
        max_points_per_frame=int(counts.max()),
        empty_frame_fraction=float(np.mean(counts == 0)),
        label_min=labels.reshape(-1, 3).min(axis=0),
        label_max=labels.reshape(-1, 3).max(axis=0),
    )

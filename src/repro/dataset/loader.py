"""Batch iteration over feature/label arrays.

A tiny data-loader abstraction: :class:`ArrayDataset` holds pre-built feature
maps and labels as NumPy arrays, and :class:`BatchLoader` iterates over them
in (optionally shuffled) mini-batches.  Keeping the arrays materialized makes
epoch iteration cheap, which matters because the fine-tuning experiments run
the same small dataset for tens of epochs.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..runtime import map_shards
from .features import FeatureMapBuilder
from .sample import LabelledFrame, PoseDataset

__all__ = ["ArrayDataset", "BatchLoader", "build_array_dataset", "build_features_sharded"]


@dataclass
class ArrayDataset:
    """Feature maps and labels materialized as arrays."""

    features: np.ndarray
    labels: np.ndarray

    def __post_init__(self) -> None:
        self.features = np.asarray(self.features, dtype=float)
        self.labels = np.asarray(self.labels, dtype=float)
        if self.features.shape[0] != self.labels.shape[0]:
            raise ValueError(
                f"features ({self.features.shape[0]}) and labels ({self.labels.shape[0]}) "
                "must have the same number of rows"
            )

    def __len__(self) -> int:
        return int(self.features.shape[0])

    def subset(self, indices: Sequence[int]) -> "ArrayDataset":
        """Return a new dataset restricted to ``indices``."""
        indices = np.asarray(indices, dtype=int)
        return ArrayDataset(self.features[indices], self.labels[indices])

    def sample(self, count: int, rng: np.random.Generator) -> "ArrayDataset":
        """Uniformly sample ``count`` rows (without replacement when possible)."""
        if count <= 0:
            raise ValueError("count must be positive")
        replace = count > len(self)
        indices = rng.choice(len(self), size=count, replace=replace)
        return self.subset(indices)

    def split(self, fraction: float, rng: Optional[np.random.Generator] = None) -> Tuple["ArrayDataset", "ArrayDataset"]:
        """Randomly split into two datasets of sizes ``fraction`` / ``1 - fraction``."""
        if not 0.0 < fraction < 1.0:
            raise ValueError("fraction must be in (0, 1)")
        rng = rng if rng is not None else np.random.default_rng(0)
        indices = rng.permutation(len(self))
        cut = int(round(len(self) * fraction))
        return self.subset(indices[:cut]), self.subset(indices[cut:])


@dataclass
class BatchLoader:
    """Mini-batch iterator over an :class:`ArrayDataset`."""

    dataset: ArrayDataset
    batch_size: int = 128
    shuffle: bool = True
    seed: int = 0
    drop_last: bool = False

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self._epoch = 0

    def __len__(self) -> int:
        """Number of batches per epoch."""
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        n = len(self.dataset)
        indices = np.arange(n)
        if self.shuffle:
            rng = np.random.default_rng(self.seed + self._epoch)
            indices = rng.permutation(n)
        self._epoch += 1
        for start in range(0, n, self.batch_size):
            batch = indices[start : start + self.batch_size]
            if self.drop_last and batch.shape[0] < self.batch_size:
                break
            yield self.dataset.features[batch], self.dataset.labels[batch]


def _build_feature_shard(
    builder: FeatureMapBuilder, samples: List[LabelledFrame]
) -> Tuple[np.ndarray, np.ndarray]:
    """Build one shard's feature/label arrays (module-level: crosses the
    worker pool's pickle boundary)."""
    return builder.build_dataset(samples)


#: Below this many frames per worker the vectorized serial build finishes in
#: less time than forking a pool and pickling the arrays back.
_MIN_FRAMES_PER_WORKER = 1024


def build_features_sharded(
    samples: Sequence[LabelledFrame],
    builder: FeatureMapBuilder,
    workers: int = 1,
    min_frames_per_worker: int = _MIN_FRAMES_PER_WORKER,
) -> Tuple[np.ndarray, np.ndarray]:
    """Build feature/label arrays, sharding frames over a process pool.

    Feature maps are built per frame with no cross-frame coupling, so
    chunking the batch and concatenating the shard results is bitwise
    identical to one whole-batch build — the worker count only changes the
    wall clock.  Small batches (fewer than ``min_frames_per_worker`` frames
    per worker) stay on the serial path: pool start-up and pickling would
    dwarf the build itself.
    """
    sample_list = list(samples)
    if workers <= 1 or len(sample_list) < workers * min_frames_per_worker:
        return builder.build_dataset(sample_list)
    shards = map_shards(partial(_build_feature_shard, builder), sample_list, workers=workers)
    features = np.concatenate([shard[0] for shard in shards])
    labels = np.concatenate([shard[1] for shard in shards])
    return features, labels


def build_array_dataset(
    samples: PoseDataset | Sequence[LabelledFrame],
    builder: Optional[FeatureMapBuilder] = None,
    rng: Optional[np.random.Generator] = None,
    workers: int = 1,
) -> ArrayDataset:
    """Convert labelled samples into an :class:`ArrayDataset` of feature maps.

    ``workers > 1`` fans the (rng-free) build out over a process pool; a
    caller-supplied ``rng`` forces the serial path, because sharding would
    change the draw order of the ``"random"`` selection mode.
    """
    builder = builder if builder is not None else FeatureMapBuilder()
    sample_list = list(samples)
    if rng is None:
        features, labels = build_features_sharded(sample_list, builder, workers=workers)
    else:
        features, labels = builder.build_dataset(sample_list, rng=rng)
    return ArrayDataset(features, labels)

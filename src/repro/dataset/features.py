"""Point-cloud to feature-map conversion (the MARS input representation).

The MARS baseline CNN — which FUSE reuses unchanged — does not consume raw
variable-length point lists.  Each frame is converted to a fixed-size feature
map: the points are sorted, padded/truncated to a fixed budget and arranged
into an ``(channels, height, width)`` grid where the five channels are the
Eq. 1 per-point features ``(x, y, z, doppler, intensity)``.  With the default
64-point budget this yields the 8x8x5 representation described in the MARS
paper, and the two-conv + two-FC model on top of it has ~1.1 M parameters as
reported in Section 4.1 of the FUSE paper.

Multi-frame fusion multiplies the number of candidate points; the feature map
keeps the same size (so the model is unchanged, as the paper requires for a
fair comparison) but its 64 slots are filled from a much richer candidate
set, which is exactly where the accuracy improvement comes from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple

import numpy as np

from ..radar.pointcloud import PointCloudFrame
from .sample import LabelledFrame

__all__ = ["FeatureNormalization", "FeatureMapBuilder"]


@dataclass(frozen=True)
class FeatureNormalization:
    """Affine normalization ranges for each point-cloud channel.

    Each channel is mapped to roughly ``[-1, 1]`` using fixed scene-level
    bounds, so the normalization is deterministic and identical across
    training and deployment (no per-batch statistics).
    """

    x_range: Tuple[float, float] = (-1.5, 1.5)
    y_range: Tuple[float, float] = (0.0, 5.0)
    z_range: Tuple[float, float] = (0.0, 2.5)
    doppler_range: Tuple[float, float] = (-2.0, 2.0)
    intensity_range: Tuple[float, float] = (-10.0, 40.0)

    def ranges(self) -> np.ndarray:
        """Stack the channel ranges into a ``(5, 2)`` array."""
        return np.array(
            [
                self.x_range,
                self.y_range,
                self.z_range,
                self.doppler_range,
                self.intensity_range,
            ],
            dtype=float,
        )

    def apply(self, points: np.ndarray) -> np.ndarray:
        """Normalize an ``(N, 5)`` point array channel-wise to ``[-1, 1]``."""
        points = np.asarray(points, dtype=float)
        if points.ndim != 2 or points.shape[1] != 5:
            raise ValueError(f"expected an (N, 5) point array, got {points.shape}")
        ranges = self.ranges()
        low, high = ranges[:, 0], ranges[:, 1]
        scale = np.where(high > low, high - low, 1.0)
        normalized = 2.0 * (points - low) / scale - 1.0
        return np.clip(normalized, -1.5, 1.5)


@dataclass(frozen=True)
class FeatureMapBuilder:
    """Builds fixed-size CNN inputs from (possibly fused) point-cloud frames.

    Parameters
    ----------
    layout:
        How points are arranged on the ``(H, W)`` grid.

        * ``"projection"`` (default) — project every point onto a fixed
          lateral-by-height grid (x across the columns, z across the rows)
          and store the intensity-weighted mean of the five channels in each
          occupied cell.  This is the "sort + matrix transformation"
          preprocessing of MARS expressed as a spatial histogram: the input
          size is independent of the number of points, so multi-frame fusion
          enriches the map (more occupied cells, better-averaged features)
          without changing the model.
        * ``"sorted"`` — the point-list layout: pad/truncate to
          ``num_points`` points, sort them, and reshape the list into the
          grid.  Kept for the input-representation ablation.
    num_points:
        Point budget of the ``"sorted"`` layout (64 in MARS).  Must equal
        ``grid_height * grid_width``.
    grid_height / grid_width:
        Spatial dimensions of the feature map.
    normalization:
        Channel normalization applied to the per-point features.
    x_grid_range / z_grid_range:
        Spatial extent (metres) covered by the projection grid.
    sort_axis:
        Point ordering for the ``"sorted"`` layout: ``"spatial"`` (height
        then lateral position), ``"intensity"`` or ``"none"``.
    selection:
        How the ``"sorted"`` layout reduces an over-full candidate set:
        ``"intensity"`` keeps the strongest returns, ``"random"`` samples
        uniformly (requires an ``rng`` at call time).
    """

    layout: str = "projection"
    num_points: int = 64
    grid_height: int = 8
    grid_width: int = 8
    normalization: FeatureNormalization = FeatureNormalization()
    x_grid_range: Tuple[float, float] = (-0.9, 0.9)
    z_grid_range: Tuple[float, float] = (0.0, 2.0)
    sort_axis: str = "spatial"
    selection: str = "intensity"

    def __post_init__(self) -> None:
        if self.layout not in ("projection", "sorted"):
            raise ValueError(f"unknown layout '{self.layout}'")
        if self.num_points != self.grid_height * self.grid_width:
            raise ValueError(
                f"num_points ({self.num_points}) must equal grid_height * grid_width "
                f"({self.grid_height * self.grid_width})"
            )
        if self.sort_axis not in ("spatial", "intensity", "none"):
            raise ValueError(f"unknown sort_axis '{self.sort_axis}'")
        if self.selection not in ("intensity", "random"):
            raise ValueError(f"unknown selection '{self.selection}'")
        if self.x_grid_range[0] >= self.x_grid_range[1]:
            raise ValueError("x_grid_range must be increasing")
        if self.z_grid_range[0] >= self.z_grid_range[1]:
            raise ValueError("z_grid_range must be increasing")

    # ------------------------------------------------------------------
    # Shape information
    # ------------------------------------------------------------------
    @property
    def num_channels(self) -> int:
        return 5

    @property
    def feature_shape(self) -> Tuple[int, int, int]:
        """Shape of one feature map: ``(channels, height, width)``."""
        return (self.num_channels, self.grid_height, self.grid_width)

    # ------------------------------------------------------------------
    # Core conversion
    # ------------------------------------------------------------------
    def _select(self, points: np.ndarray, rng: np.random.Generator | None) -> np.ndarray:
        """Reduce the candidate point set to at most ``num_points`` rows."""
        if points.shape[0] <= self.num_points:
            return points
        if self.selection == "intensity":
            order = np.argsort(points[:, 4])[::-1]
            return points[order[: self.num_points]]
        if rng is None:
            rng = np.random.default_rng(0)
        chosen = rng.choice(points.shape[0], size=self.num_points, replace=False)
        return points[chosen]

    def _sort(self, points: np.ndarray) -> np.ndarray:
        """Order points so the grid layout is spatially meaningful."""
        if points.shape[0] == 0 or self.sort_axis == "none":
            return points
        if self.sort_axis == "intensity":
            order = np.argsort(points[:, 4])[::-1]
            return points[order]
        # Spatial: sort by height (descending) then lateral position so that
        # consecutive grid rows correspond to horizontal slices of the body.
        order = np.lexsort((points[:, 0], -points[:, 2]))
        return points[order]

    def _build_sorted(self, points: np.ndarray, rng: np.random.Generator | None) -> np.ndarray:
        """The point-list layout: select, sort, normalize, pad and reshape."""
        if points.shape[0] > 0:
            points = self._select(points, rng)
            points = self._sort(points)
            points = self.normalization.apply(points)
        padded = np.zeros((self.num_points, self.num_channels))
        count = min(points.shape[0], self.num_points)
        if count:
            padded[:count] = points[:count]
        grid = padded.reshape(self.grid_height, self.grid_width, self.num_channels)
        return np.ascontiguousarray(grid.transpose(2, 0, 1))

    def _build_projection(self, points: np.ndarray) -> np.ndarray:
        """The spatial-projection layout: intensity-weighted cell averages."""
        feature_map = np.zeros((self.num_channels, self.grid_height, self.grid_width))
        if points.shape[0] == 0:
            return feature_map

        x_low, x_high = self.x_grid_range
        z_low, z_high = self.z_grid_range
        # Column index from the lateral coordinate, row index from height
        # (row 0 = top of the scene so the map reads like an image).
        cols = np.floor(
            (points[:, 0] - x_low) / (x_high - x_low) * self.grid_width
        ).astype(int)
        rows = np.floor(
            (z_high - points[:, 2]) / (z_high - z_low) * self.grid_height
        ).astype(int)
        in_bounds = (
            (cols >= 0) & (cols < self.grid_width) & (rows >= 0) & (rows < self.grid_height)
        )
        if not np.any(in_bounds):
            return feature_map

        points = points[in_bounds]
        rows, cols = rows[in_bounds], cols[in_bounds]
        normalized = self.normalization.apply(points)
        weights = np.maximum(points[:, 4] - points[:, 4].min() + 1.0, 1e-3)

        weight_sum = np.zeros((self.grid_height, self.grid_width))
        np.add.at(weight_sum, (rows, cols), weights)
        for channel in range(self.num_channels):
            accumulator = np.zeros((self.grid_height, self.grid_width))
            np.add.at(accumulator, (rows, cols), weights * normalized[:, channel])
            occupied = weight_sum > 0
            feature_map[channel][occupied] = accumulator[occupied] / weight_sum[occupied]
        return feature_map

    def build(
        self, cloud: PointCloudFrame, rng: np.random.Generator | None = None
    ) -> np.ndarray:
        """Convert one point-cloud frame into a ``(5, H, W)`` feature map."""
        if self.layout == "projection":
            return self._build_projection(cloud.points)
        return self._build_sorted(cloud.points, rng)

    def build_batch(
        self,
        clouds: Iterable[PointCloudFrame],
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Convert an iterable of frames into a ``(B, 5, H, W)`` batch."""
        maps = [self.build(cloud, rng=rng) for cloud in clouds]
        if not maps:
            return np.zeros((0, *self.feature_shape))
        return np.stack(maps)

    def build_dataset(
        self,
        samples: Sequence[LabelledFrame],
        rng: np.random.Generator | None = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Convert labelled samples into ``(features, labels)`` arrays.

        Returns feature maps of shape ``(B, 5, H, W)`` and labels of shape
        ``(B, 57)`` (metres).
        """
        features = self.build_batch((sample.cloud for sample in samples), rng=rng)
        if len(samples) == 0:
            return features, np.zeros((0, 57))
        labels = np.stack([sample.label_vector for sample in samples])
        return features, labels

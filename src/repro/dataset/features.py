"""Point-cloud to feature-map conversion (the MARS input representation).

The MARS baseline CNN — which FUSE reuses unchanged — does not consume raw
variable-length point lists.  Each frame is converted to a fixed-size feature
map: the points are sorted, padded/truncated to a fixed budget and arranged
into an ``(channels, height, width)`` grid where the five channels are the
Eq. 1 per-point features ``(x, y, z, doppler, intensity)``.  With the default
64-point budget this yields the 8x8x5 representation described in the MARS
paper, and the two-conv + two-FC model on top of it has ~1.1 M parameters as
reported in Section 4.1 of the FUSE paper.

Multi-frame fusion multiplies the number of candidate points; the feature map
keeps the same size (so the model is unchanged, as the paper requires for a
fair comparison) but its 64 slots are filled from a much richer candidate
set, which is exactly where the accuracy improvement comes from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple

import numpy as np

from ..radar.pointcloud import PointCloudFrame
from .sample import LabelledFrame

__all__ = ["FeatureNormalization", "FeatureMapBuilder"]


@dataclass(frozen=True)
class FeatureNormalization:
    """Affine normalization ranges for each point-cloud channel.

    Each channel is mapped to roughly ``[-1, 1]`` using fixed scene-level
    bounds, so the normalization is deterministic and identical across
    training and deployment (no per-batch statistics).
    """

    x_range: Tuple[float, float] = (-1.5, 1.5)
    y_range: Tuple[float, float] = (0.0, 5.0)
    z_range: Tuple[float, float] = (0.0, 2.5)
    doppler_range: Tuple[float, float] = (-2.0, 2.0)
    intensity_range: Tuple[float, float] = (-10.0, 40.0)

    def ranges(self) -> np.ndarray:
        """Stack the channel ranges into a ``(5, 2)`` array."""
        return np.array(
            [
                self.x_range,
                self.y_range,
                self.z_range,
                self.doppler_range,
                self.intensity_range,
            ],
            dtype=float,
        )

    def apply(self, points: np.ndarray) -> np.ndarray:
        """Normalize a ``(..., 5)`` point array channel-wise to ``[-1, 1]``."""
        points = np.asarray(points, dtype=float)
        if points.ndim < 2 or points.shape[-1] != 5:
            raise ValueError(f"expected a (..., 5) point array, got {points.shape}")
        ranges = self.ranges()
        low, high = ranges[:, 0], ranges[:, 1]
        scale = np.where(high > low, high - low, 1.0)
        normalized = 2.0 * (points - low) / scale - 1.0
        return np.clip(normalized, -1.5, 1.5)


@dataclass(frozen=True)
class FeatureMapBuilder:
    """Builds fixed-size CNN inputs from (possibly fused) point-cloud frames.

    Parameters
    ----------
    layout:
        How points are arranged on the ``(H, W)`` grid.

        * ``"projection"`` (default) — project every point onto a fixed
          lateral-by-height grid (x across the columns, z across the rows)
          and store the intensity-weighted mean of the five channels in each
          occupied cell.  This is the "sort + matrix transformation"
          preprocessing of MARS expressed as a spatial histogram: the input
          size is independent of the number of points, so multi-frame fusion
          enriches the map (more occupied cells, better-averaged features)
          without changing the model.
        * ``"sorted"`` — the point-list layout: pad/truncate to
          ``num_points`` points, sort them, and reshape the list into the
          grid.  Kept for the input-representation ablation.
    num_points:
        Point budget of the ``"sorted"`` layout (64 in MARS).  Must equal
        ``grid_height * grid_width``.
    grid_height / grid_width:
        Spatial dimensions of the feature map.
    normalization:
        Channel normalization applied to the per-point features.
    x_grid_range / z_grid_range:
        Spatial extent (metres) covered by the projection grid.
    sort_axis:
        Point ordering for the ``"sorted"`` layout: ``"spatial"`` (height
        then lateral position), ``"intensity"`` or ``"none"``.
    selection:
        How the ``"sorted"`` layout reduces an over-full candidate set:
        ``"intensity"`` keeps the strongest returns, ``"random"`` samples
        uniformly (requires an ``rng`` at call time).
    """

    layout: str = "projection"
    num_points: int = 64
    grid_height: int = 8
    grid_width: int = 8
    normalization: FeatureNormalization = FeatureNormalization()
    x_grid_range: Tuple[float, float] = (-0.9, 0.9)
    z_grid_range: Tuple[float, float] = (0.0, 2.0)
    sort_axis: str = "spatial"
    selection: str = "intensity"

    def __post_init__(self) -> None:
        if self.layout not in ("projection", "sorted"):
            raise ValueError(f"unknown layout '{self.layout}'")
        if self.num_points != self.grid_height * self.grid_width:
            raise ValueError(
                f"num_points ({self.num_points}) must equal grid_height * grid_width "
                f"({self.grid_height * self.grid_width})"
            )
        if self.sort_axis not in ("spatial", "intensity", "none"):
            raise ValueError(f"unknown sort_axis '{self.sort_axis}'")
        if self.selection not in ("intensity", "random"):
            raise ValueError(f"unknown selection '{self.selection}'")
        if self.x_grid_range[0] >= self.x_grid_range[1]:
            raise ValueError("x_grid_range must be increasing")
        if self.z_grid_range[0] >= self.z_grid_range[1]:
            raise ValueError("z_grid_range must be increasing")

    # ------------------------------------------------------------------
    # Shape information
    # ------------------------------------------------------------------
    @property
    def num_channels(self) -> int:
        return 5

    @property
    def feature_shape(self) -> Tuple[int, int, int]:
        """Shape of one feature map: ``(channels, height, width)``."""
        return (self.num_channels, self.grid_height, self.grid_width)

    # ------------------------------------------------------------------
    # Core conversion
    # ------------------------------------------------------------------
    def _select(self, points: np.ndarray, rng: np.random.Generator | None) -> np.ndarray:
        """Reduce the candidate point set to at most ``num_points`` rows."""
        if points.shape[0] <= self.num_points:
            return points
        if self.selection == "intensity":
            order = np.argsort(points[:, 4])[::-1]
            return points[order[: self.num_points]]
        if rng is None:
            rng = np.random.default_rng(0)
        chosen = rng.choice(points.shape[0], size=self.num_points, replace=False)
        return points[chosen]

    def _sort(self, points: np.ndarray) -> np.ndarray:
        """Order points so the grid layout is spatially meaningful."""
        if points.shape[0] == 0 or self.sort_axis == "none":
            return points
        if self.sort_axis == "intensity":
            order = np.argsort(points[:, 4])[::-1]
            return points[order]
        # Spatial: sort by height (descending) then lateral position so that
        # consecutive grid rows correspond to horizontal slices of the body.
        order = np.lexsort((points[:, 0], -points[:, 2]))
        return points[order]

    def _build_sorted(self, points: np.ndarray, rng: np.random.Generator | None) -> np.ndarray:
        """The point-list layout: select, sort, normalize, pad and reshape."""
        if points.shape[0] > 0:
            points = self._select(points, rng)
            points = self._sort(points)
            points = self.normalization.apply(points)
        padded = np.zeros((self.num_points, self.num_channels))
        count = min(points.shape[0], self.num_points)
        if count:
            padded[:count] = points[:count]
        grid = padded.reshape(self.grid_height, self.grid_width, self.num_channels)
        return np.ascontiguousarray(grid.transpose(2, 0, 1))

    def _build_projection(self, points: np.ndarray) -> np.ndarray:
        """The spatial-projection layout: intensity-weighted cell averages."""
        feature_map = np.zeros((self.num_channels, self.grid_height, self.grid_width))
        if points.shape[0] == 0:
            return feature_map

        x_low, x_high = self.x_grid_range
        z_low, z_high = self.z_grid_range
        # Column index from the lateral coordinate, row index from height
        # (row 0 = top of the scene so the map reads like an image).
        cols = np.floor(
            (points[:, 0] - x_low) / (x_high - x_low) * self.grid_width
        ).astype(int)
        rows = np.floor(
            (z_high - points[:, 2]) / (z_high - z_low) * self.grid_height
        ).astype(int)
        in_bounds = (
            (cols >= 0) & (cols < self.grid_width) & (rows >= 0) & (rows < self.grid_height)
        )
        if not np.any(in_bounds):
            return feature_map

        points = points[in_bounds]
        rows, cols = rows[in_bounds], cols[in_bounds]
        normalized = self.normalization.apply(points)
        weights = np.maximum(points[:, 4] - points[:, 4].min() + 1.0, 1e-3)

        weight_sum = np.zeros((self.grid_height, self.grid_width))
        np.add.at(weight_sum, (rows, cols), weights)
        for channel in range(self.num_channels):
            accumulator = np.zeros((self.grid_height, self.grid_width))
            np.add.at(accumulator, (rows, cols), weights * normalized[:, channel])
            occupied = weight_sum > 0
            feature_map[channel][occupied] = accumulator[occupied] / weight_sum[occupied]
        return feature_map

    # ------------------------------------------------------------------
    # Batched conversion
    # ------------------------------------------------------------------
    def _build_projection_batch(
        self, points: np.ndarray, frame_ids: np.ndarray, batch: int
    ) -> np.ndarray:
        """Vectorized projection layout for a ragged batch.

        ``points`` is the ``(P, 5)`` concatenation of every frame's points and
        ``frame_ids`` maps each row to its frame.  All per-cell accumulation
        runs through flat ``bincount`` calls over ``frame * cell`` indices, so
        the cost is independent of the number of frames.
        """
        feature_maps = np.zeros((batch, self.num_channels, self.grid_height, self.grid_width))
        if points.shape[0] == 0:
            return feature_maps

        x_low, x_high = self.x_grid_range
        z_low, z_high = self.z_grid_range
        cols = np.floor((points[:, 0] - x_low) / (x_high - x_low) * self.grid_width).astype(int)
        rows = np.floor((z_high - points[:, 2]) / (z_high - z_low) * self.grid_height).astype(int)
        in_bounds = (
            (cols >= 0) & (cols < self.grid_width) & (rows >= 0) & (rows < self.grid_height)
        )
        if not np.any(in_bounds):
            return feature_maps

        points = points[in_bounds]
        rows, cols = rows[in_bounds], cols[in_bounds]
        frame_ids = frame_ids[in_bounds]
        normalized = self.normalization.apply(points)

        # Per-frame intensity floor (the sequential path subtracts the frame
        # minimum of the *in-bounds* points before weighting).
        frame_min = np.full(batch, np.inf)
        np.minimum.at(frame_min, frame_ids, points[:, 4])
        weights = np.maximum(points[:, 4] - frame_min[frame_ids] + 1.0, 1e-3)

        cells = self.grid_height * self.grid_width
        flat = frame_ids * cells + rows * self.grid_width + cols
        weight_sum = np.bincount(flat, weights=weights, minlength=batch * cells)
        occupied = weight_sum > 0
        safe_weight = np.where(occupied, weight_sum, 1.0)
        for channel in range(self.num_channels):
            accumulator = np.bincount(
                flat, weights=weights * normalized[:, channel], minlength=batch * cells
            )
            values = np.where(occupied, accumulator / safe_weight, 0.0)
            feature_maps[:, channel] = values.reshape(batch, self.grid_height, self.grid_width)
        return feature_maps

    def _build_sorted_batch(
        self,
        per_frame_points: list[np.ndarray],
        rng: np.random.Generator | None,
    ) -> np.ndarray:
        """Vectorized point-list layout for a ragged batch.

        Frames are padded to a common length with sentinel rows; selection
        and ordering then run as batched ``argsort``/``lexsort`` calls whose
        per-row results match the sequential :meth:`_build_sorted`.
        """
        batch = len(per_frame_points)
        out = np.zeros((batch, self.num_channels, self.grid_height, self.grid_width))
        counts = np.array([p.shape[0] for p in per_frame_points], dtype=int)
        if batch == 0 or counts.max(initial=0) == 0:
            return out

        if self.selection == "random":
            # Random subsampling is inherently per-frame (without-replacement
            # draws of ragged sizes); fall back to the reference path.
            maps = [self._build_sorted(p, rng) for p in per_frame_points]
            return np.stack(maps)

        max_count = int(counts.max())
        padded = np.zeros((batch, max_count, self.num_channels))
        present = np.arange(max_count)[None, :] < counts[:, None]
        for index, pts in enumerate(per_frame_points):
            if pts.shape[0]:
                padded[index, : pts.shape[0]] = pts

        # Selection: keep the strongest ``num_points`` returns per frame.
        # Frames within budget keep their original row order (the sequential
        # path skips selection for them, which matters for sort_axis="none").
        if max_count > self.num_points:
            intensity = np.where(present, padded[:, :, 4], -np.inf)
            by_intensity = np.argsort(intensity, axis=1)[:, ::-1]
            original = np.broadcast_to(np.arange(max_count), (batch, max_count))
            order = np.where((counts > self.num_points)[:, None], by_intensity, original)
            order = order[:, : self.num_points]
            padded = np.take_along_axis(padded, order[:, :, None], axis=1)
            present = np.take_along_axis(present, order, axis=1)

        kept = padded.shape[1]
        # Ordering for the grid layout, with absent rows pushed to the end.
        if self.sort_axis == "intensity":
            key = np.where(present, padded[:, :, 4], -np.inf)
            order = np.argsort(key, axis=1)[:, ::-1]
        elif self.sort_axis == "spatial":
            minus_z = np.where(present, -padded[:, :, 2], np.inf)
            x = np.where(present, padded[:, :, 0], np.inf)
            order = np.lexsort((x, minus_z), axis=1)
        else:  # "none": preserve input order, absent rows already trail
            order = np.broadcast_to(np.arange(kept), (batch, kept))
        padded = np.take_along_axis(padded, order[:, :, None], axis=1)
        present = np.take_along_axis(present, order, axis=1)

        normalized = np.where(present[:, :, None], self.normalization.apply(padded), 0.0)
        result = np.zeros((batch, self.num_points, self.num_channels))
        usable = min(kept, self.num_points)
        result[:, :usable] = normalized[:, :usable]
        grids = result.reshape(batch, self.grid_height, self.grid_width, self.num_channels)
        return np.ascontiguousarray(grids.transpose(0, 3, 1, 2))

    def build(
        self, cloud: PointCloudFrame, rng: np.random.Generator | None = None
    ) -> np.ndarray:
        """Convert one point-cloud frame into a ``(5, H, W)`` feature map."""
        if self.layout == "projection":
            return self._build_projection(cloud.points)
        return self._build_sorted(cloud.points, rng)

    def build_batch(
        self,
        clouds: Iterable[PointCloudFrame],
        rng: np.random.Generator | None = None,
        vectorized: bool = True,
    ) -> np.ndarray:
        """Convert an iterable of frames into a ``(B, 5, H, W)`` batch.

        The default path vectorizes the conversion across the whole batch
        (one pass over a ragged concatenation of every frame's points);
        ``vectorized=False`` keeps the frame-at-a-time reference path used by
        the equivalence tests.
        """
        per_frame = [np.asarray(cloud.points, dtype=float) for cloud in clouds]
        batch = len(per_frame)
        if batch == 0:
            return np.zeros((0, *self.feature_shape))
        if not vectorized:
            if self.layout == "projection":
                return np.stack([self._build_projection(p) for p in per_frame])
            return np.stack([self._build_sorted(p, rng) for p in per_frame])
        if self.layout == "projection":
            counts = np.array([p.shape[0] for p in per_frame], dtype=int)
            points = (
                np.concatenate(per_frame, axis=0) if counts.sum() else np.zeros((0, 5))
            )
            frame_ids = np.repeat(np.arange(batch), counts)
            return self._build_projection_batch(points, frame_ids, batch)
        return self._build_sorted_batch(per_frame, rng)

    def build_dataset(
        self,
        samples: Sequence[LabelledFrame],
        rng: np.random.Generator | None = None,
        vectorized: bool = True,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Convert labelled samples into ``(features, labels)`` arrays.

        Returns feature maps of shape ``(B, 5, H, W)`` and labels of shape
        ``(B, 57)`` (metres).
        """
        features = self.build_batch(
            (sample.cloud for sample in samples), rng=rng, vectorized=vectorized
        )
        if len(samples) == 0:
            return features, np.zeros((0, 57))
        labels = np.stack([sample.label_vector for sample in samples])
        return features, labels

"""Labelled-sample containers for the pose-estimation dataset.

A :class:`LabelledFrame` pairs one mmWave point-cloud frame (Eq. 1) with its
ground-truth 19-joint skeleton (the Kinect label in MARS, the kinematic model
output in the synthetic dataset) and provenance metadata (subject, movement,
frame index).  A :class:`PoseDataset` is an ordered collection of labelled
frames with convenience selectors used by the split logic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional, Sequence

import numpy as np

from ..body.skeleton import NUM_JOINTS
from ..radar.pointcloud import PointCloudFrame

__all__ = ["LabelledFrame", "PoseDataset", "LABEL_DIM"]

#: Length of the flattened label vector (19 joints x 3 coordinates).
LABEL_DIM: int = NUM_JOINTS * 3


@dataclass
class LabelledFrame:
    """One labelled mmWave frame.

    Attributes
    ----------
    cloud:
        The point-cloud frame observed by the radar.
    joints:
        Ground-truth joint positions, shape ``(19, 3)`` in metres.
    subject_id:
        1-based subject identifier.
    movement_name:
        Canonical movement name (see :data:`repro.body.MOVEMENT_NAMES`).
    sequence_id:
        Identifier of the recording session this frame belongs to; fusion
        never crosses sequence boundaries.
    frame_index:
        Index of the frame within its sequence.
    """

    cloud: PointCloudFrame
    joints: np.ndarray
    subject_id: int
    movement_name: str
    sequence_id: int = 0
    frame_index: int = 0

    def __post_init__(self) -> None:
        joints = np.asarray(self.joints, dtype=float)
        if joints.shape == (LABEL_DIM,):
            joints = joints.reshape(NUM_JOINTS, 3)
        if joints.shape != (NUM_JOINTS, 3):
            raise ValueError(
                f"joints must have shape ({NUM_JOINTS}, 3) or ({LABEL_DIM},), got {joints.shape}"
            )
        self.joints = joints

    @property
    def label_vector(self) -> np.ndarray:
        """Flattened 57-dimensional label (x1, y1, z1, x2, ...)."""
        return self.joints.reshape(-1)

    def with_cloud(self, cloud: PointCloudFrame) -> "LabelledFrame":
        """Return a copy of this sample with a different point cloud.

        Used by multi-frame fusion, which replaces the single-frame cloud with
        the fused cloud while keeping the centre frame's label.
        """
        return LabelledFrame(
            cloud=cloud,
            joints=self.joints.copy(),
            subject_id=self.subject_id,
            movement_name=self.movement_name,
            sequence_id=self.sequence_id,
            frame_index=self.frame_index,
        )


@dataclass
class PoseDataset:
    """An ordered collection of labelled frames."""

    samples: List[LabelledFrame] = field(default_factory=list)
    name: str = "dataset"

    def __len__(self) -> int:
        return len(self.samples)

    def __iter__(self) -> Iterator[LabelledFrame]:
        return iter(self.samples)

    def __getitem__(self, index) -> "LabelledFrame | PoseDataset":
        if isinstance(index, slice):
            return PoseDataset(self.samples[index], name=self.name)
        return self.samples[index]

    def append(self, sample: LabelledFrame) -> None:
        self.samples.append(sample)

    def extend(self, samples: Sequence[LabelledFrame]) -> None:
        self.samples.extend(samples)

    # ------------------------------------------------------------------
    # Selection helpers
    # ------------------------------------------------------------------
    def filter(self, predicate: Callable[[LabelledFrame], bool], name: Optional[str] = None) -> "PoseDataset":
        """Return a new dataset containing only samples matching ``predicate``."""
        return PoseDataset(
            [sample for sample in self.samples if predicate(sample)],
            name=name if name is not None else self.name,
        )

    def subjects(self) -> List[int]:
        """Sorted list of subject ids present in the dataset."""
        return sorted({sample.subject_id for sample in self.samples})

    def movements(self) -> List[str]:
        """Sorted list of movement names present in the dataset."""
        return sorted({sample.movement_name for sample in self.samples})

    def sequence_ids(self) -> List[int]:
        """Sorted list of sequence identifiers present in the dataset."""
        return sorted({sample.sequence_id for sample in self.samples})

    def for_subject(self, subject_id: int) -> "PoseDataset":
        return self.filter(lambda s: s.subject_id == subject_id, name=f"{self.name}[subj{subject_id}]")

    def for_movement(self, movement_name: str) -> "PoseDataset":
        return self.filter(
            lambda s: s.movement_name == movement_name, name=f"{self.name}[{movement_name}]"
        )

    def for_sequence(self, sequence_id: int) -> "PoseDataset":
        return self.filter(lambda s: s.sequence_id == sequence_id, name=f"{self.name}[seq{sequence_id}]")

    def exclude(
        self, subject_id: Optional[int] = None, movement_name: Optional[str] = None
    ) -> "PoseDataset":
        """Remove every sample from one subject and/or one movement."""

        def keep(sample: LabelledFrame) -> bool:
            if subject_id is not None and sample.subject_id == subject_id:
                return False
            if movement_name is not None and sample.movement_name == movement_name:
                return False
            return True

        return self.filter(keep, name=f"{self.name}[excluded]")

    # ------------------------------------------------------------------
    # Array views
    # ------------------------------------------------------------------
    def label_matrix(self) -> np.ndarray:
        """Stack all labels into an ``(N, 57)`` array."""
        if not self.samples:
            return np.zeros((0, LABEL_DIM))
        return np.stack([sample.label_vector for sample in self.samples])

    def point_counts(self) -> np.ndarray:
        """Number of radar points in each sample's cloud."""
        return np.array([sample.cloud.num_points for sample in self.samples], dtype=int)

    def concatenated(self, other: "PoseDataset", name: Optional[str] = None) -> "PoseDataset":
        """Return a new dataset with this dataset's samples followed by ``other``'s."""
        return PoseDataset(
            list(self.samples) + list(other.samples),
            name=name if name is not None else f"{self.name}+{other.name}",
        )

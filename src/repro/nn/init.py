"""Parameter initialization schemes for ``repro.nn`` layers.

All initializers accept an explicit ``numpy.random.Generator`` so that model
construction is fully reproducible — a requirement for the paper's
baseline-vs-FUSE comparisons where both models must start from comparable
initial conditions.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "calculate_fan",
    "xavier_uniform",
    "kaiming_uniform",
    "kaiming_normal",
    "zeros",
    "uniform",
]


def calculate_fan(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Return ``(fan_in, fan_out)`` for a weight tensor shape.

    Linear weights are ``(out_features, in_features)``; convolution weights
    are ``(out_channels, in_channels, kh, kw)``.
    """
    if len(shape) < 2:
        raise ValueError(f"fan computation requires at least 2 dimensions, got {shape}")
    receptive_field = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    fan_in = shape[1] * receptive_field
    fan_out = shape[0] * receptive_field
    return fan_in, fan_out


def xavier_uniform(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialization."""
    fan_in, fan_out = calculate_fan(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def kaiming_uniform(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming uniform initialization suited to ReLU networks."""
    fan_in, _ = calculate_fan(shape)
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape)


def kaiming_normal(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming normal initialization suited to ReLU networks."""
    fan_in, _ = calculate_fan(shape)
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape)


def zeros(shape: Tuple[int, ...], rng: np.random.Generator | None = None) -> np.ndarray:
    """All-zero initialization (used for biases)."""
    return np.zeros(shape)


def uniform(
    shape: Tuple[int, ...], rng: np.random.Generator, low: float = -0.1, high: float = 0.1
) -> np.ndarray:
    """Uniform initialization in ``[low, high)``."""
    return rng.uniform(low, high, size=shape)

"""Compiled kernel backend: numba-jitted elementwise kernels.

Optional — numba ships behind the ``compiled`` extras marker
(``pip install fuse-repro[compiled]``).  The backend stays *registered* when
numba is absent so the registry can report a useful error and test suites can
enumerate-and-skip it, but ``is_available()`` answers False and instantiation
raises :class:`~repro.nn.backend.base.BackendUnavailableError`.

The matrix products delegate to the threaded BLAS path of
:class:`~repro.nn.backend.fast.FastBackend` (numba cannot beat a tuned GEMM);
what gets compiled are the memory-bound elementwise activations, where a
fused single-pass loop beats numpy's temporary-allocating ufunc chains.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .base import BackendUnavailableError
from .fast import FastBackend

__all__ = ["CompiledBackend"]

try:  # pragma: no cover - exercised only when numba is installed
    import numba

    _HAVE_NUMBA = True
except ImportError:
    numba = None
    _HAVE_NUMBA = False


if _HAVE_NUMBA:  # pragma: no cover - exercised only when numba is installed

    @numba.njit(cache=True)
    def _relu_flat(x, out):
        for i in range(x.size):
            value = x[i]
            out[i] = value if value > 0.0 else 0.0

    @numba.njit(cache=True)
    def _tanh_flat(x, out):
        for i in range(x.size):
            out[i] = np.tanh(x[i])

    @numba.njit(cache=True)
    def _sigmoid_flat(x, out):
        for i in range(x.size):
            out[i] = 1.0 / (1.0 + np.exp(-x[i]))


class CompiledBackend(FastBackend):
    """Numba-accelerated backend; requires the ``compiled`` extras."""

    name = "compiled"

    @classmethod
    def is_available(cls) -> bool:
        return _HAVE_NUMBA

    def __init__(self, threads: Optional[int] = None):
        if not _HAVE_NUMBA:
            raise BackendUnavailableError(
                "the 'compiled' kernel backend needs numba, which is not "
                "installed; install the extras with `pip install "
                "fuse-repro[compiled]` or select the 'fast' or 'reference' "
                "backend instead"
            )
        super().__init__(threads=threads)

    # pragma note: the jitted bodies only run when numba is importable, so
    # coverage on numba-less environments exercises just the guard above.
    def _jit_elementwise(self, x: np.ndarray, kernel) -> np.ndarray:  # pragma: no cover
        flat = np.ascontiguousarray(x).reshape(-1)
        out = np.empty_like(flat)
        kernel(flat, out)
        return out.reshape(x.shape)

    def relu(self, x: np.ndarray) -> np.ndarray:  # pragma: no cover
        return self._jit_elementwise(x, _relu_flat)

    def tanh(self, x: np.ndarray) -> np.ndarray:  # pragma: no cover
        return self._jit_elementwise(x, _tanh_flat)

    def sigmoid(self, x: np.ndarray) -> np.ndarray:  # pragma: no cover
        return self._jit_elementwise(x, _sigmoid_flat)

"""Fast kernel backend: threaded, BLAS-shaped, workspace-reusing numpy.

Same arithmetic as :class:`~repro.nn.backend.reference.ReferenceBackend`
reorganised for throughput:

* Large matrix products are split across a thread pool by output rows (or by
  the leading task axis for batched 3-D products).  numpy releases the GIL
  inside BLAS, so row-chunks multiply concurrently.  The split depends only
  on operand shapes and the configured thread count, so results are
  deterministic for a given configuration — and each chunk computes the same
  fixed-shape GEMM regardless of which thread runs it, preserving the
  batch-invariance contract of the serving kernel.
* The broadcast base contraction of the low-rank ops — ``(T, B, I)`` against
  one shared ``(I, O)`` matrix — is reordered into a single
  ``(T*B, I) @ (I, O)`` GEMM instead of ``T`` broadcast slices.
* The per-task convolution picks its output layout per op: when the filter
  bank is small relative to the patch, the product runs transposed
  (``W @ cols.T``, a *blocked* / column-major result) and is explicitly
  reordered to planar at the backend boundary, oneDNN-Reorder style.
* ``workspace`` hands out scratch buffers keyed by (thread, tag, shape,
  dtype) so the serving kernel's steady-state hot loop stops allocating.

Thread count comes from the constructor, the ``REPRO_KERNEL_THREADS``
environment variable, or ``os.cpu_count()``.  The pool is created lazily and
re-created after ``fork`` so worker processes never inherit dead threads.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..cols import conv_output_shape, im2col
from .base import to_layout
from .reference import ReferenceBackend

__all__ = ["FastBackend"]

# Parallelise a product only when it is worth waking the pool: below these
# sizes the submit/join overhead dominates any BLAS win.
_MIN_PARALLEL_FLOPS = 1 << 18
_MIN_PARALLEL_ELEMS = 1 << 16

# Run the conv product transposed (blocked output) when the filter bank is
# this much smaller than the patch dimension: tall-skinny RHS operands favour
# the (O, patch) @ (patch, rows) orientation.
_BLOCKED_CONV_RATIO = 4


def _env_threads() -> int:
    raw = os.environ.get("REPRO_KERNEL_THREADS", "").strip()
    if raw:
        try:
            return max(1, int(raw))
        except ValueError as exc:
            raise ValueError(
                f"REPRO_KERNEL_THREADS must be an integer, got {raw!r}"
            ) from exc
    return os.cpu_count() or 1


class FastBackend(ReferenceBackend):
    """Threaded numpy backend tuned for multi-core hosts."""

    name = "fast"

    def __init__(self, threads: Optional[int] = None):
        self.threads = max(1, int(threads)) if threads is not None else _env_threads()
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_pid: Optional[int] = None
        self._pool_lock = threading.Lock()
        # Re-entrancy guard: work running *on* the pool must not fan out onto
        # the pool again (a saturated pool waiting on itself deadlocks).
        self._in_parallel = threading.local()
        self._workspaces: dict = {}

    @property
    def parallelism(self) -> int:
        return self.threads

    # ------------------------------------------------------------------
    # Pool management
    # ------------------------------------------------------------------
    def _executor(self) -> ThreadPoolExecutor:
        pid = os.getpid()
        if self._pool is None or self._pool_pid != pid:
            with self._pool_lock:
                if self._pool is None or self._pool_pid != pid:
                    self._pool = ThreadPoolExecutor(
                        max_workers=self.threads, thread_name_prefix="repro-fast"
                    )
                    self._pool_pid = pid
        return self._pool

    def _can_parallelise(self) -> bool:
        return self.threads > 1 and not getattr(self._in_parallel, "active", False)

    def _chunks(self, n: int) -> List[Tuple[int, int]]:
        """Split ``range(n)`` into at most ``threads`` contiguous spans."""
        parts = min(self.threads, n)
        base, extra = divmod(n, parts)
        bounds = []
        start = 0
        for i in range(parts):
            stop = start + base + (1 if i < extra else 0)
            bounds.append((start, stop))
            start = stop
        return bounds

    def _run_chunked(self, fn: Callable[[int, int], None], n: int) -> None:
        chunks = self._chunks(n)
        if len(chunks) == 1:
            fn(*chunks[0])
            return
        pool = self._executor()

        def guarded(start: int, stop: int) -> None:
            self._in_parallel.active = True
            try:
                fn(start, stop)
            finally:
                self._in_parallel.active = False

        futures = [pool.submit(guarded, start, stop) for start, stop in chunks]
        for future in futures:
            future.result()

    # ------------------------------------------------------------------
    # Workspaces
    # ------------------------------------------------------------------
    def workspace(
        self, tag: Any, shape: Tuple[int, ...], dtype: np.dtype
    ) -> Optional[np.ndarray]:
        key = (threading.get_ident(), tag, shape, np.dtype(dtype))
        buffer = self._workspaces.get(key)
        if buffer is None:
            buffer = np.empty(shape, dtype=dtype)
            self._workspaces[key] = buffer
        return buffer

    # ------------------------------------------------------------------
    # Dense products
    # ------------------------------------------------------------------
    def gemm(
        self, a: np.ndarray, b: np.ndarray, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        if a.ndim != 2 or b.ndim != 2:
            raise ValueError(f"gemm expects 2-D operands, got {a.shape} and {b.shape}")
        m, k = a.shape
        n = b.shape[1]
        flops = 2 * m * n * k
        if out is None:
            out = np.empty((m, n), dtype=np.result_type(a, b))
        if m < 2 or flops < _MIN_PARALLEL_FLOPS or not self._can_parallelise():
            np.matmul(a, b, out=out)
            return out
        self._run_chunked(lambda s, e: np.matmul(a[s:e], b, out=out[s:e]), m)
        return out

    def matmul(
        self, a: np.ndarray, b: np.ndarray, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        if a.ndim == 2 and b.ndim == 2:
            return self.gemm(a, b, out=out)
        if a.ndim == 3 and (b.ndim == 2 or (b.ndim == 3 and b.shape[0] == a.shape[0])):
            tasks = a.shape[0]
            n = b.shape[-1]
            flops = 2 * a.shape[0] * a.shape[1] * a.shape[2] * n
            if out is None:
                out = np.empty(
                    (tasks, a.shape[1], n), dtype=np.result_type(a, b)
                )
            if tasks < 2 or flops < _MIN_PARALLEL_FLOPS or not self._can_parallelise():
                np.matmul(a, b, out=out)
                return out
            if b.ndim == 2:
                self._run_chunked(lambda s, e: np.matmul(a[s:e], b, out=out[s:e]), tasks)
            else:
                self._run_chunked(
                    lambda s, e: np.matmul(a[s:e], b[s:e], out=out[s:e]), tasks
                )
            return out
        # Rank combinations outside the hot paths fall back to numpy.
        if out is None:
            return np.matmul(a, b)
        return np.matmul(a, b, out=out)

    # ------------------------------------------------------------------
    # Elementwise activations (chunk-parallel over a flattened view)
    # ------------------------------------------------------------------
    def _elementwise(
        self, x: np.ndarray, apply: Callable[[np.ndarray, np.ndarray], None]
    ) -> np.ndarray:
        if (
            x.size < _MIN_PARALLEL_ELEMS
            or not x.flags["C_CONTIGUOUS"]
            or not self._can_parallelise()
        ):
            out = np.empty_like(x)
            apply(x, out)
            return out
        out = np.empty_like(x)
        flat_in = x.reshape(-1)
        flat_out = out.reshape(-1)
        self._run_chunked(lambda s, e: apply(flat_in[s:e], flat_out[s:e]), flat_in.size)
        return out

    def relu(self, x: np.ndarray) -> np.ndarray:
        return self._elementwise(x, lambda src, dst: np.maximum(src, 0.0, out=dst))

    def tanh(self, x: np.ndarray) -> np.ndarray:
        return self._elementwise(x, lambda src, dst: np.tanh(src, out=dst))

    def sigmoid(self, x: np.ndarray) -> np.ndarray:
        def apply(src: np.ndarray, dst: np.ndarray) -> None:
            np.negative(src, out=dst)
            np.exp(dst, out=dst)
            dst += 1.0
            np.reciprocal(dst, out=dst)

        return self._elementwise(x, apply)

    # ------------------------------------------------------------------
    # Per-task linear: thread the task axis
    # ------------------------------------------------------------------
    def linear_batched_forward(
        self, x: np.ndarray, weight: np.ndarray, bias: Optional[np.ndarray]
    ) -> Tuple[np.ndarray, Any]:
        out = self.matmul(x, weight.transpose(0, 2, 1))
        if bias is not None:
            out += bias[:, None, :]
        return out, (x, weight)

    def linear_batched_backward(
        self, ctx: Any, grad: np.ndarray, needs: Tuple[bool, bool, bool]
    ) -> Tuple[Optional[np.ndarray], Optional[np.ndarray], Optional[np.ndarray]]:
        x, weight = ctx
        needs_x, needs_weight, needs_bias = needs
        grad_x = self.matmul(grad, weight) if needs_x else None
        grad_weight = (
            self.matmul(np.ascontiguousarray(grad.transpose(0, 2, 1)), x)
            if needs_weight
            else None
        )
        grad_bias = grad.sum(axis=1) if needs_bias else None
        return grad_x, grad_weight, grad_bias

    # ------------------------------------------------------------------
    # Low-rank linear: fold the broadcast base into one large GEMM
    # ------------------------------------------------------------------
    def linear_lowrank_forward(
        self,
        x: np.ndarray,
        weight: np.ndarray,
        a: np.ndarray,
        b: np.ndarray,
        bias: Optional[np.ndarray],
    ) -> Tuple[np.ndarray, Any]:
        tasks, batch, in_features = x.shape
        out_features = weight.shape[0]
        x2 = np.ascontiguousarray(x).reshape(tasks * batch, in_features)
        # One (T*B, I) @ (I, O) GEMM instead of T broadcast slices.
        base = self.gemm(x2, weight.T)
        out = base.reshape(tasks, batch, out_features)
        hidden = self.matmul(x, a.transpose(0, 2, 1))  # (T, B, r)
        out += self.matmul(hidden, b.transpose(0, 2, 1))
        if bias is not None:
            out += bias
        return out, (x, weight, a, b, hidden)

    def linear_lowrank_backward(
        self, ctx: Any, grad: np.ndarray, needs: Tuple[bool, bool, bool, bool, bool]
    ) -> Tuple[
        Optional[np.ndarray],
        Optional[np.ndarray],
        Optional[np.ndarray],
        Optional[np.ndarray],
        Optional[np.ndarray],
    ]:
        x, weight, a, b, hidden = ctx
        tasks, batch, in_features = x.shape
        out_features = weight.shape[0]
        needs_x, needs_weight, needs_a, needs_b, needs_bias = needs
        grad_b = (
            self.matmul(np.ascontiguousarray(grad.transpose(0, 2, 1)), hidden)
            if needs_b
            else None
        )
        grad_hidden = None
        if needs_a or needs_x:
            grad_hidden = self.matmul(grad, b)  # (T, B, r)
        grad_a = (
            self.matmul(np.ascontiguousarray(grad_hidden.transpose(0, 2, 1)), x)
            if needs_a
            else None
        )
        grad_x = None
        if needs_x:
            grad2 = np.ascontiguousarray(grad).reshape(tasks * batch, out_features)
            grad_x = self.gemm(grad2, weight).reshape(tasks, batch, in_features)
            grad_x += self.matmul(grad_hidden, a)
        grad_weight = None
        if needs_weight:
            # sum_t grad[t].T @ x[t] == (stacked grad).T @ (stacked x).
            grad2 = np.ascontiguousarray(grad).reshape(tasks * batch, out_features)
            x2 = np.ascontiguousarray(x).reshape(tasks * batch, in_features)
            grad_weight = self.gemm(grad2.T.copy(), x2)
        grad_bias = grad.sum(axis=(0, 1)) if needs_bias else None
        return grad_x, grad_weight, grad_a, grad_b, grad_bias

    # ------------------------------------------------------------------
    # Per-task convolution: layout-aware product, threaded over tasks
    # ------------------------------------------------------------------
    def conv2d_batched_forward(
        self,
        x: np.ndarray,
        weight: np.ndarray,
        bias: Optional[np.ndarray],
        stride,
        padding,
    ) -> Tuple[np.ndarray, Any]:
        tasks, batch, in_channels, height, width = x.shape
        _, out_channels, _, kh, kw = weight.shape
        out_h, out_w = conv_output_shape(height, width, (kh, kw), stride, padding)
        patch = in_channels * kh * kw
        rows = batch * out_h * out_w

        cols = im2col(
            x.reshape(tasks * batch, in_channels, height, width), (kh, kw), stride, padding
        )
        cols_flat = cols.reshape(tasks, rows, patch)
        weight_flat = weight.reshape(tasks, out_channels, patch)

        if out_channels * _BLOCKED_CONV_RATIO <= patch:
            # Tall-skinny filter bank: run the product transposed.  Each task
            # yields a blocked (column-major) (rows, O) slice which is
            # reordered to planar at the boundary.
            out = np.empty((tasks, rows, out_channels), dtype=cols_flat.dtype)

            def run(start: int, stop: int) -> None:
                for t in range(start, stop):
                    blocked = np.matmul(weight_flat[t], cols_flat[t].T).T  # (rows, O) F-order
                    out[t] = to_layout(blocked, "planar")

            if tasks >= 2 and self._can_parallelise():
                self._run_chunked(run, tasks)
            else:
                run(0, tasks)
        else:
            out = self.matmul(cols_flat, weight_flat.transpose(0, 2, 1))
        out = out.reshape(tasks, batch, out_h, out_w, out_channels).transpose(0, 1, 4, 2, 3)
        if bias is not None:
            out = out + bias.reshape(tasks, 1, out_channels, 1, 1)
        ctx = (cols_flat, weight_flat, x.shape, weight.shape, (out_h, out_w), stride, padding)
        return out, ctx

    def conv2d_batched_backward(
        self, ctx: Any, grad: np.ndarray, needs: Tuple[bool, bool, bool]
    ) -> Tuple[Optional[np.ndarray], Optional[np.ndarray], Optional[np.ndarray]]:
        cols_flat, weight_flat, x_shape, weight_shape, (out_h, out_w), stride, padding = ctx
        tasks, batch, in_channels, height, width = x_shape
        _, out_channels, _, kh, kw = weight_shape
        needs_x, needs_weight, needs_bias = needs
        grad_flat = np.ascontiguousarray(
            grad.transpose(0, 1, 3, 4, 2)
        ).reshape(tasks, batch * out_h * out_w, out_channels)
        grad_weight = None
        if needs_weight:
            grad_weight = self.matmul(
                np.ascontiguousarray(grad_flat.transpose(0, 2, 1)), cols_flat
            ).reshape(weight_shape)
        grad_bias = grad.sum(axis=(1, 3, 4)) if needs_bias else None
        grad_x = None
        if needs_x:
            reference_ctx = (
                cols_flat,
                weight_flat,
                x_shape,
                weight_shape,
                (out_h, out_w),
                stride,
                padding,
            )
            grad_x, _, _ = ReferenceBackend.conv2d_batched_backward(
                self, reference_ctx, grad, (True, False, False)
            )
        return grad_x, grad_weight, grad_bias

    def conv2d_lowrank_forward(
        self,
        x: np.ndarray,
        weight: np.ndarray,
        a: np.ndarray,
        b: np.ndarray,
        bias: Optional[np.ndarray],
        stride,
        padding,
    ) -> Tuple[np.ndarray, Any]:
        tasks, batch, in_channels, height, width = x.shape
        out_channels, _, kh, kw = weight.shape
        patch = in_channels * kh * kw
        out_h, out_w = conv_output_shape(height, width, (kh, kw), stride, padding)
        rows = batch * out_h * out_w

        cols = im2col(
            x.reshape(tasks * batch, in_channels, height, width), (kh, kw), stride, padding
        )
        cols_flat = cols.reshape(tasks, rows, patch)
        weight_flat = weight.reshape(out_channels, patch)

        # Fold the broadcast base into one (T*rows, patch) @ (patch, O) GEMM.
        cols2 = cols_flat.reshape(tasks * rows, patch)
        base = self.gemm(cols2, weight_flat.T)
        out = base.reshape(tasks, rows, out_channels)
        hidden = self.matmul(cols_flat, a.transpose(0, 2, 1))  # (T, rows, r)
        out += self.matmul(hidden, b.transpose(0, 2, 1))
        out = out.reshape(tasks, batch, out_h, out_w, out_channels).transpose(0, 1, 4, 2, 3)
        if bias is not None:
            out = out + bias.reshape(1, 1, out_channels, 1, 1)
        ctx = (
            cols_flat,
            weight_flat,
            a,
            b,
            hidden,
            x.shape,
            weight.shape,
            (out_h, out_w),
            stride,
            padding,
        )
        return out, ctx

    def conv2d_lowrank_backward(
        self, ctx: Any, grad: np.ndarray, needs: Tuple[bool, bool, bool, bool, bool]
    ) -> Tuple[
        Optional[np.ndarray],
        Optional[np.ndarray],
        Optional[np.ndarray],
        Optional[np.ndarray],
        Optional[np.ndarray],
    ]:
        (
            cols_flat,
            weight_flat,
            a,
            b,
            hidden,
            x_shape,
            weight_shape,
            (out_h, out_w),
            stride,
            padding,
        ) = ctx
        tasks, batch, in_channels, height, width = x_shape
        out_channels, _, kh, kw = weight_shape
        patch = in_channels * kh * kw
        rows = batch * out_h * out_w
        needs_x, needs_weight, needs_a, needs_b, needs_bias = needs

        grad_flat = np.ascontiguousarray(
            grad.transpose(0, 1, 3, 4, 2)
        ).reshape(tasks, rows, out_channels)
        grad_b = (
            self.matmul(np.ascontiguousarray(grad_flat.transpose(0, 2, 1)), hidden)
            if needs_b
            else None
        )
        grad_hidden = None
        if needs_a or needs_x:
            grad_hidden = self.matmul(grad_flat, b)  # (T, rows, r)
        grad_a = (
            self.matmul(
                np.ascontiguousarray(grad_hidden.transpose(0, 2, 1)), cols_flat
            )
            if needs_a
            else None
        )
        grad_weight = None
        if needs_weight:
            grad2 = grad_flat.reshape(tasks * rows, out_channels)
            cols2 = cols_flat.reshape(tasks * rows, patch)
            grad_weight = self.gemm(grad2.T.copy(), cols2).reshape(weight_shape)
        grad_bias = grad.sum(axis=(0, 1, 3, 4)) if needs_bias else None
        grad_x = None
        if needs_x:
            reference_ctx = (
                cols_flat,
                weight_flat,
                a,
                b,
                hidden,
                x_shape,
                weight_shape,
                (out_h, out_w),
                stride,
                padding,
            )
            grad_x, _, _, _, _ = ReferenceBackend.conv2d_lowrank_backward(
                self, reference_ctx, grad, (True, False, False, False, False)
            )
        return grad_x, grad_weight, grad_a, grad_b, grad_bias

    # ------------------------------------------------------------------
    # Serving-kernel hook
    # ------------------------------------------------------------------
    def map_blocks(
        self, fn: Callable[[Any], Any], blocks: Sequence[Any]
    ) -> list:
        blocks = list(blocks)
        if len(blocks) <= 1 or not self._can_parallelise():
            return [fn(block) for block in blocks]
        pool = self._executor()

        def guarded(block: Any) -> Any:
            self._in_parallel.active = True
            try:
                return fn(block)
            finally:
                self._in_parallel.active = False

        return list(pool.map(guarded, blocks))

    # The thread pool and locks are process-local; backends cross the worker
    # pickle boundary by *name* (see ServeConfig / ExecutionPlan), but guard
    # direct pickling too so a stray reference cannot poison a fork+spawn mix.
    def __getstate__(self):
        state = self.__dict__.copy()
        state["_pool"] = None
        state["_pool_pid"] = None
        state["_pool_lock"] = None
        state["_in_parallel"] = None
        state["_workspaces"] = {}
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._pool_lock = threading.Lock()
        self._in_parallel = threading.local()

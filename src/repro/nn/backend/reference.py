"""Reference kernel backend: the original serial numpy implementation.

Every method body here is the exact arithmetic the ops in
:mod:`repro.nn.functional` / :mod:`repro.nn.ops` executed before the backend
registry existed — same expressions, same call order, same in-place vs
fresh-allocation decisions — so selecting ``reference`` (the default) is
bit-for-bit identical to the pre-registry code.  Treat this file as frozen
ground truth: the op-db equivalence suite compares every other backend
against it.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

import numpy as np

from ..cols import col2im, conv_output_shape, im2col
from .base import KernelBackend

__all__ = ["ReferenceBackend"]


class ReferenceBackend(KernelBackend):
    """Serial numpy backend; the registry default and equivalence oracle."""

    name = "reference"

    # ------------------------------------------------------------------
    # Dense products
    # ------------------------------------------------------------------
    def matmul(
        self, a: np.ndarray, b: np.ndarray, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        if out is None:
            return np.matmul(a, b)
        return np.matmul(a, b, out=out)

    def gemm(
        self, a: np.ndarray, b: np.ndarray, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        if out is None:
            return np.matmul(a, b)
        return np.matmul(a, b, out=out)

    # ------------------------------------------------------------------
    # Elementwise activations (the serving-kernel step expressions)
    # ------------------------------------------------------------------
    def relu(self, x: np.ndarray) -> np.ndarray:
        return np.maximum(x, 0.0)

    def tanh(self, x: np.ndarray) -> np.ndarray:
        return np.tanh(x)

    def sigmoid(self, x: np.ndarray) -> np.ndarray:
        return 1.0 / (1.0 + np.exp(-x))

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def reduce_sum(self, x: np.ndarray, axis=None) -> np.ndarray:
        return x.sum(axis=axis)

    def reduce_mean(self, x: np.ndarray, axis=None) -> np.ndarray:
        return x.mean(axis=axis)

    # ------------------------------------------------------------------
    # Per-task linear
    # ------------------------------------------------------------------
    def linear_batched_forward(
        self, x: np.ndarray, weight: np.ndarray, bias: Optional[np.ndarray]
    ) -> Tuple[np.ndarray, Any]:
        out = np.matmul(x, weight.transpose(0, 2, 1))
        if bias is not None:
            out += bias[:, None, :]
        return out, (x, weight)

    def linear_batched_backward(
        self, ctx: Any, grad: np.ndarray, needs: Tuple[bool, bool, bool]
    ) -> Tuple[Optional[np.ndarray], Optional[np.ndarray], Optional[np.ndarray]]:
        x, weight = ctx
        needs_x, needs_weight, needs_bias = needs
        grad_x = np.matmul(grad, weight) if needs_x else None
        grad_weight = np.matmul(grad.transpose(0, 2, 1), x) if needs_weight else None
        grad_bias = grad.sum(axis=1) if needs_bias else None
        return grad_x, grad_weight, grad_bias

    # ------------------------------------------------------------------
    # Shared-base + low-rank linear
    # ------------------------------------------------------------------
    def linear_lowrank_forward(
        self,
        x: np.ndarray,
        weight: np.ndarray,
        a: np.ndarray,
        b: np.ndarray,
        bias: Optional[np.ndarray],
    ) -> Tuple[np.ndarray, Any]:
        # Base path: one shared matrix for every task (broadcast over the
        # task axis, each slice its own fixed-shape GEMM).  Low-rank path:
        # two rank-r products per task.
        hidden = np.matmul(x, a.transpose(0, 2, 1))  # (T, B, r)
        out = np.matmul(x, weight.T)
        out += np.matmul(hidden, b.transpose(0, 2, 1))
        if bias is not None:
            out += bias
        return out, (x, weight, a, b, hidden)

    def linear_lowrank_backward(
        self, ctx: Any, grad: np.ndarray, needs: Tuple[bool, bool, bool, bool, bool]
    ) -> Tuple[
        Optional[np.ndarray],
        Optional[np.ndarray],
        Optional[np.ndarray],
        Optional[np.ndarray],
        Optional[np.ndarray],
    ]:
        x, weight, a, b, hidden = ctx
        needs_x, needs_weight, needs_a, needs_b, needs_bias = needs
        grad_b = np.matmul(grad.transpose(0, 2, 1), hidden) if needs_b else None
        grad_hidden = None
        if needs_a or needs_x:
            grad_hidden = np.matmul(grad, b)  # (T, B, r)
        grad_a = (
            np.matmul(grad_hidden.transpose(0, 2, 1), x) if needs_a else None
        )
        grad_x = None
        if needs_x:
            grad_x = np.matmul(grad, weight)
            grad_x += np.matmul(grad_hidden, a)
        grad_weight = (
            np.einsum("tbo,tbi->oi", grad, x, optimize=True) if needs_weight else None
        )
        grad_bias = grad.sum(axis=(0, 1)) if needs_bias else None
        return grad_x, grad_weight, grad_a, grad_b, grad_bias

    # ------------------------------------------------------------------
    # Per-task convolution
    # ------------------------------------------------------------------
    def conv2d_batched_forward(
        self,
        x: np.ndarray,
        weight: np.ndarray,
        bias: Optional[np.ndarray],
        stride,
        padding,
    ) -> Tuple[np.ndarray, Any]:
        tasks, batch, in_channels, height, width = x.shape
        _, out_channels, _, kh, kw = weight.shape
        out_h, out_w = conv_output_shape(height, width, (kh, kw), stride, padding)
        patch = in_channels * kh * kw

        cols = im2col(
            x.reshape(tasks * batch, in_channels, height, width), (kh, kw), stride, padding
        )  # (T*B, OH, OW, patch)
        cols_flat = cols.reshape(tasks, batch * out_h * out_w, patch)
        weight_flat = weight.reshape(tasks, out_channels, patch)

        out = np.matmul(cols_flat, weight_flat.transpose(0, 2, 1))  # (T, B*OH*OW, O)
        out = out.reshape(tasks, batch, out_h, out_w, out_channels).transpose(0, 1, 4, 2, 3)
        if bias is not None:
            out = out + bias.reshape(tasks, 1, out_channels, 1, 1)
        ctx = (cols_flat, weight_flat, x.shape, weight.shape, (out_h, out_w), stride, padding)
        return out, ctx

    def conv2d_batched_backward(
        self, ctx: Any, grad: np.ndarray, needs: Tuple[bool, bool, bool]
    ) -> Tuple[Optional[np.ndarray], Optional[np.ndarray], Optional[np.ndarray]]:
        cols_flat, weight_flat, x_shape, weight_shape, (out_h, out_w), stride, padding = ctx
        tasks, batch, in_channels, height, width = x_shape
        _, out_channels, _, kh, kw = weight_shape
        patch = in_channels * kh * kw
        needs_x, needs_weight, needs_bias = needs

        # grad: (T, B, O, OH, OW)
        grad_flat = grad.transpose(0, 1, 3, 4, 2).reshape(
            tasks, batch * out_h * out_w, out_channels
        )
        grad_weight = None
        if needs_weight:
            grad_weight = np.matmul(grad_flat.transpose(0, 2, 1), cols_flat).reshape(
                weight_shape
            )
        grad_bias = grad.sum(axis=(1, 3, 4)) if needs_bias else None
        grad_x = None
        if needs_x:
            grad_cols = np.matmul(grad_flat, weight_flat)  # (T, B*OH*OW, patch)
            grad_cols = grad_cols.reshape(tasks * batch, out_h, out_w, patch)
            grad_x = col2im(
                grad_cols,
                (tasks * batch, in_channels, height, width),
                (kh, kw),
                stride,
                padding,
            ).reshape(x_shape)
        return grad_x, grad_weight, grad_bias

    # ------------------------------------------------------------------
    # Shared-base + low-rank convolution
    # ------------------------------------------------------------------
    def conv2d_lowrank_forward(
        self,
        x: np.ndarray,
        weight: np.ndarray,
        a: np.ndarray,
        b: np.ndarray,
        bias: Optional[np.ndarray],
        stride,
        padding,
    ) -> Tuple[np.ndarray, Any]:
        tasks, batch, in_channels, height, width = x.shape
        out_channels, _, kh, kw = weight.shape
        patch = in_channels * kh * kw
        out_h, out_w = conv_output_shape(height, width, (kh, kw), stride, padding)
        rows = batch * out_h * out_w

        cols = im2col(
            x.reshape(tasks * batch, in_channels, height, width), (kh, kw), stride, padding
        )  # (T*B, OH, OW, patch)
        cols_flat = cols.reshape(tasks, rows, patch)
        weight_flat = weight.reshape(out_channels, patch)

        hidden = np.matmul(cols_flat, a.transpose(0, 2, 1))  # (T, rows, r)
        out = np.matmul(cols_flat, weight_flat.T)  # broadcast base: (T, rows, O)
        out += np.matmul(hidden, b.transpose(0, 2, 1))
        out = out.reshape(tasks, batch, out_h, out_w, out_channels).transpose(0, 1, 4, 2, 3)
        if bias is not None:
            out = out + bias.reshape(1, 1, out_channels, 1, 1)
        ctx = (
            cols_flat,
            weight_flat,
            a,
            b,
            hidden,
            x.shape,
            weight.shape,
            (out_h, out_w),
            stride,
            padding,
        )
        return out, ctx

    def conv2d_lowrank_backward(
        self, ctx: Any, grad: np.ndarray, needs: Tuple[bool, bool, bool, bool, bool]
    ) -> Tuple[
        Optional[np.ndarray],
        Optional[np.ndarray],
        Optional[np.ndarray],
        Optional[np.ndarray],
        Optional[np.ndarray],
    ]:
        (
            cols_flat,
            weight_flat,
            a,
            b,
            hidden,
            x_shape,
            weight_shape,
            (out_h, out_w),
            stride,
            padding,
        ) = ctx
        tasks, batch, in_channels, height, width = x_shape
        out_channels, _, kh, kw = weight_shape
        patch = in_channels * kh * kw
        rows = batch * out_h * out_w
        needs_x, needs_weight, needs_a, needs_b, needs_bias = needs

        # grad: (T, B, O, OH, OW)
        grad_flat = grad.transpose(0, 1, 3, 4, 2).reshape(tasks, rows, out_channels)
        grad_b = np.matmul(grad_flat.transpose(0, 2, 1), hidden) if needs_b else None
        grad_hidden = None
        if needs_a or needs_x:
            grad_hidden = np.matmul(grad_flat, b)  # (T, rows, r)
        grad_a = (
            np.matmul(grad_hidden.transpose(0, 2, 1), cols_flat) if needs_a else None
        )
        grad_weight = None
        if needs_weight:
            grad_weight = np.einsum(
                "tro,trp->op", grad_flat, cols_flat, optimize=True
            ).reshape(weight_shape)
        grad_bias = grad.sum(axis=(0, 1, 3, 4)) if needs_bias else None
        grad_x = None
        if needs_x:
            grad_cols = np.matmul(grad_flat, weight_flat)  # (T, rows, patch)
            grad_cols += np.matmul(grad_hidden, a)
            grad_cols = grad_cols.reshape(tasks * batch, out_h, out_w, patch)
            grad_x = col2im(
                grad_cols,
                (tasks * batch, in_channels, height, width),
                (kh, kw),
                stride,
                padding,
            ).reshape(x_shape)
        return grad_x, grad_weight, grad_a, grad_b, grad_bias

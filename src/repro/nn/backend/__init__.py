"""Pluggable kernel-backend registry for the ``repro.nn`` hot paths.

The ops in :mod:`repro.nn.functional` / :mod:`repro.nn.ops` and the serving
kernel execute their arithmetic through a :class:`KernelBackend` selected at
runtime.  Three backends ship in-tree:

``reference``
    The original serial numpy code, bit-for-bit unchanged.  Default.
``fast``
    Threaded, BLAS-shaped numpy: large-GEMM reordering, blocked/planar
    layout choices, preallocated workspaces.
``compiled``
    Numba-jitted elementwise kernels behind the ``compiled`` extras marker;
    registered but unavailable when numba is absent.

Selection precedence, strongest first: an explicit backend object handed to
an API, the innermost :func:`use_backend` context, a process-wide
:func:`set_default_backend`, the ``REPRO_KERNEL_BACKEND`` environment
variable, then ``reference``.  ``ExecutionPlan.kernel_backend`` and
``ServeConfig.kernel_backend`` feed these entry points from the
configuration layer; see ``docs/backends.md`` for the authoring guide.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Callable, Dict, List, Optional, Tuple, Union

from .base import (
    LAYOUTS,
    OPS,
    BackendUnavailableError,
    KernelBackend,
    layout_of,
    to_layout,
)
from .compiled import CompiledBackend
from .fast import FastBackend
from .reference import ReferenceBackend

__all__ = [
    "OPS",
    "LAYOUTS",
    "BackendUnavailableError",
    "KernelBackend",
    "ReferenceBackend",
    "FastBackend",
    "CompiledBackend",
    "layout_of",
    "to_layout",
    "register_backend",
    "available_backends",
    "importable_backends",
    "get_backend",
    "default_backend",
    "set_default_backend",
    "active_backend_name",
    "get_active_backend",
    "active_for",
    "use_backend",
    "resolve_backend",
]

#: Environment variable consulted when no stronger selection is in force.
ENV_VAR = "REPRO_KERNEL_BACKEND"

_FACTORIES: Dict[str, Callable[[], KernelBackend]] = {}
_INSTANCES: Dict[str, KernelBackend] = {}
_OVERRIDE_STACK: List[str] = []
_PROCESS_DEFAULT: Optional[str] = None


def register_backend(
    name: str, factory: Callable[[], KernelBackend], *, replace: bool = False
) -> None:
    """Register a backend factory under ``name``.

    ``factory`` is any zero-argument callable returning a
    :class:`KernelBackend` (typically the class itself).  Instantiation is
    lazy — unavailable optional backends register fine and only fail when
    first requested.  Re-registering an existing name requires
    ``replace=True`` so tests cannot silently shadow a shipped backend.
    """
    if not name or not isinstance(name, str):
        raise ValueError(f"backend name must be a non-empty string, got {name!r}")
    if name in _FACTORIES and not replace:
        raise ValueError(
            f"kernel backend '{name}' is already registered; pass replace=True "
            f"to override it"
        )
    _FACTORIES[name] = factory
    _INSTANCES.pop(name, None)


def available_backends() -> Tuple[str, ...]:
    """All registered backend names, in registration order."""
    return tuple(_FACTORIES)


def importable_backends() -> Tuple[str, ...]:
    """Registered backends that can actually run in this environment."""
    names = []
    for name in _FACTORIES:
        try:
            get_backend(name)
        except BackendUnavailableError:
            continue
        names.append(name)
    return tuple(names)


def get_backend(name: str) -> KernelBackend:
    """Instantiate (once) and return the backend registered under ``name``."""
    instance = _INSTANCES.get(name)
    if instance is not None:
        return instance
    factory = _FACTORIES.get(name)
    if factory is None:
        raise ValueError(
            f"unknown kernel backend '{name}'; registered backends: "
            f"{', '.join(sorted(_FACTORIES))}"
        )
    instance = factory()
    _INSTANCES[name] = instance
    return instance


def default_backend() -> str:
    """The backend name used when nothing stronger is selected.

    Process default (:func:`set_default_backend`) wins over the
    ``REPRO_KERNEL_BACKEND`` environment variable, which wins over
    ``reference``.
    """
    if _PROCESS_DEFAULT is not None:
        return _PROCESS_DEFAULT
    env = os.environ.get(ENV_VAR, "").strip()
    if env:
        if env not in _FACTORIES:
            raise ValueError(
                f"{ENV_VAR}={env!r} does not name a registered kernel backend; "
                f"registered backends: {', '.join(sorted(_FACTORIES))}"
            )
        return env
    return "reference"


def set_default_backend(name: Optional[str]) -> None:
    """Set (or with None, clear) the process-wide default backend."""
    if name is not None:
        get_backend(name)  # validate eagerly, including availability
    global _PROCESS_DEFAULT
    _PROCESS_DEFAULT = name


def active_backend_name() -> str:
    """Name of the backend ops will dispatch to right now."""
    if _OVERRIDE_STACK:
        return _OVERRIDE_STACK[-1]
    return default_backend()


def get_active_backend() -> KernelBackend:
    """The backend instance ops will dispatch to right now."""
    return get_backend(active_backend_name())


def active_for(op: str) -> KernelBackend:
    """The backend that should run ``op``: active if capable, else reference.

    This is the dispatcher the ops call on every invocation; a backend that
    does not declare ``op`` in its capabilities silently falls back to the
    reference implementation rather than failing mid-graph.
    """
    backend = get_active_backend()
    if op in backend.capabilities():
        return backend
    return get_backend("reference")


@contextmanager
def use_backend(name: str):
    """Context manager selecting ``name`` for ops run inside the block.

    Overrides nest; the innermost wins.  The override is process-global (it
    is read by whatever thread executes an op), so scope it around a
    single-threaded region — the serving layer instead passes explicit
    backend objects to its kernels.
    """
    backend = get_backend(name)  # validate, including availability
    _OVERRIDE_STACK.append(backend.name)
    try:
        yield backend
    finally:
        _OVERRIDE_STACK.pop()


def resolve_backend(
    spec: Union[None, str, KernelBackend]
) -> KernelBackend:
    """Resolve an optional backend spec to an instance.

    ``None`` means "whatever is active", a string is looked up in the
    registry, and an instance passes through untouched — the idiom for APIs
    such as ``SharedParameterKernel(backend=...)``.
    """
    if spec is None:
        return get_active_backend()
    if isinstance(spec, KernelBackend):
        return spec
    return get_backend(spec)


register_backend("reference", ReferenceBackend)
register_backend("fast", FastBackend)
register_backend("compiled", CompiledBackend)

"""Kernel-backend interface and memory-layout contract.

A :class:`KernelBackend` implements the raw-``ndarray`` op surface that the
hot paths of the reproduction actually execute: the batched linear/conv
forward+backward pairs used by the task-batched engine, the low-rank adapted
variants used by per-user serving, elementwise activations, reductions, and
the block-mapping hook used by the serving kernel.  Autograd, validation and
Tensor bookkeeping stay in :mod:`repro.nn.functional` / :mod:`repro.nn.ops`;
backends only ever see plain numpy arrays.

Layout contract
---------------
Backends may compute in whatever memory layout they like (``planar``
row-major or ``blocked`` column-major — the oneDNN planar-vs-blocked
distinction collapsed to the two layouts numpy can express), but every array
that crosses the backend boundary is **planar**: C-ordered, with the logical
axes in the documented op shapes.  A backend that computes in blocked layout
must convert with :func:`to_layout` before returning (a Reorder, in oneDNN
terms).  :func:`layout_of` classifies an array; conversions are explicit so
the op-db suite can exercise both layouts as inputs.

Forward methods return ``(out, ctx)`` where ``ctx`` is an opaque object the
caller passes back to the matching backward method; backward methods take a
``needs`` tuple of booleans (one per differentiable input, in signature
order) and return a tuple of gradient arrays with ``None`` in positions that
were not requested.
"""

from __future__ import annotations

import abc
from typing import Any, Callable, Dict, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "OPS",
    "LAYOUTS",
    "BackendUnavailableError",
    "KernelBackend",
    "layout_of",
    "to_layout",
]

#: The capability vocabulary.  ``capabilities()`` returns a subset of these;
#: the dispatcher only routes an op to the active backend when the backend
#: declares the matching capability, falling back to ``reference`` otherwise.
OPS: Tuple[str, ...] = (
    "matmul",
    "gemm",
    "relu",
    "tanh",
    "sigmoid",
    "reduce_sum",
    "reduce_mean",
    "linear_batched",
    "conv2d_batched",
    "linear_lowrank_batched",
    "conv2d_lowrank_batched",
    "map_blocks",
)

#: Recognised memory layouts for 2-D operands.
LAYOUTS: Tuple[str, ...] = ("planar", "blocked")


class BackendUnavailableError(RuntimeError):
    """Raised when a registered backend cannot run in this environment.

    The registry keeps optional backends (e.g. ``compiled``) registered even
    when their dependency is missing so that the error message can say what
    to install, and so test suites can enumerate and skip them.
    """


def layout_of(matrix: np.ndarray) -> str:
    """Classify a 2-D array as ``planar`` (C-order) or ``blocked`` (F-order).

    Arrays that are neither (non-contiguous views) are reported as
    ``"strided"``; backends must reorder those before handing them to a
    layout-sensitive kernel.
    """
    if matrix.ndim != 2:
        raise ValueError(f"layout_of classifies 2-D arrays, got shape {matrix.shape}")
    if matrix.flags["C_CONTIGUOUS"]:
        return "planar"
    if matrix.flags["F_CONTIGUOUS"]:
        return "blocked"
    return "strided"


def to_layout(matrix: np.ndarray, layout: str) -> np.ndarray:
    """Reorder a 2-D array into ``layout`` (no-op when already there).

    This is the explicit boundary conversion of the layout contract: values
    are untouched, only the element order in memory changes.
    """
    if layout == "planar":
        return np.ascontiguousarray(matrix)
    if layout == "blocked":
        return np.asfortranarray(matrix)
    raise ValueError(f"unknown layout '{layout}'; expected one of {LAYOUTS}")


class KernelBackend(abc.ABC):
    """Abstract kernel backend.

    Subclasses set :attr:`name`, implement the op surface, and declare what
    they implement through :meth:`capabilities`.  ``is_available`` lets
    optional backends stay registered while their dependency is absent.
    """

    #: Registry name; subclasses must override.
    name: str = "abstract"

    @classmethod
    def is_available(cls) -> bool:
        """Whether this backend can be instantiated in this environment."""
        return True

    def capabilities(self) -> frozenset:
        """The subset of :data:`OPS` this backend implements natively."""
        return frozenset(OPS)

    @property
    def parallelism(self) -> int:
        """Worker-thread count the backend uses (1 means fully serial)."""
        return 1

    # ------------------------------------------------------------------
    # Scratch space
    # ------------------------------------------------------------------
    def workspace(
        self, tag: Any, shape: Tuple[int, ...], dtype: np.dtype
    ) -> Optional[np.ndarray]:
        """Return a reusable scratch buffer for ``out=`` style calls, or None.

        ``None`` means "allocate fresh" — the serial reference backend always
        answers ``None`` so its allocation behaviour (and therefore its exact
        BLAS call shapes) stay identical to the pre-registry code.  Backends
        that cache must key buffers by calling thread: the serving kernel
        calls into the backend from multiple threads at once.  A returned
        buffer is only valid until the caller's next workspace request with
        the same tag from the same thread.
        """
        return None

    # ------------------------------------------------------------------
    # Dense products
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def matmul(
        self, a: np.ndarray, b: np.ndarray, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """N-D matrix product with numpy broadcasting semantics."""

    @abc.abstractmethod
    def gemm(
        self, a: np.ndarray, b: np.ndarray, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Plain 2-D matrix product ``a @ b``."""

    # ------------------------------------------------------------------
    # Elementwise activations
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def relu(self, x: np.ndarray) -> np.ndarray:
        """Rectified linear unit, ``max(x, 0)``."""

    @abc.abstractmethod
    def tanh(self, x: np.ndarray) -> np.ndarray:
        """Hyperbolic tangent."""

    @abc.abstractmethod
    def sigmoid(self, x: np.ndarray) -> np.ndarray:
        """Logistic sigmoid ``1 / (1 + exp(-x))``."""

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def reduce_sum(self, x: np.ndarray, axis=None) -> np.ndarray:
        """Sum reduction along ``axis`` (all axes when None)."""

    @abc.abstractmethod
    def reduce_mean(self, x: np.ndarray, axis=None) -> np.ndarray:
        """Mean reduction along ``axis`` (all axes when None)."""

    # ------------------------------------------------------------------
    # Fused batched ops (forward returns (out, ctx); backward consumes ctx)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def linear_batched_forward(
        self, x: np.ndarray, weight: np.ndarray, bias: Optional[np.ndarray]
    ) -> Tuple[np.ndarray, Any]:
        """Per-task linear: ``(T,B,I) x (T,O,I) [+ (T,O)] -> (T,B,O)``."""

    @abc.abstractmethod
    def linear_batched_backward(
        self, ctx: Any, grad: np.ndarray, needs: Tuple[bool, bool, bool]
    ) -> Tuple[Optional[np.ndarray], Optional[np.ndarray], Optional[np.ndarray]]:
        """Gradients ``(gx, gweight, gbias)`` for :meth:`linear_batched_forward`."""

    @abc.abstractmethod
    def linear_lowrank_forward(
        self,
        x: np.ndarray,
        weight: np.ndarray,
        a: np.ndarray,
        b: np.ndarray,
        bias: Optional[np.ndarray],
    ) -> Tuple[np.ndarray, Any]:
        """Shared-base + rank-r linear: ``(T,B,I) x (O,I) + factors -> (T,B,O)``."""

    @abc.abstractmethod
    def linear_lowrank_backward(
        self, ctx: Any, grad: np.ndarray, needs: Tuple[bool, bool, bool, bool, bool]
    ) -> Tuple[
        Optional[np.ndarray],
        Optional[np.ndarray],
        Optional[np.ndarray],
        Optional[np.ndarray],
        Optional[np.ndarray],
    ]:
        """Gradients ``(gx, gweight, ga, gb, gbias)``."""

    @abc.abstractmethod
    def conv2d_batched_forward(
        self,
        x: np.ndarray,
        weight: np.ndarray,
        bias: Optional[np.ndarray],
        stride,
        padding,
    ) -> Tuple[np.ndarray, Any]:
        """Per-task conv: ``(T,B,C,H,W) x (T,O,C,kh,kw) -> (T,B,O,OH,OW)``."""

    @abc.abstractmethod
    def conv2d_batched_backward(
        self, ctx: Any, grad: np.ndarray, needs: Tuple[bool, bool, bool]
    ) -> Tuple[Optional[np.ndarray], Optional[np.ndarray], Optional[np.ndarray]]:
        """Gradients ``(gx, gweight, gbias)`` for :meth:`conv2d_batched_forward`."""

    @abc.abstractmethod
    def conv2d_lowrank_forward(
        self,
        x: np.ndarray,
        weight: np.ndarray,
        a: np.ndarray,
        b: np.ndarray,
        bias: Optional[np.ndarray],
        stride,
        padding,
    ) -> Tuple[np.ndarray, Any]:
        """Shared-base + rank-r conv: ``(T,B,C,H,W) x (O,C,kh,kw) + factors``."""

    @abc.abstractmethod
    def conv2d_lowrank_backward(
        self, ctx: Any, grad: np.ndarray, needs: Tuple[bool, bool, bool, bool, bool]
    ) -> Tuple[
        Optional[np.ndarray],
        Optional[np.ndarray],
        Optional[np.ndarray],
        Optional[np.ndarray],
        Optional[np.ndarray],
    ]:
        """Gradients ``(gx, gweight, ga, gb, gbias)``."""

    # ------------------------------------------------------------------
    # Serving-kernel hook
    # ------------------------------------------------------------------
    def map_blocks(
        self, fn: Callable[[Any], Any], blocks: Sequence[Any]
    ) -> list:
        """Apply ``fn`` to each block, preserving order.

        Serial in the base class; parallel backends may fan the blocks out
        over threads.  Each block is computed with identical shapes, so the
        result bits do not depend on which thread ran which block.
        """
        return [fn(block) for block in blocks]

    def describe(self) -> Dict[str, Any]:
        """Human-readable summary used by CLI banners and benchmarks."""
        return {
            "name": self.name,
            "parallelism": self.parallelism,
            "capabilities": sorted(self.capabilities()),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r} parallelism={self.parallelism}>"

"""Reverse-mode automatic differentiation over NumPy arrays.

This module provides the :class:`Tensor` class, the foundation of the
``repro.nn`` neural-network substrate.  A :class:`Tensor` wraps a
``numpy.ndarray`` and records the operations applied to it so that gradients
can be computed with a single call to :meth:`Tensor.backward`.

The design intentionally mirrors the familiar PyTorch semantics (lazily
accumulated ``.grad`` buffers, ``requires_grad`` flags, broadcasting-aware
backward rules) while staying small enough to audit: every backward rule is
covered by finite-difference tests in ``tests/nn``.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union["Tensor", np.ndarray, float, int, Sequence]

__all__ = ["Tensor", "no_grad", "is_grad_enabled"]


class _GradMode:
    """Process-wide switch controlling whether operations build a graph."""

    enabled: bool = True


class no_grad:
    """Context manager that disables graph construction.

    Example
    -------
    >>> x = Tensor([1.0, 2.0], requires_grad=True)
    >>> with no_grad():
    ...     y = x * 2
    >>> y.requires_grad
    False
    """

    def __enter__(self) -> "no_grad":
        self._previous = _GradMode.enabled
        _GradMode.enabled = False
        return self

    def __exit__(self, *exc_info) -> None:
        _GradMode.enabled = self._previous


def is_grad_enabled() -> bool:
    """Return ``True`` when new operations record gradient information."""
    return _GradMode.enabled


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so that it matches ``shape``.

    NumPy broadcasting may expand an operand along new leading axes or along
    axes of size one.  The gradient flowing back through a broadcast must be
    summed over those expanded axes to recover the operand's shape.
    """
    if grad.shape == shape:
        return grad
    # Sum over extra leading dimensions added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were broadcast from size 1.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value: ArrayLike, dtype=np.float64) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=dtype)


class Tensor:
    """A NumPy-backed tensor with reverse-mode automatic differentiation.

    Parameters
    ----------
    data:
        Array-like payload.  Stored as ``float64`` by default for numerical
        robustness in gradient checks; training code may pass ``float32``.
    requires_grad:
        When ``True`` the tensor participates in the autograd graph and
        accumulates gradients in :attr:`grad` after :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        name: Optional[str] = None,
    ) -> None:
        self.data = _as_array(data)
        self.requires_grad = bool(requires_grad)
        self.grad: Optional[np.ndarray] = None
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()
        self.name = name

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (not a copy)."""
        return self.data

    def item(self) -> float:
        """Return the value of a single-element tensor as a Python float."""
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but detached from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        """Return a deep copy detached from the graph."""
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient buffer."""
        self.grad = None

    # ------------------------------------------------------------------
    # Graph construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Iterable["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        parents = tuple(parents)
        requires_grad = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires_grad)
        if requires_grad:
            out._parents = parents
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        grad = _unbroadcast(np.asarray(grad, dtype=self.data.dtype), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    def _accumulate_owned(self, grad: np.ndarray) -> None:
        """Accumulate a gradient buffer the caller guarantees is freshly
        allocated and unaliased, skipping the defensive copy of
        :meth:`_accumulate`.

        Only backward rules that just produced ``grad`` from a BLAS call or
        reduction may use this; sharing the array with another tensor
        afterwards would corrupt gradient accumulation.  The saving matters
        for the large ``(tasks, ...)`` gradients of the batched meta-learning
        inner loop.
        """
        if not self.requires_grad:
            return
        grad = _unbroadcast(np.asarray(grad, dtype=self.data.dtype), self.data.shape)
        if self.grad is None:
            self.grad = grad
        else:
            self.grad = self.grad + grad

    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Backpropagate gradients from this tensor through the graph.

        Parameters
        ----------
        grad:
            Gradient of some scalar objective with respect to this tensor.
            Defaults to ones, which is only valid for scalar tensors.
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() without an explicit gradient is only supported "
                    f"for scalar tensors, got shape {self.shape}"
                )
            grad = np.ones_like(self.data)
        grad = np.asarray(_as_array(grad), dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            grad = np.broadcast_to(grad, self.data.shape).copy()

        topo: list[Tensor] = []
        visited: set[int] = set()

        # Iterative topological sort to avoid recursion-depth issues on deep
        # graphs (e.g. many fine-tuning steps recorded in one graph).
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if not node.requires_grad:
                continue
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited and parent.requires_grad:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data + other_t.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad)
            other_t._accumulate(grad)

        return Tensor._make(data, (self, other_t), backward)

    def __radd__(self, other: ArrayLike) -> "Tensor":
        return self.__add__(other)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data - other_t.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad)
            other_t._accumulate(-grad)

        return Tensor._make(data, (self, other_t), backward)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other).__sub__(self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data * other_t.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * other_t.data)
            other_t._accumulate(grad * self.data)

        return Tensor._make(data, (self, other_t), backward)

    def __rmul__(self, other: ArrayLike) -> "Tensor":
        return self.__mul__(other)

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data / other_t.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / other_t.data)
            other_t._accumulate(-grad * self.data / (other_t.data ** 2))

        return Tensor._make(data, (self, other_t), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other).__truediv__(self)

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward)

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("Tensor.__pow__ only supports scalar exponents")
        data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(data, (self,), backward)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        return self.matmul(other)

    # ------------------------------------------------------------------
    # Linear algebra
    # ------------------------------------------------------------------
    def matmul(self, other: ArrayLike) -> "Tensor":
        """Matrix product supporting 1-D and 2-D (and batched) operands."""
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data @ other_t.data

        def backward(grad: np.ndarray) -> None:
            a, b = self.data, other_t.data
            if a.ndim == 1 and b.ndim == 1:
                self._accumulate(grad * b)
                other_t._accumulate(grad * a)
            elif a.ndim == 1:
                self._accumulate(grad @ np.swapaxes(b, -1, -2))
                other_t._accumulate(np.outer(a, grad))
            elif b.ndim == 1:
                self._accumulate(np.outer(grad, b))
                other_t._accumulate(np.swapaxes(a, -1, -2) @ grad)
            else:
                grad_a = grad @ np.swapaxes(b, -1, -2)
                grad_b = np.swapaxes(a, -1, -2) @ grad
                self._accumulate(_unbroadcast(grad_a, a.shape))
                other_t._accumulate(_unbroadcast(grad_b, b.shape))

        return Tensor._make(data, (self, other_t), backward)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.data.shape
        data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(original))

        return Tensor._make(data, (self,), backward)

    def flatten(self, start_dim: int = 0) -> "Tensor":
        """Flatten dimensions from ``start_dim`` onward into one axis."""
        lead = self.data.shape[:start_dim]
        return self.reshape(*lead, -1)

    def transpose(self, *axes: int) -> "Tensor":
        if not axes:
            axes_seq: Optional[Tuple[int, ...]] = None
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes_seq = tuple(axes[0])
        else:
            axes_seq = tuple(axes)
        data = np.transpose(self.data, axes_seq)

        def backward(grad: np.ndarray) -> None:
            if axes_seq is None:
                self._accumulate(np.transpose(grad))
            else:
                inverse = np.argsort(axes_seq)
                self._accumulate(np.transpose(grad, inverse))

        return Tensor._make(data, (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if axis is None:
                self._accumulate(np.broadcast_to(grad, self.data.shape))
                return
            axes = axis if isinstance(axis, tuple) else (axis,)
            if not keepdims:
                grad = np.expand_dims(grad, axes)
            self._accumulate(np.broadcast_to(grad, self.data.shape))

        return Tensor._make(data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Population variance along ``axis`` (differentiable)."""
        mean = self.mean(axis=axis, keepdims=True)
        centered = self - mean
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if axis is None:
                mask = (self.data == self.data.max()).astype(self.data.dtype)
                mask /= mask.sum()
                self._accumulate(mask * grad)
                return
            axes = axis if isinstance(axis, tuple) else (axis,)
            expanded = grad if keepdims else np.expand_dims(grad, axes)
            maxima = self.data.max(axis=axis, keepdims=True)
            mask = (self.data == maxima).astype(self.data.dtype)
            mask /= mask.sum(axis=axis, keepdims=True)
            self._accumulate(mask * expanded)

        return Tensor._make(data, (self,), backward)

    def min(self, axis=None, keepdims: bool = False) -> "Tensor":
        return -((-self).max(axis=axis, keepdims=keepdims))

    # ------------------------------------------------------------------
    # Elementwise non-linearities
    # ------------------------------------------------------------------
    def relu(self) -> "Tensor":
        mask = self.data > 0
        data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return Tensor._make(data, (self,), backward)

    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * data)

        return Tensor._make(data, (self,), backward)

    def log(self) -> "Tensor":
        data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return Tensor._make(data, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def abs(self) -> "Tensor":
        data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * np.sign(self.data))

        return Tensor._make(data, (self,), backward)

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - data ** 2))

        return Tensor._make(data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * data * (1.0 - data))

        return Tensor._make(data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        data = np.clip(self.data, low, high)
        mask = (self.data >= low) & (self.data <= high)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------
    # Combination helpers
    # ------------------------------------------------------------------
    @staticmethod
    def concatenate(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        """Differentiable concatenation along ``axis``."""
        tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
        data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.data.shape[axis] for t in tensors]

        def backward(grad: np.ndarray) -> None:
            start = 0
            for t, size in zip(tensors, sizes):
                index = [slice(None)] * grad.ndim
                index[axis] = slice(start, start + size)
                t._accumulate(grad[tuple(index)])
                start += size

        return Tensor._make(data, tuple(tensors), backward)

    @staticmethod
    def stack(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        """Differentiable stacking along a new axis."""
        tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
        data = np.stack([t.data for t in tensors], axis=axis)

        def backward(grad: np.ndarray) -> None:
            slices = np.split(grad, len(tensors), axis=axis)
            for t, piece in zip(tensors, slices):
                t._accumulate(np.squeeze(piece, axis=axis))

        return Tensor._make(data, tuple(tensors), backward)

    def pad(self, pad_width: Sequence[Tuple[int, int]]) -> "Tensor":
        """Zero-pad the tensor; ``pad_width`` follows ``numpy.pad`` semantics."""
        pad_width = tuple(tuple(p) for p in pad_width)
        data = np.pad(self.data, pad_width)

        def backward(grad: np.ndarray) -> None:
            index = tuple(
                slice(before, dim + before)
                for (before, _after), dim in zip(pad_width, self.data.shape)
            )
            self._accumulate(grad[index])

        return Tensor._make(data, (self,), backward)

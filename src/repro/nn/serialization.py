"""Saving and loading model state.

Models are serialized as ``.npz`` archives containing the state dict produced
by :meth:`repro.nn.layers.Module.state_dict`.  This keeps checkpoints portable
(pure NumPy, no pickled code objects) and small enough to version control.
"""

from __future__ import annotations

import io
import json
import os
import zlib
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from .layers import Module

__all__ = [
    "save_state",
    "load_state",
    "load_state_bytes",
    "read_metadata",
    "save_model",
    "save_state_bytes",
    "state_checksum",
    "load_model_into",
]

PathLike = Union[str, Path]
_METADATA_KEY = "__repro_metadata__"


def state_checksum(state: Dict[str, np.ndarray]) -> int:
    """CRC32 over a state dict's keys, dtypes, shapes and raw bytes.

    Key order does not matter (keys are folded in sorted order), so the
    checksum of a loaded archive matches the checksum recorded at save time
    regardless of how either side enumerates its members.  The value fits in
    an unsigned 32-bit integer and round-trips through JSON metadata.
    """
    crc = 0
    for key in sorted(state):
        array = np.ascontiguousarray(state[key])
        header = f"{key}:{array.dtype.str}:{array.shape}".encode("utf-8")
        crc = zlib.crc32(header, crc)
        crc = zlib.crc32(array.tobytes(), crc)
    return crc & 0xFFFFFFFF


def save_state(
    state: Dict[str, np.ndarray], path: PathLike, metadata: Optional[Dict] = None
) -> Path:
    """Write a state dict (plus optional JSON-serializable metadata) to disk.

    The write is atomic: the archive is assembled in a temporary sibling file
    and :func:`os.replace`-renamed onto the final path, so a crash mid-write
    leaves either the previous archive or none — never a truncated one.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    # np.savez appends ".npz" when missing; normalise the final path first so
    # the temporary file and the rename target agree.
    final = path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")
    payload = dict(state)
    if metadata is not None:
        payload[_METADATA_KEY] = np.frombuffer(
            json.dumps(metadata).encode("utf-8"), dtype=np.uint8
        )
    tmp = final.with_name(final.name + f".tmp-{os.getpid()}")
    try:
        np.savez_compressed(tmp, **payload)
        # np.savez also suffixes the temporary name when it lacks ".npz".
        written = tmp if tmp.suffix == ".npz" else tmp.with_suffix(tmp.suffix + ".npz")
        os.replace(written, final)
    except BaseException:
        for candidate in (tmp, tmp.with_suffix(tmp.suffix + ".npz")):
            try:
                candidate.unlink()
            except OSError:
                pass
        raise
    return final


def load_state(path: PathLike) -> tuple[Dict[str, np.ndarray], Optional[Dict]]:
    """Load a state dict and its metadata from an ``.npz`` checkpoint."""
    path = Path(path)
    if not path.exists() and path.suffix != ".npz":
        candidate = path.with_suffix(path.suffix + ".npz")
        if candidate.exists():
            path = candidate
    with np.load(path, allow_pickle=False) as archive:
        state = {key: archive[key] for key in archive.files if key != _METADATA_KEY}
        metadata = None
        if _METADATA_KEY in archive.files:
            metadata = json.loads(bytes(archive[_METADATA_KEY].tolist()).decode("utf-8"))
    return state, metadata


def save_state_bytes(state: Dict[str, np.ndarray], metadata: Optional[Dict] = None) -> bytes:
    """Serialize a state dict to in-memory ``.npz`` bytes.

    Same archive layout as :func:`save_state` (so the two are mutually
    readable), but targeting a buffer instead of a file — this is how
    per-user adapter state travels over the serving wire during live user
    migration without touching the spill directory.
    """
    payload = dict(state)
    if metadata is not None:
        payload[_METADATA_KEY] = np.frombuffer(
            json.dumps(metadata).encode("utf-8"), dtype=np.uint8
        )
    buffer = io.BytesIO()
    np.savez_compressed(buffer, **payload)
    return buffer.getvalue()


def load_state_bytes(data: bytes) -> tuple[Dict[str, np.ndarray], Optional[Dict]]:
    """Load a state dict and its metadata from in-memory ``.npz`` bytes."""
    with np.load(io.BytesIO(data), allow_pickle=False) as archive:
        state = {key: archive[key] for key in archive.files if key != _METADATA_KEY}
        metadata = None
        if _METADATA_KEY in archive.files:
            metadata = json.loads(bytes(archive[_METADATA_KEY].tolist()).decode("utf-8"))
    return state, metadata


def read_metadata(path: PathLike) -> Optional[Dict]:
    """Read only the metadata block of a checkpoint.

    ``.npz`` members decompress lazily, so this touches just the (tiny) JSON
    array — the cheap way to identify many archives (e.g. scanning an adapter
    spill directory on startup) without loading their tensors.
    """
    with np.load(Path(path), allow_pickle=False) as archive:
        if _METADATA_KEY not in archive.files:
            return None
        return json.loads(bytes(archive[_METADATA_KEY].tolist()).decode("utf-8"))


def save_model(model: Module, path: PathLike, metadata: Optional[Dict] = None) -> Path:
    """Serialize a module's parameters and buffers to ``path``."""
    return save_state(model.state_dict(), path, metadata=metadata)


def load_model_into(model: Module, path: PathLike) -> Optional[Dict]:
    """Load a checkpoint into an existing module; returns stored metadata."""
    state, metadata = load_state(path)
    model.load_state_dict(state)
    return metadata

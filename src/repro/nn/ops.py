"""Convolution and pooling primitives for the ``repro.nn`` substrate.

The implementations use an im2col/col2im lowering so that the heavy lifting is
delegated to a single matrix multiplication per layer, which keeps CPU
training of the small MARS/FUSE CNNs practical.
"""

from __future__ import annotations

import numpy as np

from . import backend as _backend
from .cols import IntPair, _as_pair, col2im, conv_output_shape, im2col
from .tensor import Tensor

__all__ = [
    "im2col",
    "col2im",
    "conv_output_shape",
    "conv2d",
    "conv2d_batched",
    "conv2d_lowrank_batched",
    "max_pool2d",
    "avg_pool2d",
]


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    stride: IntPair = 1,
    padding: IntPair = 0,
) -> Tensor:
    """Differentiable 2-D cross-correlation (the deep-learning "convolution").

    Parameters
    ----------
    x:
        Input tensor of shape ``(batch, in_channels, height, width)``.
    weight:
        Filter tensor of shape ``(out_channels, in_channels, kh, kw)``.
    bias:
        Optional tensor of shape ``(out_channels,)``.
    """
    if x.ndim != 4:
        raise ValueError(f"conv2d expects a 4-D input, got shape {x.shape}")
    if weight.ndim != 4:
        raise ValueError(f"conv2d expects a 4-D weight, got shape {weight.shape}")
    out_channels, in_channels, kh, kw = weight.shape
    if x.shape[1] != in_channels:
        raise ValueError(
            f"input has {x.shape[1]} channels but weight expects {in_channels}"
        )

    batch = x.shape[0]
    out_h, out_w = conv_output_shape(x.shape[2], x.shape[3], (kh, kw), stride, padding)

    cols = im2col(x.data, (kh, kw), stride, padding)  # (B, OH, OW, C*kh*kw)
    cols_flat = cols.reshape(-1, in_channels * kh * kw)
    weight_flat = weight.data.reshape(out_channels, -1)

    out = cols_flat @ weight_flat.T  # (B*OH*OW, out_channels)
    out = out.reshape(batch, out_h, out_w, out_channels).transpose(0, 3, 1, 2)
    if bias is not None:
        out = out + bias.data.reshape(1, out_channels, 1, 1)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad: np.ndarray) -> None:
        # grad: (B, out_channels, OH, OW)
        grad_flat = grad.transpose(0, 2, 3, 1).reshape(-1, out_channels)
        if weight.requires_grad:
            grad_weight = grad_flat.T @ cols_flat
            weight._accumulate(grad_weight.reshape(weight.shape))
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad.sum(axis=(0, 2, 3)))
        if x.requires_grad:
            grad_cols = grad_flat @ weight_flat  # (B*OH*OW, C*kh*kw)
            grad_cols = grad_cols.reshape(batch, out_h, out_w, -1)
            grad_x = col2im(grad_cols, x.data.shape, (kh, kw), stride, padding)
            x._accumulate(grad_x)

    return Tensor._make(out, parents, backward)


def conv2d_batched(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    stride: IntPair = 1,
    padding: IntPair = 0,
) -> Tensor:
    """Grouped 2-D convolution with an independent filter bank per task.

    This is the workhorse of task-batched meta-learning: every task ``t`` in
    the leading axis owns its own adapted weights, and all tasks' forward and
    backward passes are computed with one ``im2col`` and one batched matrix
    multiplication instead of a Python loop over tasks.

    Parameters
    ----------
    x:
        Input tensor of shape ``(tasks, batch, in_channels, height, width)``.
    weight:
        Filter tensor of shape ``(tasks, out_channels, in_channels, kh, kw)``.
    bias:
        Optional tensor of shape ``(tasks, out_channels)``.

    Returns
    -------
    Tensor of shape ``(tasks, batch, out_channels, out_h, out_w)``.
    """
    if x.ndim != 5:
        raise ValueError(f"conv2d_batched expects a 5-D input, got shape {x.shape}")
    if weight.ndim != 5:
        raise ValueError(f"conv2d_batched expects a 5-D weight, got shape {weight.shape}")
    tasks, batch, in_channels, height, width = x.shape
    w_tasks, out_channels, w_in, kh, kw = weight.shape
    if w_tasks != tasks:
        raise ValueError(f"weight has {w_tasks} task slots but input has {tasks}")
    if w_in != in_channels:
        raise ValueError(f"input has {in_channels} channels but weight expects {w_in}")
    if bias is not None and bias.shape != (tasks, out_channels):
        raise ValueError(
            f"bias must have shape ({tasks}, {out_channels}), got {bias.shape}"
        )

    kernel = _backend.active_for("conv2d_batched")
    out, ctx = kernel.conv2d_batched_forward(
        x.data, weight.data, None if bias is None else bias.data, stride, padding
    )

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad: np.ndarray) -> None:
        grad_x, grad_weight, grad_bias = kernel.conv2d_batched_backward(
            ctx,
            grad,
            (
                x.requires_grad,
                weight.requires_grad,
                bias is not None and bias.requires_grad,
            ),
        )
        if grad_weight is not None:
            weight._accumulate_owned(grad_weight)
        if grad_bias is not None:
            bias._accumulate_owned(grad_bias)
        if grad_x is not None:
            x._accumulate_owned(grad_x)

    return Tensor._make(out, parents, backward)


def conv2d_lowrank_batched(
    x: Tensor,
    weight: Tensor,
    a: Tensor,
    b: Tensor,
    bias: Tensor | None = None,
    stride: IntPair = 1,
    padding: IntPair = 0,
) -> Tensor:
    """Grouped convolution with a *shared* filter bank and rank-r deltas.

    The effective per-task filters are ``weight + unflatten(b[t] @ a[t])``
    on the im2col-lowered ``(out_channels, patch)`` view of the weights
    (``patch = in_channels * kh * kw``), but the dense delta is never
    materialized: the base runs as one broadcast matrix product against the
    shared filters and the delta as two rank-r products per task.  Only the
    factors carry gradients in the adaptation use case (the base weight and
    bias are frozen snapshots), so fine-tuning a task touches
    ``O(r * (patch + out_channels))`` parameters instead of the full bank.

    Parameters
    ----------
    x:
        Input tensor of shape ``(tasks, batch, in_channels, height, width)``.
    weight:
        Shared filter bank of shape ``(out_channels, in_channels, kh, kw)``
        — no task axis.
    a:
        Down-projection factors of shape ``(tasks, rank, patch)``.
    b:
        Up-projection factors of shape ``(tasks, out_channels, rank)``.
    bias:
        Optional shared bias of shape ``(out_channels,)``.

    Returns
    -------
    Tensor of shape ``(tasks, batch, out_channels, out_h, out_w)``.
    """
    if x.ndim != 5:
        raise ValueError(f"conv2d_lowrank_batched expects a 5-D input, got shape {x.shape}")
    if weight.ndim != 4:
        raise ValueError(
            f"conv2d_lowrank_batched expects a shared 4-D weight, got shape {weight.shape}"
        )
    tasks, batch, in_channels, height, width = x.shape
    out_channels, w_in, kh, kw = weight.shape
    if w_in != in_channels:
        raise ValueError(f"input has {in_channels} channels but weight expects {w_in}")
    patch = in_channels * kh * kw
    if a.ndim != 3 or a.shape[0] != tasks or a.shape[2] != patch:
        raise ValueError(
            f"a must have shape ({tasks}, rank, {patch}), got {a.shape}"
        )
    rank = a.shape[1]
    if b.shape != (tasks, out_channels, rank):
        raise ValueError(f"b must have shape {(tasks, out_channels, rank)}, got {b.shape}")
    if bias is not None and bias.shape != (out_channels,):
        raise ValueError(f"bias must have shape ({out_channels},), got {bias.shape}")

    kernel = _backend.active_for("conv2d_lowrank_batched")
    out, ctx = kernel.conv2d_lowrank_forward(
        x.data,
        weight.data,
        a.data,
        b.data,
        None if bias is None else bias.data,
        stride,
        padding,
    )

    parents = (x, weight, a, b) if bias is None else (x, weight, a, b, bias)

    def backward(grad: np.ndarray) -> None:
        grad_x, grad_weight, grad_a, grad_b, grad_bias = kernel.conv2d_lowrank_backward(
            ctx,
            grad,
            (
                x.requires_grad,
                weight.requires_grad,
                a.requires_grad,
                b.requires_grad,
                bias is not None and bias.requires_grad,
            ),
        )
        if grad_b is not None:
            b._accumulate_owned(grad_b)
        if grad_a is not None:
            a._accumulate_owned(grad_a)
        if grad_weight is not None:
            weight._accumulate(grad_weight)
        if grad_bias is not None:
            bias._accumulate(grad_bias)
        if grad_x is not None:
            x._accumulate_owned(grad_x)

    return Tensor._make(out, parents, backward)


def max_pool2d(x: Tensor, kernel_size: IntPair, stride: IntPair | None = None) -> Tensor:
    """Differentiable 2-D max pooling."""
    if stride is None:
        stride = kernel_size
    kh, kw = _as_pair(kernel_size)
    sh, sw = _as_pair(stride)
    batch, channels, height, width = x.shape
    out_h, out_w = conv_output_shape(height, width, (kh, kw), (sh, sw), 0)

    cols = im2col(
        x.data.reshape(batch * channels, 1, height, width), (kh, kw), (sh, sw), 0
    )  # (B*C, OH, OW, kh*kw)
    flat = cols.reshape(batch * channels, out_h, out_w, kh * kw)
    argmax = flat.argmax(axis=-1)
    out = np.take_along_axis(flat, argmax[..., None], axis=-1)[..., 0]
    out = out.reshape(batch, channels, out_h, out_w)

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        grad_cols = np.zeros_like(flat)
        np.put_along_axis(
            grad_cols,
            argmax[..., None],
            grad.reshape(batch * channels, out_h, out_w, 1),
            axis=-1,
        )
        grad_x = col2im(
            grad_cols,
            (batch * channels, 1, height, width),
            (kh, kw),
            (sh, sw),
            0,
        )
        x._accumulate(grad_x.reshape(batch, channels, height, width))

    return Tensor._make(out, (x,), backward)


def avg_pool2d(x: Tensor, kernel_size: IntPair, stride: IntPair | None = None) -> Tensor:
    """Differentiable 2-D average pooling."""
    if stride is None:
        stride = kernel_size
    kh, kw = _as_pair(kernel_size)
    sh, sw = _as_pair(stride)
    batch, channels, height, width = x.shape
    out_h, out_w = conv_output_shape(height, width, (kh, kw), (sh, sw), 0)

    cols = im2col(
        x.data.reshape(batch * channels, 1, height, width), (kh, kw), (sh, sw), 0
    )
    flat = cols.reshape(batch * channels, out_h, out_w, kh * kw)
    out = flat.mean(axis=-1).reshape(batch, channels, out_h, out_w)

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        grad_cols = np.repeat(
            grad.reshape(batch * channels, out_h, out_w, 1) / (kh * kw), kh * kw, axis=-1
        )
        grad_x = col2im(
            grad_cols, (batch * channels, 1, height, width), (kh, kw), (sh, sw), 0
        )
        x._accumulate(grad_x.reshape(batch, channels, height, width))

    return Tensor._make(out, (x,), backward)

"""Neural-network layers and the :class:`Module` container abstraction.

The layer set intentionally covers exactly what the MARS baseline CNN and the
FUSE model need (Conv2d, ReLU, Flatten, Linear) plus the regularization layers
(Dropout, BatchNorm2d) used by the ablation experiments.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from . import init as initializers
from .ops import avg_pool2d, conv2d, max_pool2d
from .tensor import Tensor

__all__ = [
    "Parameter",
    "Module",
    "Linear",
    "Conv2d",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "Flatten",
    "Dropout",
    "BatchNorm2d",
    "MaxPool2d",
    "AvgPool2d",
    "Sequential",
]


class Parameter(Tensor):
    """A tensor that is registered as a learnable parameter of a module."""

    def __init__(self, data, name: Optional[str] = None) -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all neural-network modules.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; those are discovered automatically for parameter iteration,
    state-dict (de)serialization, gradient zeroing and mode switching.
    """

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self._buffers: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self.training = True

    # ------------------------------------------------------------------
    # Attribute registration
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register a non-learnable persistent array (e.g. running statistics)."""
        self._buffers[name] = np.asarray(value, dtype=np.float64)
        object.__setattr__(self, name, self._buffers[name])

    def _set_buffer(self, name: str, value: np.ndarray) -> None:
        self._buffers[name] = np.asarray(value, dtype=np.float64)
        object.__setattr__(self, name, self._buffers[name])

    # ------------------------------------------------------------------
    # Parameter traversal
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(qualified_name, parameter)`` pairs, depth first."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for module_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{module_name}.")

    def parameters(self) -> List[Parameter]:
        """Return all parameters as a flat list (stable ordering)."""
        return [param for _, param in self.named_parameters()]

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        """Yield ``(qualified_name, buffer)`` pairs, depth first."""
        for name, buffer in self._buffers.items():
            yield (f"{prefix}{name}", buffer)
        for module_name, module in self._modules.items():
            yield from module.named_buffers(prefix=f"{prefix}{module_name}.")

    def modules(self) -> Iterator["Module"]:
        """Yield this module and all descendants."""
        yield self
        for module in self._modules.values():
            yield from module.modules()

    def num_parameters(self) -> int:
        """Total number of learnable scalar parameters."""
        return sum(param.size for param in self.parameters())

    def zero_grad(self) -> None:
        """Clear gradient buffers of every parameter."""
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------
    # Train / eval mode
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        """Switch the module (and children) between train and eval behaviour."""
        self.training = mode
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        """Shortcut for ``train(False)``."""
        return self.train(False)

    # ------------------------------------------------------------------
    # State management
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Return a copy of all parameters and buffers keyed by name."""
        state = {name: param.data.copy() for name, param in self.named_parameters()}
        for name, buffer in self.named_buffers():
            state[f"{name}__buffer"] = buffer.copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameters and buffers previously produced by :meth:`state_dict`."""
        params = dict(self.named_parameters())
        missing = [name for name in params if name not in state]
        if missing:
            raise KeyError(f"state dict is missing parameters: {missing}")
        for name, param in params.items():
            value = np.asarray(state[name])
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for '{name}': expected {param.data.shape}, "
                    f"got {value.shape}"
                )
            param.data = value.astype(param.data.dtype).copy()
        buffer_owners = self._buffer_owners()
        for name, (owner, local_name) in buffer_owners.items():
            key = f"{name}__buffer"
            if key in state:
                owner._set_buffer(local_name, np.asarray(state[key]).copy())

    def _buffer_owners(self, prefix: str = "") -> Dict[str, Tuple["Module", str]]:
        owners: Dict[str, Tuple[Module, str]] = {}
        for name in self._buffers:
            owners[f"{prefix}{name}"] = (self, name)
        for module_name, module in self._modules.items():
            owners.update(module._buffer_owners(prefix=f"{prefix}{module_name}."))
        return owners

    def clone(self) -> "Module":
        """Return a functionally identical copy with independent parameters.

        Used by the meta-learning inner loop, which adapts a clone of the
        meta-model without touching the meta-parameters.
        """
        import copy

        duplicate = copy.deepcopy(self)
        duplicate.zero_grad()
        return duplicate

    # ------------------------------------------------------------------
    # Forward
    # ------------------------------------------------------------------
    def forward(self, x: Tensor) -> Tensor:  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, x: Tensor) -> Tensor:
        if not isinstance(x, Tensor):
            x = Tensor(x)
        return self.forward(x)

    def __repr__(self) -> str:
        children = ", ".join(f"{k}={v!r}" for k, v in self._modules.items())
        return f"{type(self).__name__}({children})"


class Linear(Module):
    """Fully connected layer ``y = x W^T + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("Linear features must be positive integers")
        rng = rng if rng is not None else np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            initializers.kaiming_uniform((out_features, in_features), rng), name="weight"
        )
        self.bias = Parameter(np.zeros(out_features), name="bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.in_features:
            raise ValueError(
                f"Linear expected input with {self.in_features} features, "
                f"got shape {x.shape}"
            )
        out = x.matmul(self.weight.T)
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return f"Linear(in={self.in_features}, out={self.out_features})"


class Conv2d(Module):
    """2-D convolution layer over ``(batch, channels, height, width)`` inputs."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int | Tuple[int, int],
        stride: int | Tuple[int, int] = 1,
        padding: int | Tuple[int, int] = 0,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if in_channels <= 0 or out_channels <= 0:
            raise ValueError("Conv2d channel counts must be positive")
        rng = rng if rng is not None else np.random.default_rng()
        kh, kw = (kernel_size, kernel_size) if isinstance(kernel_size, int) else kernel_size
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = (kh, kw)
        self.stride = stride
        self.padding = padding
        self.weight = Parameter(
            initializers.kaiming_uniform((out_channels, in_channels, kh, kw), rng),
            name="weight",
        )
        self.bias = Parameter(np.zeros(out_channels), name="bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return conv2d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)

    def __repr__(self) -> str:
        return (
            f"Conv2d(in={self.in_channels}, out={self.out_channels}, "
            f"kernel={self.kernel_size}, stride={self.stride}, padding={self.padding})"
        )


class ReLU(Module):
    """Rectified linear activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()

    def __repr__(self) -> str:
        return "ReLU()"


class Tanh(Module):
    """Hyperbolic tangent activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()

    def __repr__(self) -> str:
        return "Tanh()"


class Sigmoid(Module):
    """Logistic sigmoid activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()

    def __repr__(self) -> str:
        return "Sigmoid()"


class Flatten(Module):
    """Flatten all dimensions except the batch dimension."""

    def forward(self, x: Tensor) -> Tensor:
        return x.flatten(start_dim=1)

    def __repr__(self) -> str:
        return "Flatten()"


class Dropout(Module):
    """Inverted dropout; active only in training mode."""

    def __init__(self, p: float = 0.5, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = rng if rng is not None else np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self._rng.random(x.shape) < keep).astype(x.dtype) / keep
        return x * Tensor(mask)

    def __repr__(self) -> str:
        return f"Dropout(p={self.p})"


class BatchNorm2d(Module):
    """Batch normalization over the channel dimension of 4-D inputs."""

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1) -> None:
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(np.ones(num_features), name="weight")
        self.bias = Parameter(np.zeros(num_features), name="bias")
        self.register_buffer("running_mean", np.zeros(num_features))
        self.register_buffer("running_var", np.ones(num_features))

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4 or x.shape[1] != self.num_features:
            raise ValueError(
                f"BatchNorm2d expected (N, {self.num_features}, H, W) input, got {x.shape}"
            )
        if self.training:
            mean = x.mean(axis=(0, 2, 3), keepdims=True)
            var = x.var(axis=(0, 2, 3), keepdims=True)
            self._set_buffer(
                "running_mean",
                (1 - self.momentum) * self.running_mean
                + self.momentum * mean.data.reshape(-1),
            )
            self._set_buffer(
                "running_var",
                (1 - self.momentum) * self.running_var
                + self.momentum * var.data.reshape(-1),
            )
        else:
            mean = Tensor(self.running_mean.reshape(1, -1, 1, 1))
            var = Tensor(self.running_var.reshape(1, -1, 1, 1))
        normalized = (x - mean) / ((var + self.eps) ** 0.5)
        weight = self.weight.reshape(1, self.num_features, 1, 1)
        bias = self.bias.reshape(1, self.num_features, 1, 1)
        return normalized * weight + bias

    def __repr__(self) -> str:
        return f"BatchNorm2d({self.num_features})"


class MaxPool2d(Module):
    """Max pooling layer."""

    def __init__(self, kernel_size: int, stride: Optional[int] = None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride

    def forward(self, x: Tensor) -> Tensor:
        return max_pool2d(x, self.kernel_size, self.stride)

    def __repr__(self) -> str:
        return f"MaxPool2d(kernel={self.kernel_size}, stride={self.stride})"


class AvgPool2d(Module):
    """Average pooling layer."""

    def __init__(self, kernel_size: int, stride: Optional[int] = None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride

    def forward(self, x: Tensor) -> Tensor:
        return avg_pool2d(x, self.kernel_size, self.stride)

    def __repr__(self) -> str:
        return f"AvgPool2d(kernel={self.kernel_size}, stride={self.stride})"


class Sequential(Module):
    """Run child modules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._order: List[str] = []
        for index, module in enumerate(modules):
            name = f"layer{index}"
            setattr(self, name, module)
            self._order.append(name)

    def __iter__(self) -> Iterator[Module]:
        for name in self._order:
            yield self._modules[name]

    def __getitem__(self, index: int) -> Module:
        return self._modules[self._order[index]]

    def __len__(self) -> int:
        return len(self._order)

    def append(self, module: Module) -> "Sequential":
        """Add a module to the end of the pipeline."""
        name = f"layer{len(self._order)}"
        setattr(self, name, module)
        self._order.append(name)
        return self

    def forward(self, x: Tensor) -> Tensor:
        for module in self:
            x = module(x)
        return x

    def __repr__(self) -> str:
        inner = ", ".join(repr(m) for m in self)
        return f"Sequential({inner})"

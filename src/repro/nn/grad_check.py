"""Finite-difference gradient checking utilities.

These helpers back the autograd test suite: every backward rule in
``repro.nn`` is validated by comparing analytic gradients against central
finite differences.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor

__all__ = ["numerical_gradient", "check_gradients", "max_relative_error"]


def numerical_gradient(
    func: Callable[[Sequence[Tensor]], Tensor],
    inputs: Sequence[Tensor],
    index: int,
    epsilon: float = 1e-6,
) -> np.ndarray:
    """Central finite-difference gradient of ``func`` w.r.t. ``inputs[index]``.

    ``func`` must return a scalar tensor.
    """
    target = inputs[index]
    gradient = np.zeros_like(target.data)
    flat = target.data.reshape(-1)
    grad_flat = gradient.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + epsilon
        plus = func(inputs).item()
        flat[i] = original - epsilon
        minus = func(inputs).item()
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * epsilon)
    return gradient


def max_relative_error(analytic: np.ndarray, numeric: np.ndarray) -> float:
    """Maximum elementwise relative error between two gradient arrays."""
    denominator = np.maximum(np.abs(analytic) + np.abs(numeric), 1e-8)
    return float(np.max(np.abs(analytic - numeric) / denominator))


def check_gradients(
    func: Callable[[Sequence[Tensor]], Tensor],
    inputs: Sequence[Tensor],
    tolerance: float = 1e-5,
    epsilon: float = 1e-6,
) -> float:
    """Assert that analytic and numerical gradients agree for every input.

    Returns the worst relative error observed (useful for reporting).
    """
    for tensor in inputs:
        tensor.zero_grad()
    output = func(inputs)
    output.backward()
    worst = 0.0
    for index, tensor in enumerate(inputs):
        if not tensor.requires_grad:
            continue
        analytic = tensor.grad if tensor.grad is not None else np.zeros_like(tensor.data)
        numeric = numerical_gradient(func, inputs, index, epsilon=epsilon)
        error = max_relative_error(analytic, numeric)
        worst = max(worst, error)
        if error > tolerance:
            raise AssertionError(
                f"gradient check failed for input {index}: relative error {error:.3e} "
                f"exceeds tolerance {tolerance:.1e}"
            )
    return worst

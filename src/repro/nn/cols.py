"""im2col/col2im lowering shared by the conv ops and every kernel backend.

These are the pure array-rearrangement primitives of the convolution path:
no arithmetic policy lives here, only the patch lowering.  They sit in their
own leaf module (rather than :mod:`repro.nn.ops`) so the kernel backends in
:mod:`repro.nn.backend` can import them without a cycle — ``ops`` dispatches
into ``backend``, and ``backend`` lowers with ``cols``.
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

__all__ = ["IntPair", "conv_output_shape", "im2col", "col2im"]

IntPair = Union[int, Tuple[int, int]]


def _as_pair(value: IntPair) -> Tuple[int, int]:
    if isinstance(value, tuple):
        if len(value) != 2:
            raise ValueError(f"expected a pair, got {value!r}")
        return int(value[0]), int(value[1])
    return int(value), int(value)


def conv_output_shape(
    height: int, width: int, kernel_size: IntPair, stride: IntPair, padding: IntPair
) -> Tuple[int, int]:
    """Spatial output shape of a 2-D convolution/pooling operation."""
    kh, kw = _as_pair(kernel_size)
    sh, sw = _as_pair(stride)
    ph, pw = _as_pair(padding)
    out_h = (height + 2 * ph - kh) // sh + 1
    out_w = (width + 2 * pw - kw) // sw + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            f"convolution output would be empty for input {(height, width)}, "
            f"kernel {kernel_size}, stride {stride}, padding {padding}"
        )
    return out_h, out_w


def im2col(
    x: np.ndarray, kernel_size: IntPair, stride: IntPair = 1, padding: IntPair = 0
) -> np.ndarray:
    """Rearrange image patches into columns.

    Parameters
    ----------
    x:
        Input of shape ``(batch, channels, height, width)``.

    Returns
    -------
    Array of shape ``(batch, out_h, out_w, channels * kh * kw)``.
    """
    kh, kw = _as_pair(kernel_size)
    sh, sw = _as_pair(stride)
    ph, pw = _as_pair(padding)
    batch, channels, height, width = x.shape
    out_h, out_w = conv_output_shape(height, width, (kh, kw), (sh, sw), (ph, pw))

    padded = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    strides = padded.strides
    window_view = np.lib.stride_tricks.as_strided(
        padded,
        shape=(batch, channels, out_h, out_w, kh, kw),
        strides=(
            strides[0],
            strides[1],
            strides[2] * sh,
            strides[3] * sw,
            strides[2],
            strides[3],
        ),
        writeable=False,
    )
    # (batch, out_h, out_w, channels, kh, kw) -> flatten the patch dims.
    cols = window_view.transpose(0, 2, 3, 1, 4, 5).reshape(
        batch, out_h, out_w, channels * kh * kw
    )
    return np.ascontiguousarray(cols)


def col2im(
    cols: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    kernel_size: IntPair,
    stride: IntPair = 1,
    padding: IntPair = 0,
) -> np.ndarray:
    """Inverse of :func:`im2col`: scatter-add columns back into an image."""
    kh, kw = _as_pair(kernel_size)
    sh, sw = _as_pair(stride)
    ph, pw = _as_pair(padding)
    batch, channels, height, width = input_shape
    out_h, out_w = conv_output_shape(height, width, (kh, kw), (sh, sw), (ph, pw))

    cols = cols.reshape(batch, out_h, out_w, channels, kh, kw)
    padded = np.zeros((batch, channels, height + 2 * ph, width + 2 * pw), dtype=cols.dtype)
    for i in range(kh):
        for j in range(kw):
            padded[:, :, i : i + sh * out_h : sh, j : j + sw * out_w : sw] += cols[
                :, :, :, :, i, j
            ].transpose(0, 3, 1, 2)
    if ph == 0 and pw == 0:
        return padded
    return padded[:, :, ph : ph + height, pw : pw + width]

"""Functional interface: activations and loss functions.

The FUSE paper trains with the mean absolute error (L1) between predicted and
ground-truth joint coordinates (Section 3.1.2); :func:`l1_loss` is therefore
the primary loss in this repository.  L2 and Huber losses are provided because
the paper explicitly notes "other functions such as L2 can also be used".
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor

__all__ = [
    "relu",
    "sigmoid",
    "tanh",
    "softmax",
    "log_softmax",
    "l1_loss",
    "l2_loss",
    "mse_loss",
    "huber_loss",
    "cross_entropy_loss",
]


def _as_tensor(value) -> Tensor:
    return value if isinstance(value, Tensor) else Tensor(value)


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit."""
    return _as_tensor(x).relu()


def sigmoid(x: Tensor) -> Tensor:
    """Logistic sigmoid."""
    return _as_tensor(x).sigmoid()


def tanh(x: Tensor) -> Tensor:
    """Hyperbolic tangent."""
    return _as_tensor(x).tanh()


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    x = _as_tensor(x)
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    x = _as_tensor(x)
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def l1_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean absolute error — the loss used throughout the FUSE paper."""
    prediction, target = _as_tensor(prediction), _as_tensor(target)
    if prediction.shape != target.shape:
        raise ValueError(
            f"shape mismatch between prediction {prediction.shape} and target {target.shape}"
        )
    return (prediction - target).abs().mean()


def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean squared error."""
    prediction, target = _as_tensor(prediction), _as_tensor(target)
    if prediction.shape != target.shape:
        raise ValueError(
            f"shape mismatch between prediction {prediction.shape} and target {target.shape}"
        )
    diff = prediction - target
    return (diff * diff).mean()


def l2_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Alias for :func:`mse_loss` matching the paper's terminology."""
    return mse_loss(prediction, target)


def huber_loss(prediction: Tensor, target: Tensor, delta: float = 1.0) -> Tensor:
    """Huber (smooth L1) loss.

    Quadratic for residuals smaller than ``delta`` and linear beyond, making
    training robust to the occasional wildly wrong point-cloud frame.
    """
    prediction, target = _as_tensor(prediction), _as_tensor(target)
    residual = prediction - target
    abs_residual = residual.abs()
    quadratic = abs_residual.clip(0.0, delta)
    linear = abs_residual - quadratic
    return (quadratic * quadratic * 0.5 + linear * delta).mean()


def cross_entropy_loss(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Cross-entropy over integer class labels.

    Not used by the pose-regression pipeline, but required by the activity-
    classification example that demonstrates reuse of the radar substrate.
    """
    logits = _as_tensor(logits)
    labels = np.asarray(labels, dtype=np.int64)
    if logits.ndim != 2:
        raise ValueError(f"cross_entropy_loss expects 2-D logits, got {logits.shape}")
    if labels.shape != (logits.shape[0],):
        raise ValueError(
            f"labels shape {labels.shape} does not match batch size {logits.shape[0]}"
        )
    log_probs = log_softmax(logits, axis=-1)
    picked = log_probs[np.arange(logits.shape[0]), labels]
    return -picked.mean()

"""Functional interface: activations and loss functions.

The FUSE paper trains with the mean absolute error (L1) between predicted and
ground-truth joint coordinates (Section 3.1.2); :func:`l1_loss` is therefore
the primary loss in this repository.  L2 and Huber losses are provided because
the paper explicitly notes "other functions such as L2 can also be used".
"""

from __future__ import annotations

import numpy as np

from . import backend as _backend
from .tensor import Tensor

__all__ = [
    "relu",
    "sigmoid",
    "tanh",
    "softmax",
    "log_softmax",
    "linear_batched",
    "linear_lowrank_batched",
    "l1_loss",
    "l2_loss",
    "mse_loss",
    "huber_loss",
    "cross_entropy_loss",
    "per_task_loss",
]


def _as_tensor(value) -> Tensor:
    return value if isinstance(value, Tensor) else Tensor(value)


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit."""
    return _as_tensor(x).relu()


def sigmoid(x: Tensor) -> Tensor:
    """Logistic sigmoid."""
    return _as_tensor(x).sigmoid()


def tanh(x: Tensor) -> Tensor:
    """Hyperbolic tangent."""
    return _as_tensor(x).tanh()


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    x = _as_tensor(x)
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    x = _as_tensor(x)
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def linear_batched(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """Fully connected layer with an independent weight matrix per task.

    Implemented as one fused autograd op (rather than composing transpose,
    matmul and broadcast-add nodes) so that every gradient array is produced
    contiguous by a single batched BLAS call — the difference is significant
    for the large per-task FC weight tensors of the meta-learning inner loop.

    Parameters
    ----------
    x:
        Input of shape ``(tasks, batch, in_features)``.
    weight:
        Weights of shape ``(tasks, out_features, in_features)`` (the same
        per-matrix layout as :class:`repro.nn.Linear`).
    bias:
        Optional bias of shape ``(tasks, out_features)``.

    Returns
    -------
    Tensor of shape ``(tasks, batch, out_features)``; task ``t`` of the
    output equals ``x[t] @ weight[t].T + bias[t]``.
    """
    x = _as_tensor(x)
    weight = _as_tensor(weight)
    if x.ndim != 3 or weight.ndim != 3:
        raise ValueError(
            f"linear_batched expects (T, B, I) inputs and (T, O, I) weights, "
            f"got {x.shape} and {weight.shape}"
        )
    if x.shape[0] != weight.shape[0] or x.shape[2] != weight.shape[2]:
        raise ValueError(
            f"incompatible shapes for linear_batched: {x.shape} and {weight.shape}"
        )
    if bias is not None:
        bias = _as_tensor(bias)
        if bias.shape != (weight.shape[0], weight.shape[1]):
            raise ValueError(
                f"bias must have shape {(weight.shape[0], weight.shape[1])}, got {bias.shape}"
            )

    kernel = _backend.active_for("linear_batched")
    out, ctx = kernel.linear_batched_forward(
        x.data, weight.data, None if bias is None else bias.data
    )

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad: np.ndarray) -> None:
        grad_x, grad_weight, grad_bias = kernel.linear_batched_backward(
            ctx,
            grad,
            (
                x.requires_grad,
                weight.requires_grad,
                bias is not None and bias.requires_grad,
            ),
        )
        if grad_x is not None:
            x._accumulate_owned(grad_x)
        if grad_weight is not None:
            weight._accumulate_owned(grad_weight)
        if grad_bias is not None:
            bias._accumulate_owned(grad_bias)

    return Tensor._make(out, parents, backward)


def linear_lowrank_batched(
    x: Tensor,
    weight: Tensor,
    a: Tensor,
    b: Tensor,
    bias: Tensor | None = None,
) -> Tensor:
    """Fully connected layer with a *shared* base and per-task rank-r deltas.

    Task ``t`` of the output equals ``x[t] @ (weight + b[t] @ a[t]).T +
    bias`` — but the dense ``(out, in)`` delta is never materialized: the
    low-rank factors are applied as two small matrix products per task,
    ``(x[t] @ a[t].T) @ b[t].T``.  That is the arithmetic that makes
    full-network per-user personalization cost ``O(r * (in + out))`` memory
    per task instead of ``O(in * out)``.

    Gradients flow to ``a`` and ``b`` (and through ``x``); the base
    ``weight`` / ``bias`` are typically frozen snapshots (``requires_grad``
    False), so adaptation trains only the rank-r factors.

    Parameters
    ----------
    x:
        Input of shape ``(tasks, batch, in_features)``.
    weight:
        Shared base weights of shape ``(out_features, in_features)`` — no
        task axis; every task reads the same matrix.
    a:
        Down-projection factors of shape ``(tasks, rank, in_features)``.
    b:
        Up-projection factors of shape ``(tasks, out_features, rank)``.
    bias:
        Optional shared base bias of shape ``(out_features,)``.

    Returns
    -------
    Tensor of shape ``(tasks, batch, out_features)``.
    """
    x, weight, a, b = _as_tensor(x), _as_tensor(weight), _as_tensor(a), _as_tensor(b)
    if x.ndim != 3 or weight.ndim != 2 or a.ndim != 3 or b.ndim != 3:
        raise ValueError(
            "linear_lowrank_batched expects (T, B, I) inputs, (O, I) base "
            f"weights, (T, r, I) and (T, O, r) factors, got {x.shape}, "
            f"{weight.shape}, {a.shape}, {b.shape}"
        )
    tasks, _, in_features = x.shape
    out_features = weight.shape[0]
    if weight.shape[1] != in_features:
        raise ValueError(
            f"base weight {weight.shape} does not match input width {in_features}"
        )
    rank = a.shape[1]
    if a.shape != (tasks, rank, in_features):
        raise ValueError(f"a must have shape {(tasks, rank, in_features)}, got {a.shape}")
    if b.shape != (tasks, out_features, rank):
        raise ValueError(f"b must have shape {(tasks, out_features, rank)}, got {b.shape}")
    if bias is not None:
        bias = _as_tensor(bias)
        if bias.shape != (out_features,):
            raise ValueError(f"bias must have shape {(out_features,)}, got {bias.shape}")

    kernel = _backend.active_for("linear_lowrank_batched")
    out, ctx = kernel.linear_lowrank_forward(
        x.data, weight.data, a.data, b.data, None if bias is None else bias.data
    )

    parents = (x, weight, a, b) if bias is None else (x, weight, a, b, bias)

    def backward(grad: np.ndarray) -> None:
        grad_x, grad_weight, grad_a, grad_b, grad_bias = kernel.linear_lowrank_backward(
            ctx,
            grad,
            (
                x.requires_grad,
                weight.requires_grad,
                a.requires_grad,
                b.requires_grad,
                bias is not None and bias.requires_grad,
            ),
        )
        if grad_b is not None:
            b._accumulate_owned(grad_b)
        if grad_a is not None:
            a._accumulate_owned(grad_a)
        if grad_x is not None:
            x._accumulate_owned(grad_x)
        if grad_weight is not None:
            weight._accumulate(grad_weight)
        if grad_bias is not None:
            bias._accumulate(grad_bias)

    return Tensor._make(out, parents, backward)


def per_task_loss(prediction: Tensor, target: Tensor, loss: str = "l1", delta: float = 1.0) -> Tensor:
    """Per-task losses for ``(tasks, batch, features)`` tensors.

    Returns a ``(tasks,)`` tensor whose entry ``t`` equals the scalar loss of
    task ``t`` computed over its own batch.  Because the tasks are
    independent, backpropagating ``per_task_loss(...).sum()`` through
    per-task parameters yields exactly each task's own gradient — the
    property the task-batched meta-learning inner loop relies on.
    """
    prediction, target = _as_tensor(prediction), _as_tensor(target)
    if prediction.shape != target.shape:
        raise ValueError(
            f"shape mismatch between prediction {prediction.shape} and target {target.shape}"
        )
    if prediction.ndim != 3:
        raise ValueError(f"per_task_loss expects (T, B, F) tensors, got {prediction.shape}")
    residual = prediction - target
    if loss == "l1":
        return residual.abs().mean(axis=(1, 2))
    if loss in ("l2", "mse"):
        return (residual * residual).mean(axis=(1, 2))
    if loss == "huber":
        abs_residual = residual.abs()
        quadratic = abs_residual.clip(0.0, delta)
        linear = abs_residual - quadratic
        return (quadratic * quadratic * 0.5 + linear * delta).mean(axis=(1, 2))
    raise ValueError(f"unknown loss '{loss}'")


def l1_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean absolute error — the loss used throughout the FUSE paper."""
    prediction, target = _as_tensor(prediction), _as_tensor(target)
    if prediction.shape != target.shape:
        raise ValueError(
            f"shape mismatch between prediction {prediction.shape} and target {target.shape}"
        )
    return (prediction - target).abs().mean()


def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean squared error."""
    prediction, target = _as_tensor(prediction), _as_tensor(target)
    if prediction.shape != target.shape:
        raise ValueError(
            f"shape mismatch between prediction {prediction.shape} and target {target.shape}"
        )
    diff = prediction - target
    return (diff * diff).mean()


def l2_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Alias for :func:`mse_loss` matching the paper's terminology."""
    return mse_loss(prediction, target)


def huber_loss(prediction: Tensor, target: Tensor, delta: float = 1.0) -> Tensor:
    """Huber (smooth L1) loss.

    Quadratic for residuals smaller than ``delta`` and linear beyond, making
    training robust to the occasional wildly wrong point-cloud frame.
    """
    prediction, target = _as_tensor(prediction), _as_tensor(target)
    residual = prediction - target
    abs_residual = residual.abs()
    quadratic = abs_residual.clip(0.0, delta)
    linear = abs_residual - quadratic
    return (quadratic * quadratic * 0.5 + linear * delta).mean()


def cross_entropy_loss(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Cross-entropy over integer class labels.

    Not used by the pose-regression pipeline, but required by the activity-
    classification example that demonstrates reuse of the radar substrate.
    """
    logits = _as_tensor(logits)
    labels = np.asarray(labels, dtype=np.int64)
    if logits.ndim != 2:
        raise ValueError(f"cross_entropy_loss expects 2-D logits, got {logits.shape}")
    if labels.shape != (logits.shape[0],):
        raise ValueError(
            f"labels shape {labels.shape} does not match batch size {logits.shape[0]}"
        )
    log_probs = log_softmax(logits, axis=-1)
    picked = log_probs[np.arange(logits.shape[0]), labels]
    return -picked.mean()

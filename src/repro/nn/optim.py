"""Gradient-based optimizers.

The FUSE paper uses Adam for both supervised training and meta-training
(Section 4.1).  Plain SGD is also provided because the MAML inner loop
(Algorithm 1, line 7) is a single vanilla gradient step with the
sample-level learning rate ``alpha``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from .layers import Parameter

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base class holding a parameter list and a learning rate."""

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        """Clear the gradient buffers of all managed parameters."""
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def state_dict(self) -> Dict:
        """Serializable snapshot of optimizer hyper-parameters and state."""
        return {"lr": self.lr}

    def load_state_dict(self, state: Dict) -> None:
        self.lr = float(state["lr"])


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        """Apply one SGD update to every parameter with a gradient."""
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                update = velocity
            else:
                update = grad
            param.data = param.data - self.lr * update

    def state_dict(self) -> Dict:
        state = super().state_dict()
        state.update(
            momentum=self.momentum,
            weight_decay=self.weight_decay,
            velocity=[v.copy() for v in self._velocity],
        )
        return state

    def load_state_dict(self, state: Dict) -> None:
        super().load_state_dict(state)
        self.momentum = float(state["momentum"])
        self.weight_decay = float(state["weight_decay"])
        self._velocity = [np.asarray(v).copy() for v in state["velocity"]]


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015) — the paper's optimizer of choice."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.001,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.betas = (beta1, beta2)
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        """Apply one Adam update to every parameter with a gradient."""
        self._step += 1
        beta1, beta2 = self.betas
        bias_correction1 = 1.0 - beta1 ** self._step
        bias_correction2 = 1.0 - beta2 ** self._step
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= beta1
            m += (1.0 - beta1) * grad
            v *= beta2
            v += (1.0 - beta2) * grad * grad
            m_hat = m / bias_correction1
            v_hat = v / bias_correction2
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self) -> Dict:
        state = super().state_dict()
        state.update(
            betas=self.betas,
            eps=self.eps,
            weight_decay=self.weight_decay,
            step=self._step,
            m=[m.copy() for m in self._m],
            v=[v.copy() for v in self._v],
        )
        return state

    def load_state_dict(self, state: Dict) -> None:
        super().load_state_dict(state)
        self.betas = tuple(state["betas"])
        self.eps = float(state["eps"])
        self.weight_decay = float(state["weight_decay"])
        self._step = int(state["step"])
        self._m = [np.asarray(m).copy() for m in state["m"]]
        self._v = [np.asarray(v).copy() for v in state["v"]]

"""``repro.nn`` — a compact NumPy neural-network substrate.

This package stands in for PyTorch in the FUSE reproduction: it provides
reverse-mode automatic differentiation (:mod:`repro.nn.tensor`), the layers
needed by the MARS baseline CNN and the FUSE model (:mod:`repro.nn.layers`),
the losses and optimizers used in the paper (:mod:`repro.nn.functional`,
:mod:`repro.nn.optim`) and checkpoint serialization.

The arithmetic of the batched hot-path ops executes through a pluggable
kernel backend selected via :mod:`repro.nn.backend` (registry, ``use_backend``
context manager and the ``REPRO_KERNEL_BACKEND`` environment variable); the
default ``reference`` backend is the original serial numpy code.
"""

from . import backend
from .backend import use_backend
from .functional import (
    cross_entropy_loss,
    linear_batched,
    linear_lowrank_batched,
    per_task_loss,
    huber_loss,
    l1_loss,
    l2_loss,
    log_softmax,
    mse_loss,
    relu,
    sigmoid,
    softmax,
    tanh,
)
from .grad_check import check_gradients, max_relative_error, numerical_gradient
from .layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    Linear,
    MaxPool2d,
    Module,
    Parameter,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)
from .ops import (
    avg_pool2d,
    col2im,
    conv2d,
    conv2d_batched,
    conv2d_lowrank_batched,
    im2col,
    max_pool2d,
)
from .optim import SGD, Adam, Optimizer
from .serialization import load_model_into, load_state, save_model, save_state
from .tensor import Tensor, is_grad_enabled, no_grad

__all__ = [
    # kernel backends
    "backend",
    "use_backend",
    # tensor
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    # ops
    "conv2d",
    "conv2d_batched",
    "conv2d_lowrank_batched",
    "max_pool2d",
    "avg_pool2d",
    "im2col",
    "col2im",
    # layers
    "Module",
    "Parameter",
    "Linear",
    "Conv2d",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "Flatten",
    "Dropout",
    "BatchNorm2d",
    "MaxPool2d",
    "AvgPool2d",
    "Sequential",
    # functional
    "relu",
    "sigmoid",
    "tanh",
    "softmax",
    "log_softmax",
    "l1_loss",
    "l2_loss",
    "mse_loss",
    "huber_loss",
    "cross_entropy_loss",
    "linear_batched",
    "linear_lowrank_batched",
    "per_task_loss",
    # optim
    "Optimizer",
    "SGD",
    "Adam",
    # serialization
    "save_model",
    "save_state",
    "load_state",
    "load_model_into",
    # grad check
    "check_gradients",
    "numerical_gradient",
    "max_relative_error",
]

"""The 19-joint human skeleton used by MARS/FUSE.

The MARS dataset labels each mmWave frame with the 3-D coordinates of 19
joints tracked by a Microsoft Kinect V2 (the Kinect's 25-joint skeleton minus
hands, hand tips and thumbs).  This module defines that topology — joint
names, the parent of each joint, and the skeleton's bone segments — together
with a :class:`Skeleton` class that derives neutral-pose joint offsets from a
subject's anthropometric measurements.

Coordinate convention (matching the TI radar frame used throughout the repo):

* ``x`` — lateral (positive to the radar's right),
* ``y`` — depth (positive away from the radar),
* ``z`` — height above the floor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

__all__ = [
    "JOINT_NAMES",
    "JOINT_INDEX",
    "JOINT_PARENTS",
    "SKELETON_EDGES",
    "NUM_JOINTS",
    "Skeleton",
]

#: Ordered list of the 19 MARS joints.  The order defines the layout of the
#: 57-dimensional label vector (19 joints x 3 coordinates).
JOINT_NAMES: Tuple[str, ...] = (
    "spine_base",
    "spine_mid",
    "spine_shoulder",
    "neck",
    "head",
    "shoulder_left",
    "elbow_left",
    "wrist_left",
    "shoulder_right",
    "elbow_right",
    "wrist_right",
    "hip_left",
    "knee_left",
    "ankle_left",
    "foot_left",
    "hip_right",
    "knee_right",
    "ankle_right",
    "foot_right",
)

NUM_JOINTS: int = len(JOINT_NAMES)

#: Mapping from joint name to its index in :data:`JOINT_NAMES`.
JOINT_INDEX: Dict[str, int] = {name: index for index, name in enumerate(JOINT_NAMES)}

#: Parent of each joint in the kinematic tree (root maps to itself).
JOINT_PARENTS: Dict[str, str] = {
    "spine_base": "spine_base",
    "spine_mid": "spine_base",
    "spine_shoulder": "spine_mid",
    "neck": "spine_shoulder",
    "head": "neck",
    "shoulder_left": "spine_shoulder",
    "elbow_left": "shoulder_left",
    "wrist_left": "elbow_left",
    "shoulder_right": "spine_shoulder",
    "elbow_right": "shoulder_right",
    "wrist_right": "elbow_right",
    "hip_left": "spine_base",
    "knee_left": "hip_left",
    "ankle_left": "knee_left",
    "foot_left": "ankle_left",
    "hip_right": "spine_base",
    "knee_right": "hip_right",
    "ankle_right": "knee_right",
    "foot_right": "ankle_right",
}

#: Bone segments as ``(parent, child)`` joint-name pairs (18 bones).
SKELETON_EDGES: Tuple[Tuple[str, str], ...] = tuple(
    (parent, child) for child, parent in JOINT_PARENTS.items() if parent != child
)


@dataclass
class Skeleton:
    """A subject-specific skeleton with neutral-pose bone offsets.

    Parameters
    ----------
    height:
        Standing height of the subject in metres.
    shoulder_width:
        Distance between the two shoulder joints in metres.
    hip_width:
        Distance between the two hip joints in metres.

    The remaining proportions follow standard anthropometric ratios relative
    to ``height`` and can be overridden through ``segment_scale``.
    """

    height: float = 1.75
    shoulder_width: float = 0.38
    hip_width: float = 0.26
    segment_scale: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.height <= 0:
            raise ValueError(f"height must be positive, got {self.height}")
        if self.shoulder_width <= 0 or self.hip_width <= 0:
            raise ValueError("shoulder_width and hip_width must be positive")

    # ------------------------------------------------------------------
    # Anthropometric proportions
    # ------------------------------------------------------------------
    def _scale(self, name: str, default: float) -> float:
        return self.segment_scale.get(name, default) * self.height

    @property
    def hip_height(self) -> float:
        """Height of the spine base (pelvis) above the floor in neutral pose."""
        return self._scale("hip_height", 0.52)

    @property
    def upper_arm_length(self) -> float:
        return self._scale("upper_arm", 0.172)

    @property
    def forearm_length(self) -> float:
        return self._scale("forearm", 0.157)

    @property
    def thigh_length(self) -> float:
        return self._scale("thigh", 0.245)

    @property
    def shin_length(self) -> float:
        return self._scale("shin", 0.246)

    @property
    def foot_length(self) -> float:
        return self._scale("foot", 0.08)

    @property
    def spine_mid_rise(self) -> float:
        """Vertical offset from spine base to spine mid."""
        return self._scale("spine_mid", 0.12)

    @property
    def spine_shoulder_rise(self) -> float:
        """Vertical offset from spine mid to spine shoulder."""
        return self._scale("spine_shoulder", 0.16)

    @property
    def neck_rise(self) -> float:
        return self._scale("neck", 0.045)

    @property
    def head_rise(self) -> float:
        return self._scale("head", 0.09)

    # ------------------------------------------------------------------
    # Neutral pose
    # ------------------------------------------------------------------
    def neutral_offsets(self) -> Dict[str, np.ndarray]:
        """Offset of each joint from its parent in the neutral standing pose.

        The neutral pose is standing upright facing the radar, arms hanging
        at the sides.  Offsets are expressed in the world axes (x lateral,
        y depth, z up) because the neutral pose carries no rotation.
        """
        up = np.array([0.0, 0.0, 1.0])
        down = -up
        left = np.array([-1.0, 0.0, 0.0])
        right = np.array([1.0, 0.0, 0.0])
        forward = np.array([0.0, -1.0, 0.0])  # toward the radar

        offsets: Dict[str, np.ndarray] = {
            "spine_base": np.zeros(3),
            "spine_mid": up * self.spine_mid_rise,
            "spine_shoulder": up * self.spine_shoulder_rise,
            "neck": up * self.neck_rise,
            "head": up * self.head_rise,
            "shoulder_left": left * (self.shoulder_width / 2.0),
            "elbow_left": down * self.upper_arm_length,
            "wrist_left": down * self.forearm_length,
            "shoulder_right": right * (self.shoulder_width / 2.0),
            "elbow_right": down * self.upper_arm_length,
            "wrist_right": down * self.forearm_length,
            "hip_left": left * (self.hip_width / 2.0),
            "knee_left": down * self.thigh_length,
            "ankle_left": down * self.shin_length,
            "foot_left": forward * self.foot_length,
            "hip_right": right * (self.hip_width / 2.0),
            "knee_right": down * self.thigh_length,
            "ankle_right": down * self.shin_length,
            "foot_right": forward * self.foot_length,
        }
        return offsets

    def neutral_joint_positions(
        self, root_position: np.ndarray | None = None
    ) -> np.ndarray:
        """Joint positions of the neutral standing pose.

        Parameters
        ----------
        root_position:
            World position of the spine base.  Defaults to standing on the
            floor (``z = hip_height``) at ``x = 0``, ``y = 0``.

        Returns
        -------
        Array of shape ``(19, 3)`` ordered as :data:`JOINT_NAMES`.
        """
        if root_position is None:
            root_position = np.array([0.0, 0.0, self.hip_height])
        offsets = self.neutral_offsets()
        positions = np.zeros((NUM_JOINTS, 3))
        for index, name in enumerate(JOINT_NAMES):
            parent = JOINT_PARENTS[name]
            if parent == name:
                positions[index] = np.asarray(root_position, dtype=float)
            else:
                positions[index] = positions[JOINT_INDEX[parent]] + offsets[name]
        return positions

    # ------------------------------------------------------------------
    # Utilities
    # ------------------------------------------------------------------
    def bone_lengths(self) -> Dict[Tuple[str, str], float]:
        """Length of every bone segment in the neutral pose."""
        offsets = self.neutral_offsets()
        return {
            (parent, child): float(np.linalg.norm(offsets[child]))
            for parent, child in SKELETON_EDGES
        }

    @staticmethod
    def children_of(joint: str) -> List[str]:
        """Return the immediate children of ``joint`` in the kinematic tree."""
        return [child for child, parent in JOINT_PARENTS.items() if parent == joint and child != joint]

    @staticmethod
    def subtree(joint: str) -> List[str]:
        """Return ``joint`` and all of its descendants (depth-first order)."""
        result: List[str] = []
        stack = [joint]
        while stack:
            current = stack.pop()
            result.append(current)
            stack.extend(Skeleton.children_of(current))
        return result

    @staticmethod
    def validate_positions(positions: np.ndarray) -> None:
        """Raise ``ValueError`` when a joint-position array has the wrong shape."""
        positions = np.asarray(positions)
        if positions.shape != (NUM_JOINTS, 3):
            raise ValueError(
                f"joint positions must have shape ({NUM_JOINTS}, 3), got {positions.shape}"
            )
        if not np.all(np.isfinite(positions)):
            raise ValueError("joint positions contain NaN or infinite values")

"""Forward kinematics for the 19-joint skeleton.

A :class:`Pose` assigns a rotation to any subset of joints; the rotation is
applied to the subtree rooted at that joint, exactly like the joint angles of
an articulated figure.  :func:`forward_kinematics` composes those rotations
down the kinematic tree to produce world-space joint positions.

The module also provides small helpers used by the movement generators:
axis-angle / Euler rotation matrices, ground-contact correction (so that a
squatting skeleton does not hover above the floor) and velocity estimation by
finite differences, which feeds the Doppler channel of the radar simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

import numpy as np

from .skeleton import JOINT_INDEX, JOINT_NAMES, JOINT_PARENTS, NUM_JOINTS, Skeleton

__all__ = [
    "rotation_x",
    "rotation_y",
    "rotation_z",
    "euler_rotation",
    "Pose",
    "forward_kinematics",
    "ground_correction",
    "joint_velocities",
]


def rotation_x(angle: float) -> np.ndarray:
    """Rotation matrix about the x (lateral) axis; positive pitches forward."""
    c, s = np.cos(angle), np.sin(angle)
    return np.array([[1.0, 0.0, 0.0], [0.0, c, -s], [0.0, s, c]])


def rotation_y(angle: float) -> np.ndarray:
    """Rotation matrix about the y (depth) axis; positive rolls to the right."""
    c, s = np.cos(angle), np.sin(angle)
    return np.array([[c, 0.0, s], [0.0, 1.0, 0.0], [-s, 0.0, c]])


def rotation_z(angle: float) -> np.ndarray:
    """Rotation matrix about the z (vertical) axis; positive yaws left."""
    c, s = np.cos(angle), np.sin(angle)
    return np.array([[c, -s, 0.0], [s, c, 0.0], [0.0, 0.0, 1.0]])


def euler_rotation(rx: float = 0.0, ry: float = 0.0, rz: float = 0.0) -> np.ndarray:
    """Composite rotation ``Rz @ Ry @ Rx`` from Euler angles in radians."""
    return rotation_z(rz) @ rotation_y(ry) @ rotation_x(rx)


@dataclass
class Pose:
    """A body pose: per-joint rotations plus a root translation.

    Attributes
    ----------
    rotations:
        Mapping from joint name to a 3x3 rotation matrix applied to the
        subtree rooted at that joint.  Joints not present use the identity.
    root_position:
        Absolute world position of the spine base before ground correction.
        When ``None`` the skeleton's neutral hip height is used.
    root_offset:
        Additional translation applied on top of the (absolute or default)
        root position.  Movement programs use this to express "step forward"
        or "shift sideways" without knowing the subject's hip height.
    """

    rotations: Dict[str, np.ndarray] = field(default_factory=dict)
    root_position: Optional[np.ndarray] = None
    root_offset: np.ndarray = field(default_factory=lambda: np.zeros(3))

    def rotation_for(self, joint: str) -> np.ndarray:
        """Rotation assigned to ``joint`` (identity when unspecified)."""
        return self.rotations.get(joint, np.eye(3))

    def with_rotation(self, joint: str, rotation: np.ndarray) -> "Pose":
        """Return a copy of this pose with ``joint`` set to ``rotation``."""
        if joint not in JOINT_INDEX:
            raise KeyError(f"unknown joint '{joint}'")
        rotations = dict(self.rotations)
        rotations[joint] = np.asarray(rotation, dtype=float)
        return Pose(
            rotations=rotations,
            root_position=self.root_position,
            root_offset=self.root_offset.copy(),
        )

    def validate(self) -> None:
        """Check that every rotation is a proper 3x3 rotation matrix."""
        for joint, rotation in self.rotations.items():
            if joint not in JOINT_INDEX:
                raise KeyError(f"unknown joint '{joint}'")
            rotation = np.asarray(rotation)
            if rotation.shape != (3, 3):
                raise ValueError(f"rotation for '{joint}' must be 3x3, got {rotation.shape}")
            if not np.allclose(rotation @ rotation.T, np.eye(3), atol=1e-6):
                raise ValueError(f"rotation for '{joint}' is not orthonormal")


def forward_kinematics(
    skeleton: Skeleton,
    pose: Pose,
    keep_feet_on_ground: bool = True,
) -> np.ndarray:
    """Compute world joint positions for ``pose`` on ``skeleton``.

    Parameters
    ----------
    skeleton:
        Subject-specific skeleton providing neutral-pose bone offsets.
    pose:
        Joint rotations and root position.
    keep_feet_on_ground:
        When ``True`` the whole skeleton is translated vertically so that the
        lowest foot/ankle touches the floor (``z = 0``).  This mimics how a
        real subject's feet stay planted during squats and lunges even though
        the kinematic root (the pelvis) drops.

    Returns
    -------
    Array of shape ``(19, 3)``.
    """
    offsets = skeleton.neutral_offsets()
    root = (
        np.array([0.0, 0.0, skeleton.hip_height])
        if pose.root_position is None
        else np.asarray(pose.root_position, dtype=float)
    )
    root = root + np.asarray(pose.root_offset, dtype=float)

    positions = np.zeros((NUM_JOINTS, 3))
    global_rotations: Dict[str, np.ndarray] = {}

    for name in JOINT_NAMES:
        parent = JOINT_PARENTS[name]
        local_rotation = pose.rotation_for(name)
        if parent == name:
            global_rotations[name] = local_rotation
            positions[JOINT_INDEX[name]] = root
        else:
            parent_rotation = global_rotations[parent]
            global_rotations[name] = parent_rotation @ local_rotation
            positions[JOINT_INDEX[name]] = (
                positions[JOINT_INDEX[parent]] + parent_rotation @ offsets[name]
            )

    if keep_feet_on_ground:
        positions = ground_correction(positions)
    return positions


def ground_correction(positions: np.ndarray) -> np.ndarray:
    """Translate the skeleton vertically so the lowest foot touches the floor."""
    positions = np.asarray(positions, dtype=float).copy()
    foot_indices = [
        JOINT_INDEX["foot_left"],
        JOINT_INDEX["foot_right"],
        JOINT_INDEX["ankle_left"],
        JOINT_INDEX["ankle_right"],
    ]
    lowest = positions[foot_indices, 2].min()
    positions[:, 2] -= lowest
    return positions


def joint_velocities(trajectory: np.ndarray, frame_period: float) -> np.ndarray:
    """Per-joint velocity estimates from a joint-position trajectory.

    Parameters
    ----------
    trajectory:
        Array of shape ``(frames, 19, 3)``.
    frame_period:
        Time between consecutive frames in seconds.

    Returns
    -------
    Array of the same shape containing central-difference velocities in m/s.
    The first and last frames use forward/backward differences.
    """
    trajectory = np.asarray(trajectory, dtype=float)
    if trajectory.ndim != 3 or trajectory.shape[1:] != (NUM_JOINTS, 3):
        raise ValueError(
            f"trajectory must have shape (frames, {NUM_JOINTS}, 3), got {trajectory.shape}"
        )
    if frame_period <= 0:
        raise ValueError(f"frame_period must be positive, got {frame_period}")
    if trajectory.shape[0] < 2:
        return np.zeros_like(trajectory)

    velocities = np.gradient(trajectory, frame_period, axis=0)
    return velocities


def interpolate_poses(pose_a: Pose, pose_b: Pose, weight: float) -> Pose:
    """Linear blend of two poses (rotations blended then re-orthonormalized).

    Useful for smoothing transitions between repetitions of a movement.
    """
    if not 0.0 <= weight <= 1.0:
        raise ValueError(f"weight must be in [0, 1], got {weight}")
    joints: Iterable[str] = set(pose_a.rotations) | set(pose_b.rotations)
    rotations: Dict[str, np.ndarray] = {}
    for joint in joints:
        blended = (1.0 - weight) * pose_a.rotation_for(joint) + weight * pose_b.rotation_for(joint)
        # Project back onto SO(3) via SVD.
        u, _, vt = np.linalg.svd(blended)
        rotation = u @ vt
        if np.linalg.det(rotation) < 0:
            u[:, -1] *= -1
            rotation = u @ vt
        rotations[joint] = rotation
    if pose_a.root_position is None and pose_b.root_position is None:
        root = None
    else:
        root_a = pose_a.root_position if pose_a.root_position is not None else pose_b.root_position
        root_b = pose_b.root_position if pose_b.root_position is not None else pose_a.root_position
        root = (1.0 - weight) * np.asarray(root_a) + weight * np.asarray(root_b)
    offset = (1.0 - weight) * np.asarray(pose_a.root_offset) + weight * np.asarray(pose_b.root_offset)
    return Pose(rotations=rotations, root_position=root, root_offset=offset)

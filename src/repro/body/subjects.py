"""Subject (person) profiles for synthetic data generation.

The MARS dataset contains four human subjects; FUSE's headline experiment
holds out "user 4" to test adaptation to an unseen person.  This module
models subjects as anthropometric profiles plus per-subject movement style
parameters (amplitude, tempo, sway, reflectivity), so that the synthetic
dataset reproduces the *inter-subject variation* that makes the held-out-user
split genuinely harder than a random split.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List

import numpy as np

from .skeleton import Skeleton

__all__ = ["SubjectProfile", "default_subjects", "make_subject"]


@dataclass(frozen=True)
class SubjectProfile:
    """Anthropometrics and movement style of one synthetic subject.

    Attributes
    ----------
    subject_id:
        1-based identifier, matching the MARS convention (users 1-4).
    height / shoulder_width / hip_width:
        Body dimensions in metres used to build the :class:`Skeleton`.
    amplitude_scale:
        Multiplier on movement joint-angle amplitudes (some people squat
        deeper than others).
    tempo_scale:
        Multiplier on movement speed (repetitions per second).
    lateral_sway:
        Standard deviation (metres) of slow lateral drift of the body centre
        while exercising.
    phase_jitter:
        Random phase irregularity between repetitions (fraction of a cycle).
    reflectivity:
        Relative radar cross-section multiplier of the subject (clothing and
        body size change how strongly a person reflects mmWave energy).
    standoff:
        Nominal distance from the radar in metres.
    """

    subject_id: int
    height: float = 1.75
    shoulder_width: float = 0.38
    hip_width: float = 0.26
    amplitude_scale: float = 1.0
    tempo_scale: float = 1.0
    lateral_sway: float = 0.02
    phase_jitter: float = 0.03
    reflectivity: float = 1.0
    standoff: float = 2.5

    def __post_init__(self) -> None:
        if self.subject_id < 1:
            raise ValueError(f"subject_id must be >= 1, got {self.subject_id}")
        if not 1.2 <= self.height <= 2.2:
            raise ValueError(f"height {self.height} m is outside the plausible range")
        if self.amplitude_scale <= 0 or self.tempo_scale <= 0:
            raise ValueError("amplitude_scale and tempo_scale must be positive")
        if self.standoff <= 0.3:
            raise ValueError("subject must stand at least 0.3 m from the radar")

    def skeleton(self) -> Skeleton:
        """Build the subject-specific :class:`Skeleton`."""
        return Skeleton(
            height=self.height,
            shoulder_width=self.shoulder_width,
            hip_width=self.hip_width,
        )

    def with_overrides(self, **kwargs) -> "SubjectProfile":
        """Return a copy of the profile with selected fields replaced."""
        return replace(self, **kwargs)


#: The four canonical subjects mirroring the MARS dataset composition.
_DEFAULT_SUBJECT_TABLE: List[Dict] = [
    dict(
        subject_id=1,
        height=1.78,
        shoulder_width=0.40,
        hip_width=0.27,
        amplitude_scale=1.00,
        tempo_scale=1.00,
        lateral_sway=0.020,
        phase_jitter=0.02,
        reflectivity=1.00,
        standoff=2.5,
    ),
    dict(
        subject_id=2,
        height=1.65,
        shoulder_width=0.36,
        hip_width=0.25,
        amplitude_scale=0.85,
        tempo_scale=1.15,
        lateral_sway=0.030,
        phase_jitter=0.04,
        reflectivity=0.90,
        standoff=2.3,
    ),
    dict(
        subject_id=3,
        height=1.86,
        shoulder_width=0.43,
        hip_width=0.29,
        amplitude_scale=1.10,
        tempo_scale=0.90,
        lateral_sway=0.015,
        phase_jitter=0.03,
        reflectivity=1.15,
        standoff=2.7,
    ),
    dict(
        # Subject 4 — the held-out user in the FUSE adaptation experiment.
        # Deliberately the most distinct profile (shortest, deepest and
        # fastest movements, closest standoff, weakest reflections) so that
        # generalizing to it is genuinely difficult.
        subject_id=4,
        height=1.58,
        shoulder_width=0.34,
        hip_width=0.24,
        amplitude_scale=1.30,
        tempo_scale=1.35,
        lateral_sway=0.045,
        phase_jitter=0.06,
        reflectivity=0.80,
        standoff=2.1,
    ),
]


def default_subjects() -> List[SubjectProfile]:
    """Return the four canonical synthetic subjects (MARS-like composition)."""
    return [SubjectProfile(**row) for row in _DEFAULT_SUBJECT_TABLE]


def make_subject(subject_id: int, rng: np.random.Generator | None = None) -> SubjectProfile:
    """Create a subject profile.

    IDs 1-4 return the canonical profiles; larger IDs synthesize a random but
    reproducible profile (seeded by the ID unless ``rng`` is supplied), which
    the scalability examples use to generate extra users.
    """
    if subject_id <= 0:
        raise ValueError(f"subject_id must be positive, got {subject_id}")
    if subject_id <= len(_DEFAULT_SUBJECT_TABLE):
        return SubjectProfile(**_DEFAULT_SUBJECT_TABLE[subject_id - 1])
    rng = rng if rng is not None else np.random.default_rng(subject_id)
    return SubjectProfile(
        subject_id=subject_id,
        height=float(rng.uniform(1.55, 1.95)),
        shoulder_width=float(rng.uniform(0.34, 0.44)),
        hip_width=float(rng.uniform(0.23, 0.30)),
        amplitude_scale=float(rng.uniform(0.8, 1.3)),
        tempo_scale=float(rng.uniform(0.85, 1.35)),
        lateral_sway=float(rng.uniform(0.01, 0.05)),
        phase_jitter=float(rng.uniform(0.01, 0.06)),
        reflectivity=float(rng.uniform(0.75, 1.2)),
        standoff=float(rng.uniform(2.0, 3.0)),
    )

"""The ten MARS rehabilitation movements as parametric joint-angle programs.

The MARS dataset (and therefore the FUSE evaluation) contains ten prescribed
rehabilitation exercises performed in front of the radar.  Each movement is
modelled here as a periodic program that maps a normalized cycle phase in
``[0, 1)`` to a :class:`~repro.body.kinematics.Pose`.  The programs use a
smooth raised-cosine activation so that joint angles (and hence Doppler
velocities) are continuous, the way a human actually moves.

The held-out movement in the FUSE adaptation experiment is
``right_limb_extension`` (Section 4.3.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

import numpy as np

from .kinematics import Pose, euler_rotation, rotation_x, rotation_y
from .subjects import SubjectProfile

__all__ = [
    "Movement",
    "MOVEMENT_NAMES",
    "HELD_OUT_MOVEMENT",
    "get_movement",
    "all_movements",
]


def _activation(phase: float) -> float:
    """Smooth 0 -> 1 -> 0 activation over one movement cycle.

    A raised cosine reaches full extension at ``phase = 0.5`` and returns to
    rest at the end of the cycle, with zero velocity at both end points.
    """
    return 0.5 * (1.0 - np.cos(2.0 * np.pi * phase))


@dataclass(frozen=True)
class Movement:
    """A named rehabilitation movement.

    Attributes
    ----------
    name:
        Canonical snake_case movement name (stable across the repo).
    movement_id:
        1-based identifier matching the MARS numbering.
    cycle_duration:
        Nominal duration of one repetition in seconds (before the subject's
        tempo scaling is applied).
    pose_program:
        Function ``(phase, amplitude) -> pose`` where ``phase`` is in
        ``[0, 1)`` and ``amplitude`` scales the joint-angle excursions.
    """

    name: str
    movement_id: int
    cycle_duration: float
    pose_program: Callable[[float, float], Pose]

    def pose_at(self, phase: float, subject: SubjectProfile) -> Pose:
        """Pose of ``subject`` at normalized cycle ``phase``."""
        phase = float(phase) % 1.0
        return self.pose_program(phase, subject.amplitude_scale)

    def period_for(self, subject: SubjectProfile) -> float:
        """Cycle duration for a specific subject (tempo-scaled)."""
        return self.cycle_duration / subject.tempo_scale


# ----------------------------------------------------------------------
# Pose programs
# ----------------------------------------------------------------------
def _arm_raise(side: str, phase: float, amplitude: float) -> Dict[str, np.ndarray]:
    """Rotations that raise one arm laterally to horizontal and above."""
    lift = _activation(phase) * amplitude * np.deg2rad(150.0)
    # Abduction is a roll about the depth (y) axis; sign depends on the side.
    sign = 1.0 if side == "left" else -1.0
    shoulder = rotation_y(sign * lift)
    elbow = rotation_y(sign * 0.1 * lift)
    return {f"shoulder_{side}": shoulder, f"elbow_{side}": elbow}


def _upper_limb_extension(side: str) -> Callable[[float, float], Pose]:
    def program(phase: float, amplitude: float) -> Pose:
        rotations = _arm_raise(side, phase, amplitude)
        return Pose(rotations=rotations)

    return program


def _both_upper_limb_extension(phase: float, amplitude: float) -> Pose:
    rotations = {}
    rotations.update(_arm_raise("left", phase, amplitude))
    rotations.update(_arm_raise("right", phase, amplitude))
    return Pose(rotations=rotations)


def _squat(phase: float, amplitude: float) -> Pose:
    """Two-legged squat: hip and knee flexion with a compensating torso lean."""
    depth = _activation(phase) * amplitude
    hip_flex = depth * np.deg2rad(80.0)
    knee_flex = depth * np.deg2rad(100.0)
    torso_lean = depth * np.deg2rad(25.0)
    arms_forward = depth * np.deg2rad(70.0)
    rotations = {
        "hip_left": rotation_x(-hip_flex),
        "hip_right": rotation_x(-hip_flex),
        "knee_left": rotation_x(knee_flex),
        "knee_right": rotation_x(knee_flex),
        "spine_mid": rotation_x(-torso_lean),
        # Arms extend forward for balance, a characteristic squat signature.
        "shoulder_left": rotation_x(-arms_forward),
        "shoulder_right": rotation_x(-arms_forward),
    }
    return Pose(rotations=rotations)


def _front_lunge(side: str) -> Callable[[float, float], Pose]:
    """Step forward on ``side`` leg, bending both knees."""

    def program(phase: float, amplitude: float) -> Pose:
        depth = _activation(phase) * amplitude
        front_hip = depth * np.deg2rad(60.0)
        front_knee = depth * np.deg2rad(70.0)
        back_knee = depth * np.deg2rad(50.0)
        torso = depth * np.deg2rad(10.0)
        other = "right" if side == "left" else "left"
        rotations = {
            f"hip_{side}": rotation_x(-front_hip),
            f"knee_{side}": rotation_x(front_knee),
            f"knee_{other}": rotation_x(back_knee),
            "spine_mid": rotation_x(-torso),
        }
        # The body moves toward the radar as the front foot steps out.
        return Pose(rotations=rotations, root_offset=np.array([0.0, -0.18 * depth, 0.0]))

    return program


def _side_lunge(side: str) -> Callable[[float, float], Pose]:
    """Step laterally on ``side`` leg, bending that knee."""

    def program(phase: float, amplitude: float) -> Pose:
        depth = _activation(phase) * amplitude
        sign = -1.0 if side == "left" else 1.0
        hip_abduct = depth * np.deg2rad(35.0)
        knee_flex = depth * np.deg2rad(60.0)
        torso = depth * np.deg2rad(12.0)
        rotations = {
            f"hip_{side}": rotation_y(sign * hip_abduct),
            f"knee_{side}": rotation_x(knee_flex),
            "spine_mid": rotation_x(-torso),
        }
        return Pose(rotations=rotations, root_offset=np.array([sign * 0.15 * depth, 0.0, 0.0]))

    return program


def _limb_extension(side: str) -> Callable[[float, float], Pose]:
    """Simultaneous arm raise and leg extension on one side of the body.

    ``right_limb_extension`` is the movement excluded from meta-training in
    the paper's adaptation experiment.
    """

    def program(phase: float, amplitude: float) -> Pose:
        level = _activation(phase) * amplitude
        sign = 1.0 if side == "left" else -1.0
        arm_lift = level * np.deg2rad(120.0)
        leg_lift = level * np.deg2rad(45.0)
        rotations = {
            f"shoulder_{side}": rotation_y(sign * arm_lift),
            f"hip_{side}": euler_rotation(rx=-0.2 * leg_lift, ry=sign * leg_lift),
            f"knee_{side}": rotation_x(0.15 * leg_lift),
            "spine_mid": rotation_y(-sign * level * np.deg2rad(8.0)),
        }
        return Pose(rotations=rotations)

    return program


# ----------------------------------------------------------------------
# Movement registry
# ----------------------------------------------------------------------
_MOVEMENT_SPECS: List[Tuple[str, float, Callable[[float, float], Pose]]] = [
    ("left_upper_limb_extension", 3.0, _upper_limb_extension("left")),
    ("right_upper_limb_extension", 3.0, _upper_limb_extension("right")),
    ("both_upper_limb_extension", 3.2, _both_upper_limb_extension),
    ("left_front_lunge", 4.0, _front_lunge("left")),
    ("right_front_lunge", 4.0, _front_lunge("right")),
    ("squat", 4.5, _squat),
    ("left_side_lunge", 4.0, _side_lunge("left")),
    ("right_side_lunge", 4.0, _side_lunge("right")),
    ("left_limb_extension", 3.5, _limb_extension("left")),
    ("right_limb_extension", 3.5, _limb_extension("right")),
]

#: Canonical ordered movement names (movement_id = index + 1).
MOVEMENT_NAMES: Tuple[str, ...] = tuple(name for name, _, _ in _MOVEMENT_SPECS)

#: The movement excluded from training in the FUSE adaptation experiment.
HELD_OUT_MOVEMENT: str = "right_limb_extension"

_REGISTRY: Dict[str, Movement] = {
    name: Movement(
        name=name,
        movement_id=index + 1,
        cycle_duration=duration,
        pose_program=program,
    )
    for index, (name, duration, program) in enumerate(_MOVEMENT_SPECS)
}


def get_movement(name_or_id) -> Movement:
    """Look up a movement by canonical name or 1-based identifier."""
    if isinstance(name_or_id, Movement):
        return name_or_id
    if isinstance(name_or_id, (int, np.integer)):
        index = int(name_or_id) - 1
        if not 0 <= index < len(MOVEMENT_NAMES):
            raise KeyError(f"movement id must be 1..{len(MOVEMENT_NAMES)}, got {name_or_id}")
        return _REGISTRY[MOVEMENT_NAMES[index]]
    name = str(name_or_id)
    if name not in _REGISTRY:
        raise KeyError(f"unknown movement '{name}'; valid names: {', '.join(MOVEMENT_NAMES)}")
    return _REGISTRY[name]


def all_movements() -> List[Movement]:
    """All ten movements in canonical order."""
    return [_REGISTRY[name] for name in MOVEMENT_NAMES]

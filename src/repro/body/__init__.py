"""``repro.body`` — kinematic human body substrate.

Provides the 19-joint MARS/Kinect skeleton, subject anthropometrics, the ten
rehabilitation movement programs, motion synthesis (joint trajectories and
velocities) and the body-surface scattering model consumed by the radar
simulator.
"""

from .kinematics import (
    Pose,
    euler_rotation,
    forward_kinematics,
    ground_correction,
    interpolate_poses,
    joint_velocities,
    rotation_x,
    rotation_y,
    rotation_z,
)
from .motion import MotionSynthesizer, MotionTrajectory
from .movements import (
    HELD_OUT_MOVEMENT,
    MOVEMENT_NAMES,
    Movement,
    all_movements,
    get_movement,
)
from .skeleton import (
    JOINT_INDEX,
    JOINT_NAMES,
    JOINT_PARENTS,
    NUM_JOINTS,
    SKELETON_EDGES,
    Skeleton,
)
from .subjects import SubjectProfile, default_subjects, make_subject
from .surface import BodyScatteringModel, Scatterer

__all__ = [
    "JOINT_NAMES",
    "JOINT_INDEX",
    "JOINT_PARENTS",
    "SKELETON_EDGES",
    "NUM_JOINTS",
    "Skeleton",
    "Pose",
    "forward_kinematics",
    "ground_correction",
    "joint_velocities",
    "interpolate_poses",
    "rotation_x",
    "rotation_y",
    "rotation_z",
    "euler_rotation",
    "SubjectProfile",
    "default_subjects",
    "make_subject",
    "Movement",
    "MOVEMENT_NAMES",
    "HELD_OUT_MOVEMENT",
    "get_movement",
    "all_movements",
    "MotionSynthesizer",
    "MotionTrajectory",
    "BodyScatteringModel",
    "Scatterer",
]

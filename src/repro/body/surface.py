"""Body-surface scatterer model.

A mmWave radar does not see joints — it sees reflections from the body's
surface.  This module converts a skeleton pose (19 joint positions plus
velocities) into a cloud of *scatterers*: points distributed along the limbs
and torso, each with a position, a velocity (interpolated from the adjacent
joints) and a radar cross-section (RCS) weight.  The radar substrate consumes
these scatterers either through the full FMCW signal chain or through the
fast geometric backend.

The RCS weights encode which body parts reflect most strongly: the torso is a
large, roughly specular reflector, while wrists and feet are small and often
missed — this is what makes the real mmWave point cloud sparse and biased
toward the trunk, the property the FUSE multi-frame fusion addresses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from .skeleton import JOINT_INDEX, SKELETON_EDGES

__all__ = ["Scatterer", "BodyScatteringModel"]


@dataclass(frozen=True)
class Scatterer:
    """A single reflecting point on the body surface."""

    position: np.ndarray  # (3,) metres
    velocity: np.ndarray  # (3,) m/s
    rcs: float  # relative radar cross-section (linear scale)
    segment: str  # human-readable body segment name


#: Relative RCS of each bone segment (child-joint keyed).  Values are
#: dimensionless multipliers; the torso dominates, extremities are weak.
_SEGMENT_RCS: Dict[str, float] = {
    "spine_mid": 3.0,
    "spine_shoulder": 3.0,
    "neck": 1.2,
    "head": 1.8,
    "shoulder_left": 1.5,
    "elbow_left": 0.8,
    "wrist_left": 0.4,
    "shoulder_right": 1.5,
    "elbow_right": 0.8,
    "wrist_right": 0.4,
    "hip_left": 1.6,
    "knee_left": 0.9,
    "ankle_left": 0.5,
    "foot_left": 0.3,
    "hip_right": 1.6,
    "knee_right": 0.9,
    "ankle_right": 0.5,
    "foot_right": 0.3,
}

#: Approximate radius (metres) of each body segment, used to offset
#: scatterers away from the bone axis.
_SEGMENT_RADIUS: Dict[str, float] = {
    "spine_mid": 0.14,
    "spine_shoulder": 0.14,
    "neck": 0.06,
    "head": 0.10,
    "shoulder_left": 0.06,
    "elbow_left": 0.05,
    "wrist_left": 0.04,
    "shoulder_right": 0.06,
    "elbow_right": 0.05,
    "wrist_right": 0.04,
    "hip_left": 0.09,
    "knee_left": 0.07,
    "ankle_left": 0.05,
    "foot_left": 0.04,
    "hip_right": 0.09,
    "knee_right": 0.07,
    "ankle_right": 0.05,
    "foot_right": 0.04,
}


@dataclass
class BodyScatteringModel:
    """Samples surface scatterers from a posed skeleton.

    Parameters
    ----------
    points_per_segment:
        Number of scatterers placed along each bone segment.
    surface_noise:
        Standard deviation (metres) of the random offset that scatters points
        off the bone axis, in addition to the segment radius.
    reflectivity:
        Global RCS multiplier (per-subject; clothing and body size).
    """

    points_per_segment: int = 8
    surface_noise: float = 0.01
    reflectivity: float = 1.0

    def __post_init__(self) -> None:
        if self.points_per_segment < 1:
            raise ValueError("points_per_segment must be >= 1")
        if self.surface_noise < 0:
            raise ValueError("surface_noise must be non-negative")
        if self.reflectivity <= 0:
            raise ValueError("reflectivity must be positive")

    def scatterers(
        self,
        joint_positions: np.ndarray,
        joint_velocities: np.ndarray,
        rng: np.random.Generator,
    ) -> List[Scatterer]:
        """Sample scatterers for one posed frame.

        Parameters
        ----------
        joint_positions / joint_velocities:
            Arrays of shape ``(19, 3)``.
        rng:
            Random generator controlling surface-offset sampling.
        """
        joint_positions = np.asarray(joint_positions, dtype=float)
        joint_velocities = np.asarray(joint_velocities, dtype=float)
        if joint_positions.shape != joint_velocities.shape:
            raise ValueError("positions and velocities must have identical shapes")

        scatterers: List[Scatterer] = []
        for parent, child in SKELETON_EDGES:
            p_parent = joint_positions[JOINT_INDEX[parent]]
            p_child = joint_positions[JOINT_INDEX[child]]
            v_parent = joint_velocities[JOINT_INDEX[parent]]
            v_child = joint_velocities[JOINT_INDEX[child]]
            rcs = _SEGMENT_RCS.get(child, 1.0) * self.reflectivity
            radius = _SEGMENT_RADIUS.get(child, 0.05)

            fractions = np.linspace(0.15, 0.85, self.points_per_segment)
            for fraction in fractions:
                centre = (1.0 - fraction) * p_parent + fraction * p_child
                velocity = (1.0 - fraction) * v_parent + fraction * v_child
                offset = rng.normal(0.0, 1.0, size=3)
                norm = np.linalg.norm(offset)
                if norm > 1e-9:
                    offset = offset / norm * (radius + rng.normal(0.0, self.surface_noise))
                scatterers.append(
                    Scatterer(
                        position=centre + offset,
                        velocity=velocity,
                        rcs=float(max(rcs * rng.uniform(0.6, 1.4), 1e-3)),
                        segment=child,
                    )
                )
        return scatterers

    def scatterer_array(
        self,
        joint_positions: np.ndarray,
        joint_velocities: np.ndarray,
        rng: np.random.Generator,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized variant returning ``(positions, velocities, rcs)`` arrays."""
        scatterers = self.scatterers(joint_positions, joint_velocities, rng)
        positions = np.array([s.position for s in scatterers])
        velocities = np.array([s.velocity for s in scatterers])
        rcs = np.array([s.rcs for s in scatterers])
        return positions, velocities, rcs

    # ------------------------------------------------------------------
    # Batched sampling
    # ------------------------------------------------------------------
    @property
    def scatterers_per_frame(self) -> int:
        """Number of scatterers emitted for every posed frame."""
        return len(SKELETON_EDGES) * self.points_per_segment

    def _edge_tables(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Per-edge index and constant tables for the vectorized sampler."""
        parents = np.array([JOINT_INDEX[parent] for parent, _child in SKELETON_EDGES])
        children = np.array([JOINT_INDEX[child] for _parent, child in SKELETON_EDGES])
        rcs = np.array(
            [_SEGMENT_RCS.get(child, 1.0) for _parent, child in SKELETON_EDGES]
        )
        radius = np.array(
            [_SEGMENT_RADIUS.get(child, 0.05) for _parent, child in SKELETON_EDGES]
        )
        return parents, children, rcs, radius

    def scatterer_batch(
        self,
        joint_positions: np.ndarray,
        joint_velocities: np.ndarray,
        rng: np.random.Generator,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Sample scatterers for a whole trajectory of posed frames at once.

        Parameters
        ----------
        joint_positions / joint_velocities:
            Arrays of shape ``(frames, 19, 3)``.
        rng:
            Random generator controlling surface-offset sampling.  All noise
            for the batch is drawn in a handful of vectorized calls, so the
            draw order differs from calling :meth:`scatterers` per frame —
            the two paths agree in distribution, not sample-for-sample.

        Returns
        -------
        ``(positions, velocities, rcs)`` arrays of shapes
        ``(frames, S, 3)``, ``(frames, S, 3)`` and ``(frames, S)`` where
        ``S = len(SKELETON_EDGES) * points_per_segment``.
        """
        joint_positions = np.asarray(joint_positions, dtype=float)
        joint_velocities = np.asarray(joint_velocities, dtype=float)
        if joint_positions.shape != joint_velocities.shape:
            raise ValueError("positions and velocities must have identical shapes")
        if joint_positions.ndim != 3 or joint_positions.shape[-1] != 3:
            raise ValueError(
                f"expected (frames, joints, 3) arrays, got {joint_positions.shape}"
            )

        parents, children, edge_rcs, edge_radius = self._edge_tables()
        frames = joint_positions.shape[0]
        edges = parents.shape[0]
        fractions = np.linspace(0.15, 0.85, self.points_per_segment)

        # Interpolate centres/velocities along every bone: (T, E, F, 3).
        p_parent = joint_positions[:, parents][:, :, None, :]
        p_child = joint_positions[:, children][:, :, None, :]
        v_parent = joint_velocities[:, parents][:, :, None, :]
        v_child = joint_velocities[:, children][:, :, None, :]
        frac = fractions[None, None, :, None]
        centres = (1.0 - frac) * p_parent + frac * p_child
        velocities = (1.0 - frac) * v_parent + frac * v_child

        # Random unit offsets scaled to the segment surface radius.
        offsets = rng.normal(0.0, 1.0, size=(frames, edges, self.points_per_segment, 3))
        norms = np.linalg.norm(offsets, axis=-1, keepdims=True)
        scales = edge_radius[None, :, None] + rng.normal(
            0.0, self.surface_noise, size=(frames, edges, self.points_per_segment)
        )
        offsets = np.where(
            norms > 1e-9, offsets / np.maximum(norms, 1e-12) * scales[..., None], 0.0
        )
        positions = centres + offsets

        rcs = np.maximum(
            edge_rcs[None, :, None]
            * self.reflectivity
            * rng.uniform(0.6, 1.4, size=(frames, edges, self.points_per_segment)),
            1e-3,
        )

        count = edges * self.points_per_segment
        return (
            positions.reshape(frames, count, 3),
            velocities.reshape(frames, count, 3),
            rcs.reshape(frames, count),
        )

"""Motion synthesis: turning a movement program into a joint trajectory.

Given a subject profile and a rehabilitation movement, the synthesizer places
the subject at their nominal standoff distance from the radar, runs the
movement's pose program over time (with subject-specific tempo, amplitude,
phase jitter and lateral sway) and returns the resulting joint-position
trajectory together with per-joint velocities.  This trajectory is both the
ground-truth label stream (what the Kinect would have reported) and the
input that drives the radar scattering simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .kinematics import Pose, forward_kinematics, joint_velocities
from .movements import Movement, get_movement
from .skeleton import NUM_JOINTS
from .subjects import SubjectProfile

__all__ = ["MotionTrajectory", "MotionSynthesizer"]


@dataclass
class MotionTrajectory:
    """A synthesized motion sequence.

    Attributes
    ----------
    positions:
        Joint positions, shape ``(frames, 19, 3)`` in metres.
    velocities:
        Joint velocities, shape ``(frames, 19, 3)`` in m/s.
    timestamps:
        Frame timestamps in seconds, shape ``(frames,)``.
    subject_id / movement_name:
        Provenance of the sequence.
    frame_rate:
        Frames per second of the trajectory.
    """

    positions: np.ndarray
    velocities: np.ndarray
    timestamps: np.ndarray
    subject_id: int
    movement_name: str
    frame_rate: float

    def __post_init__(self) -> None:
        self.positions = np.asarray(self.positions, dtype=float)
        self.velocities = np.asarray(self.velocities, dtype=float)
        self.timestamps = np.asarray(self.timestamps, dtype=float)
        frames = self.positions.shape[0]
        if self.positions.shape != (frames, NUM_JOINTS, 3):
            raise ValueError(f"positions have invalid shape {self.positions.shape}")
        if self.velocities.shape != self.positions.shape:
            raise ValueError("velocities must match positions in shape")
        if self.timestamps.shape != (frames,):
            raise ValueError("timestamps must have one entry per frame")

    @property
    def num_frames(self) -> int:
        return int(self.positions.shape[0])

    @property
    def duration(self) -> float:
        """Total duration covered by the trajectory in seconds."""
        if self.num_frames == 0:
            return 0.0
        return float(self.num_frames) / self.frame_rate

    def frame(self, index: int) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(positions, velocities)`` of one frame."""
        return self.positions[index], self.velocities[index]


@dataclass
class MotionSynthesizer:
    """Generates :class:`MotionTrajectory` objects for subject/movement pairs.

    Parameters
    ----------
    frame_rate:
        Label sampling rate in Hz.  The MARS dataset labels frames at 10 Hz;
        the radar simulator may internally run faster and decimate.
    keep_feet_on_ground:
        Forwarded to :func:`repro.body.kinematics.forward_kinematics`.
    """

    frame_rate: float = 10.0
    keep_feet_on_ground: bool = True

    def __post_init__(self) -> None:
        if self.frame_rate <= 0:
            raise ValueError(f"frame_rate must be positive, got {self.frame_rate}")

    def synthesize(
        self,
        subject: SubjectProfile,
        movement: Movement | str | int,
        duration: float = 10.0,
        rng: Optional[np.random.Generator] = None,
        start_phase: float = 0.0,
    ) -> MotionTrajectory:
        """Synthesize ``duration`` seconds of ``subject`` performing ``movement``.

        The sequence contains repeated cycles of the movement with small
        random phase irregularities between repetitions and a slow lateral
        sway of the whole body, both scaled by the subject profile.
        """
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        movement = get_movement(movement)
        rng = rng if rng is not None else np.random.default_rng()

        skeleton = subject.skeleton()
        period = movement.period_for(subject)
        frame_period = 1.0 / self.frame_rate
        num_frames = max(2, int(round(duration * self.frame_rate)))
        timestamps = np.arange(num_frames) * frame_period

        # Smoothly varying phase noise: a random walk low-pass filtered so the
        # subject drifts ahead/behind the nominal tempo without jumps.
        jitter = _smooth_noise(num_frames, rng) * subject.phase_jitter
        sway_x = _smooth_noise(num_frames, rng) * subject.lateral_sway * 3.0
        sway_y = _smooth_noise(num_frames, rng) * subject.lateral_sway * 1.5

        positions = np.zeros((num_frames, NUM_JOINTS, 3))
        for frame_index, t in enumerate(timestamps):
            phase = start_phase + t / period + jitter[frame_index]
            pose = movement.pose_at(phase, subject)
            body_offset = np.array(
                [sway_x[frame_index], subject.standoff + sway_y[frame_index], 0.0]
            )
            pose = Pose(
                rotations=pose.rotations,
                root_position=pose.root_position,
                root_offset=np.asarray(pose.root_offset, dtype=float) + body_offset,
            )
            positions[frame_index] = forward_kinematics(
                skeleton, pose, keep_feet_on_ground=self.keep_feet_on_ground
            )

        velocities = joint_velocities(positions, frame_period)
        return MotionTrajectory(
            positions=positions,
            velocities=velocities,
            timestamps=timestamps,
            subject_id=subject.subject_id,
            movement_name=movement.name,
            frame_rate=self.frame_rate,
        )


def _smooth_noise(length: int, rng: np.random.Generator, smoothing: int = 15) -> np.ndarray:
    """Zero-mean smooth noise in roughly ``[-1, 1]`` used for sway and jitter."""
    if length <= 0:
        return np.zeros(0)
    raw = rng.standard_normal(length + 2 * smoothing)
    kernel = np.hanning(2 * smoothing + 1)
    kernel /= kernel.sum()
    smooth = np.convolve(raw, kernel, mode="same")[smoothing : smoothing + length]
    scale = np.max(np.abs(smooth))
    if scale < 1e-12:
        return np.zeros(length)
    return smooth / scale

"""Plain-text table formatting for experiment reports.

Every experiment driver prints its results in the same row/column layout as
the corresponding table or figure caption of the paper, so the output can be
compared side by side with the published numbers.  EXPERIMENTS.md is written
from these tables.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Union

__all__ = ["format_table", "format_curve", "format_comparison"]

Cell = Union[str, int, float]


def _format_cell(value: Cell, precision: int) -> str:
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Cell]],
    title: str | None = None,
    precision: int = 2,
) -> str:
    """Render a list of rows as an aligned plain-text table."""
    if not headers:
        raise ValueError("headers must not be empty")
    rendered_rows = [[_format_cell(cell, precision) for cell in row] for row in rows]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row {row} has {len(row)} cells but there are {len(headers)} headers"
            )
    widths = [
        max(len(str(headers[col])), *(len(row[col]) for row in rendered_rows), 1)
        if rendered_rows
        else len(str(headers[col]))
        for col in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = " | ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_curve(
    name: str, values: Sequence[float], precision: int = 2, per_line: int = 10
) -> str:
    """Render an epoch-indexed curve compactly (used for Figures 3-4)."""
    lines = [f"{name} (epoch: value)"]
    chunk: List[str] = []
    for epoch, value in enumerate(values):
        chunk.append(f"{epoch:3d}: {value:.{precision}f}")
        if len(chunk) == per_line:
            lines.append("  " + "  ".join(chunk))
            chunk = []
    if chunk:
        lines.append("  " + "  ".join(chunk))
    return "\n".join(lines)


def format_comparison(
    paper_values: Mapping[str, float],
    measured_values: Mapping[str, float],
    title: str | None = None,
    precision: int = 2,
) -> str:
    """Two-column "paper vs measured" table used in EXPERIMENTS.md."""
    keys = list(paper_values.keys())
    rows: List[List[Cell]] = []
    for key in keys:
        measured = measured_values.get(key, float("nan"))
        rows.append([key, paper_values[key], measured])
    return format_table(["quantity", "paper", "measured"], rows, title=title, precision=precision)

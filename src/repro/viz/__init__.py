"""``repro.viz`` — text rendering of point clouds, skeletons and result tables."""

from .render import RenderConfig, occupancy_grid, render_point_cloud, render_skeleton
from .tables import format_comparison, format_curve, format_table

__all__ = [
    "RenderConfig",
    "occupancy_grid",
    "render_point_cloud",
    "render_skeleton",
    "format_table",
    "format_curve",
    "format_comparison",
]

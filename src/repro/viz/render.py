"""Text-based point-cloud and skeleton rendering.

The repository has no plotting dependency, so Figure 2 ("visual comparison of
a single-frame vs multi-frame point cloud") is reproduced as ASCII density
renderings plus quantitative density statistics.  The renderer projects a
point cloud onto the lateral-height (x-z) plane — the "front view" a human
would use to recognize a pose — and draws an intensity-weighted occupancy
grid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..body.skeleton import JOINT_INDEX, SKELETON_EDGES
from ..radar.pointcloud import PointCloudFrame

__all__ = ["RenderConfig", "render_point_cloud", "render_skeleton", "occupancy_grid"]

#: Density ramp used for ASCII rendering (space = empty, darker = denser).
_DENSITY_RAMP = " .:-=+*#%@"


@dataclass(frozen=True)
class RenderConfig:
    """Rendering window and resolution.

    The defaults cover a standing adult at the MARS standoff distances:
    +/- 1 m laterally and 0-2 m vertically.
    """

    width: int = 48
    height: int = 24
    x_range: Tuple[float, float] = (-1.0, 1.0)
    z_range: Tuple[float, float] = (0.0, 2.0)

    def __post_init__(self) -> None:
        if self.width < 2 or self.height < 2:
            raise ValueError("render grid must be at least 2x2")
        if self.x_range[0] >= self.x_range[1] or self.z_range[0] >= self.z_range[1]:
            raise ValueError("render ranges must be increasing")


def occupancy_grid(
    frame: PointCloudFrame, config: Optional[RenderConfig] = None
) -> np.ndarray:
    """Project a point cloud onto an ``(height, width)`` occupancy-count grid."""
    config = config if config is not None else RenderConfig()
    grid = np.zeros((config.height, config.width))
    if frame.num_points == 0:
        return grid
    x = frame.points[:, 0]
    z = frame.points[:, 2]
    x_low, x_high = config.x_range
    z_low, z_high = config.z_range
    cols = np.floor((x - x_low) / (x_high - x_low) * config.width).astype(int)
    rows = np.floor((z_high - z) / (z_high - z_low) * config.height).astype(int)
    valid = (cols >= 0) & (cols < config.width) & (rows >= 0) & (rows < config.height)
    np.add.at(grid, (rows[valid], cols[valid]), 1.0)
    return grid


def _grid_to_text(grid: np.ndarray) -> str:
    peak = grid.max()
    if peak <= 0:
        return "\n".join(" " * grid.shape[1] for _ in range(grid.shape[0]))
    lines = []
    for row in grid:
        chars = []
        for value in row:
            level = int(round(value / peak * (len(_DENSITY_RAMP) - 1)))
            chars.append(_DENSITY_RAMP[level])
        lines.append("".join(chars))
    return "\n".join(lines)


def render_point_cloud(
    frame: PointCloudFrame,
    config: Optional[RenderConfig] = None,
    title: Optional[str] = None,
) -> str:
    """Render a point cloud as an ASCII front-view density map."""
    config = config if config is not None else RenderConfig()
    grid = occupancy_grid(frame, config)
    body = _grid_to_text(grid)
    header = f"{title} ({frame.num_points} points)" if title else f"{frame.num_points} points"
    ruler = "+" + "-" * config.width + "+"
    framed = "\n".join(f"|{line}|" for line in body.splitlines())
    return f"{header}\n{ruler}\n{framed}\n{ruler}"


def render_skeleton(
    joints: np.ndarray,
    config: Optional[RenderConfig] = None,
    title: Optional[str] = None,
) -> str:
    """Render a 19-joint skeleton (front view) as ASCII art.

    Joints are drawn as ``o`` and bones as interpolated ``.`` segments; used
    by the quickstart example to show predictions without a plotting stack.
    """
    config = config if config is not None else RenderConfig()
    joints = np.asarray(joints, dtype=float)
    if joints.shape != (len(JOINT_INDEX), 3):
        raise ValueError(f"expected (19, 3) joints, got {joints.shape}")

    canvas = np.full((config.height, config.width), " ", dtype="<U1")

    def to_cell(point: np.ndarray) -> Optional[Tuple[int, int]]:
        x_low, x_high = config.x_range
        z_low, z_high = config.z_range
        col = int(np.floor((point[0] - x_low) / (x_high - x_low) * config.width))
        row = int(np.floor((z_high - point[2]) / (z_high - z_low) * config.height))
        if 0 <= col < config.width and 0 <= row < config.height:
            return row, col
        return None

    # Bones first so joints overwrite them.
    for parent, child in SKELETON_EDGES:
        start = joints[JOINT_INDEX[parent]]
        end = joints[JOINT_INDEX[child]]
        for t in np.linspace(0.0, 1.0, 12):
            cell = to_cell((1 - t) * start + t * end)
            if cell is not None:
                canvas[cell] = "."
    for index in range(joints.shape[0]):
        cell = to_cell(joints[index])
        if cell is not None:
            canvas[cell] = "o"

    body = "\n".join("".join(row) for row in canvas)
    header = title if title else "skeleton"
    ruler = "+" + "-" * config.width + "+"
    framed = "\n".join(f"|{line}|" for line in body.splitlines())
    return f"{header}\n{ruler}\n{framed}\n{ruler}"

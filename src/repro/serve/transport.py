"""Wire protocol of the socket front-end: framing, codecs, message schema.

Everything that crosses a socket between a client and :class:`PoseFrontend`
goes through this module, so the protocol has exactly one definition:

* **Framing** — every message is one length-prefixed frame::

      frame  := codec(1 byte) || length(4 bytes, big-endian) || payload
      codec  := b"J" (JSON) | b"M" (msgpack)

  A reader that sees EOF mid-frame raises :class:`TruncatedFrame`; a length
  above ``max_frame_bytes`` (default 16 MiB) raises :class:`FrameTooLarge`
  *before* the payload is read, so a malicious or corrupt length prefix can
  never balloon memory.

* **Codecs** — JSON is always available; msgpack is used when the optional
  ``msgpack`` package is importable (:func:`available_codecs`).  Both codecs
  carry the same message dictionaries; NumPy arrays travel as tagged
  ``{"__nd__": ...}`` objects (base64 text under JSON, raw bytes under
  msgpack) and come back C-contiguous with dtype and shape preserved.

* **Schema** — messages are flat dictionaries with a ``"type"`` field; the
  full request/response catalogue lives in ``docs/serving.md`` and is pinned
  by ``tests/serve/test_transport.py``.  :func:`validate_message` rejects
  frames without a known type before they reach the serving layer.

* **Protocol v2** — requests may carry a caller-chosen ``"id"`` so one
  connection holds many requests in flight and replies correlate out of
  order; the streaming ``enqueue``/``ticket``/``poll``/``flush`` messages
  expose the server's micro-batching API over the socket; ``submit_batch``
  carries N frames in one frame using :class:`ArrayBlock` — a contiguous
  ndarray block with one header and one ``bytes`` region per dtype/shape
  group, decoded with buffer-protocol reads (no per-frame copy, no
  per-frame tag overhead).  v1 messages (no ``id``) remain valid and keep
  their strict request/reply semantics.

* **Scheduling fields** — requests that enter the micro-batcher
  (``submit`` / ``enqueue`` / ``submit_batch``) may carry ``"priority"``
  (a traffic-class name, e.g. ``"interactive"`` / ``"bulk"``) and — per
  frame — ``"deadline_ms"`` (a latency-budget override).  A shed or
  evicted request's ``error`` frame may carry ``"retry_after_ms"``, the
  server's backoff hint.  ``submit_batch`` with ``"stream": true`` asks
  the server to push each frame's ``prediction`` as it resolves,
  correlated by ``"batch"`` (the request id) and ``"index"`` (the frame's
  position), before the final ``predictions`` reply.  All of these are
  optional flat fields on existing message types; absent fields keep the
  pre-scheduling behaviour, so old clients and servers interoperate.

The module is deliberately transport-agnostic: :class:`FrameDecoder` does
incremental parsing over any byte stream, and the ``read_message`` /
``write_message`` coroutines adapt it to asyncio streams.
"""

from __future__ import annotations

import asyncio
import base64
import binascii
import json
import struct
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

try:  # optional dependency: the wire format works without it
    import msgpack  # type: ignore[import-not-found]
except ImportError:  # pragma: no cover - exercised on images without msgpack
    msgpack = None

__all__ = [
    "CODEC_JSON",
    "CODEC_MSGPACK",
    "DEFAULT_MAX_FRAME_BYTES",
    "MESSAGE_TYPES",
    "PROTOCOL_VERSION",
    "SUPPORTED_PROTOCOLS",
    "ArrayBlock",
    "FrameDecoder",
    "FrameTooLarge",
    "ProtocolError",
    "TruncatedFrame",
    "WireError",
    "available_codecs",
    "decode_array",
    "decode_array_block",
    "decode_payload",
    "encode_array",
    "encode_array_block",
    "encode_message",
    "iter_frames",
    "read_message",
    "validate_message",
    "write_message",
]

PROTOCOL_VERSION = 2

#: every protocol generation a v2 front-end can speak (v1 = strict
#: request/reply without ids; v2 adds correlation, streaming and batching)
SUPPORTED_PROTOCOLS = (1, 2)

CODEC_JSON = "json"
CODEC_MSGPACK = "msgpack"

#: codec name -> single-byte frame tag
_CODEC_TAGS: Dict[str, bytes] = {CODEC_JSON: b"J", CODEC_MSGPACK: b"M"}
_TAG_CODECS: Dict[int, str] = {tag[0]: name for name, tag in _CODEC_TAGS.items()}

_HEADER = struct.Struct(">cI")

#: default upper bound on one frame's payload (16 MiB)
DEFAULT_MAX_FRAME_BYTES = 16 * 1024 * 1024

#: every message type the front-end speaks, requests and responses alike
MESSAGE_TYPES = frozenset(
    {
        "hello",
        "ping",
        "pong",
        "submit",
        "prediction",
        "metrics",
        "metrics_report",
        "prometheus",
        "prometheus_report",
        "shutdown",
        "goodbye",
        "error",
        # --- protocol v2: streaming + batching -------------------------
        "enqueue",
        "ticket",
        "poll",
        "flush",
        "flushed",
        "submit_batch",
        "predictions",
        # --- protocol v2: cluster tier (router, migration, flow control)
        "export_user",
        "user_state",
        "import_user",
        "imported",
        "credits",
    }
)

#: message types that exist only in protocol v2.  ``ping``/``pong`` are the
#: router's liveness probe and the migration/credit messages exist for the
#: cluster tier, so none of them are part of the frozen v1 surface — a v1
#: connection gets a correlation-free ``error`` frame back instead.
V2_MESSAGE_TYPES = frozenset(
    {
        "ping",
        "pong",
        "enqueue",
        "ticket",
        "poll",
        "flush",
        "flushed",
        "submit_batch",
        "predictions",
        "export_user",
        "user_state",
        "import_user",
        "imported",
        "credits",
    }
)


class WireError(RuntimeError):
    """Base class of every protocol-level failure."""


class TruncatedFrame(WireError):
    """The stream ended (or a buffer ran out) in the middle of a frame."""


class FrameTooLarge(WireError):
    """A frame announced a payload above the configured maximum."""


class ProtocolError(WireError):
    """A structurally valid frame carried an invalid message."""


def available_codecs() -> Tuple[str, ...]:
    """The codecs this process can encode and decode, JSON first."""
    if msgpack is not None:
        return (CODEC_JSON, CODEC_MSGPACK)
    return (CODEC_JSON,)


# ----------------------------------------------------------------------
# NumPy array tagging
# ----------------------------------------------------------------------
def encode_array(array: np.ndarray, binary: bool) -> dict:
    """Tag an array for transport; ``binary`` keeps the bytes raw (msgpack)."""
    array = np.asarray(array)
    data = array.tobytes()  # always C-order, and ndim-preserving (0-d stays 0-d)
    return {
        "__nd__": True,
        "dtype": array.dtype.str,
        "shape": list(array.shape),
        "data": data if binary else base64.b64encode(data).decode("ascii"),
    }


def decode_array(tagged: dict) -> np.ndarray:
    """Rebuild an array from its tagged form (either codec's).

    Every malformed input — unknown dtype, object dtype, bad base64, a
    byte count that disagrees with dtype/shape — raises
    :class:`ProtocolError`, never a bare NumPy/binascii exception, so the
    connection handler's error path sees one exception family.
    """
    try:
        dtype = np.dtype(tagged["dtype"])
        shape = tuple(int(axis) for axis in tagged["shape"])
        data = tagged["data"]
    except (KeyError, TypeError, ValueError) as error:
        raise ProtocolError(f"malformed array object: {error}") from error
    if dtype.hasobject or dtype.itemsize == 0:
        raise ProtocolError(f"refusing non-fixed-width array dtype {dtype.str!r}")
    try:
        if isinstance(data, str):
            data = base64.b64decode(data.encode("ascii"))
        expected = int(np.prod(shape)) * dtype.itemsize if shape else dtype.itemsize
        if len(data) != expected:
            raise ProtocolError(
                f"array payload holds {len(data)} bytes, dtype/shape require {expected}"
            )
        return np.frombuffer(bytes(data), dtype=dtype).reshape(shape)
    except ProtocolError:
        raise
    except (ValueError, TypeError, binascii.Error) as error:
        raise ProtocolError(f"malformed array payload: {error}") from error


# ----------------------------------------------------------------------
# Contiguous ndarray blocks (protocol v2 batched transport)
# ----------------------------------------------------------------------
class ArrayBlock:
    """An ordered list of arrays encoded as one contiguous block per group.

    Put an ``ArrayBlock`` anywhere in a message to ship N arrays — e.g. the
    point clouds of a ``submit_batch`` — without per-array tag overhead:
    the encoder groups them by ``(dtype, shape)`` and emits **one** header
    plus **one** ``bytes`` region per group, and the decoder rebuilds each
    array as a buffer-protocol *view* into its group's region
    (:func:`np.frombuffer`, no per-frame copy).  Decoded messages carry a
    plain ``list`` of read-only arrays in the original order.
    """

    __slots__ = ("arrays",)

    def __init__(self, arrays: Iterable[np.ndarray]) -> None:
        self.arrays = [np.asarray(array) for array in arrays]


def encode_array_block(arrays: Iterable[np.ndarray], binary: bool) -> dict:
    """Tag N arrays as one dtype/shape-grouped contiguous block."""
    groups: List[dict] = []
    parts: List[List[bytes]] = []
    positions: Dict[Tuple[str, Tuple[int, ...]], int] = {}
    index: List[int] = []
    for array in arrays:
        array = np.asarray(array)
        key = (array.dtype.str, array.shape)
        slot = positions.get(key)
        if slot is None:
            slot = positions[key] = len(groups)
            groups.append({"dtype": array.dtype.str, "shape": list(array.shape), "count": 0})
            parts.append([])
        groups[slot]["count"] += 1
        parts[slot].append(array.tobytes())  # C-order, one copy per array
        index.append(slot)
    for group, chunks in zip(groups, parts):
        data = b"".join(chunks)
        group["data"] = data if binary else base64.b64encode(data).decode("ascii")
    return {"__ndblock__": True, "index": index, "groups": groups}


def decode_array_block(tagged: dict) -> List[np.ndarray]:
    """Rebuild the ordered array list from its grouped block form.

    Each returned array is a **read-only view** into its group's byte
    region (``np.frombuffer`` honours the buffer protocol, so under msgpack
    the payload bytes are never copied).  Every malformed input raises
    :class:`ProtocolError`, mirroring :func:`decode_array`.
    """
    try:
        index = [int(slot) for slot in tagged["index"]]
        raw_groups = list(tagged["groups"])
    except (KeyError, TypeError, ValueError) as error:
        raise ProtocolError(f"malformed array block: {error}") from error
    views: List[np.ndarray] = []
    counts: List[int] = []
    for group in raw_groups:
        try:
            dtype = np.dtype(group["dtype"])
            shape = tuple(int(axis) for axis in group["shape"])
            count = int(group["count"])
            data = group["data"]
        except (KeyError, TypeError, ValueError) as error:
            raise ProtocolError(f"malformed array block group: {error}") from error
        if dtype.hasobject or dtype.itemsize == 0:
            raise ProtocolError(f"refusing non-fixed-width array dtype {dtype.str!r}")
        if count < 0:
            raise ProtocolError("array block group has a negative count")
        if isinstance(data, str):
            try:
                data = base64.b64decode(data.encode("ascii"))
            except (ValueError, binascii.Error) as error:
                raise ProtocolError(f"malformed array block payload: {error}") from error
        per_array = int(np.prod(shape)) * dtype.itemsize if shape else dtype.itemsize
        if len(data) != per_array * count:
            raise ProtocolError(
                f"array block group holds {len(data)} bytes, "
                f"{count} arrays of dtype/shape require {per_array * count}"
            )
        views.append(np.frombuffer(data, dtype=dtype).reshape((count, *shape)))
        counts.append(count)
    if sorted(index) != sorted(
        slot for slot, count in enumerate(counts) for _ in range(count)
    ):
        raise ProtocolError("array block index disagrees with its group counts")
    rows = [0] * len(views)
    arrays: List[np.ndarray] = []
    for slot in index:
        arrays.append(views[slot][rows[slot]])
        rows[slot] += 1
    return arrays


def _tag_arrays(value, binary: bool):
    if isinstance(value, ArrayBlock):
        return encode_array_block(value.arrays, binary)
    if isinstance(value, np.ndarray):
        return encode_array(value, binary)
    if isinstance(value, dict):
        return {key: _tag_arrays(item, binary) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_tag_arrays(item, binary) for item in value]
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    return value


def _untag_arrays(value):
    if isinstance(value, dict):
        if value.get("__nd__"):
            return decode_array(value)
        if value.get("__ndblock__"):
            return decode_array_block(value)
        return {key: _untag_arrays(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_untag_arrays(item) for item in value]
    return value


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------
def validate_message(message: dict) -> dict:
    """Reject messages without a known ``"type"`` before they go anywhere."""
    if not isinstance(message, dict):
        raise ProtocolError(f"message must be a dict, got {type(message).__name__}")
    kind = message.get("type")
    if kind not in MESSAGE_TYPES:
        raise ProtocolError(f"unknown message type {kind!r}")
    return message


def encode_message(
    message: dict,
    codec: str = CODEC_JSON,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> bytes:
    """Serialize one message into a complete frame (header + payload)."""
    validate_message(message)
    if codec == CODEC_JSON:
        payload = json.dumps(_tag_arrays(message, binary=False)).encode()
    elif codec == CODEC_MSGPACK:
        if msgpack is None:
            raise ProtocolError("msgpack codec requested but msgpack is not installed")
        payload = msgpack.packb(_tag_arrays(message, binary=True), use_bin_type=True)
    else:
        raise ProtocolError(f"unknown codec {codec!r}")
    if len(payload) > max_frame_bytes:
        raise FrameTooLarge(
            f"encoded payload of {len(payload)} bytes exceeds the "
            f"{max_frame_bytes}-byte frame limit"
        )
    return _HEADER.pack(_CODEC_TAGS[codec], len(payload)) + payload


def decode_payload(payload: bytes, codec: str) -> dict:
    """Deserialize one frame's payload with the codec its header announced."""
    if codec == CODEC_JSON:
        try:
            raw = json.loads(payload.decode())
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ProtocolError(f"undecodable JSON payload: {error}") from error
    elif codec == CODEC_MSGPACK:
        if msgpack is None:
            raise ProtocolError("received a msgpack frame but msgpack is not installed")
        try:
            raw = msgpack.unpackb(payload, raw=False)
        except Exception as error:  # msgpack raises a family of unpack errors
            raise ProtocolError(f"undecodable msgpack payload: {error}") from error
    else:
        raise ProtocolError(f"unknown codec {codec!r}")
    return validate_message(_untag_arrays(raw))


# ----------------------------------------------------------------------
# Incremental decoding
# ----------------------------------------------------------------------
class FrameDecoder:
    """Incremental frame parser over an arbitrary byte stream.

    Feed chunks with :meth:`feed`; complete messages pop out in order.  The
    decoder enforces the frame limit as soon as a header is visible and
    reports a truncated stream when :meth:`close` is called mid-frame, so
    both socket servers and tests share one strict parsing path.
    """

    def __init__(self, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES) -> None:
        if max_frame_bytes < 1:
            raise ValueError("max_frame_bytes must be >= 1")
        self.max_frame_bytes = max_frame_bytes
        self._buffer = bytearray()

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered but not yet parsed into a complete frame."""
        return len(self._buffer)

    def feed(self, chunk: bytes) -> List[Tuple[dict, str]]:
        """Consume a chunk; return every completed ``(message, codec)``."""
        self._buffer.extend(chunk)
        messages: List[Tuple[dict, str]] = []
        while True:
            if len(self._buffer) < _HEADER.size:
                return messages
            tag, length = _HEADER.unpack_from(self._buffer)
            codec = _TAG_CODECS.get(tag[0])
            if codec is None:
                raise ProtocolError(f"unknown codec tag {tag!r} in frame header")
            if length > self.max_frame_bytes:
                raise FrameTooLarge(
                    f"frame announces {length} bytes, limit is {self.max_frame_bytes}"
                )
            if len(self._buffer) < _HEADER.size + length:
                return messages
            payload = bytes(self._buffer[_HEADER.size : _HEADER.size + length])
            del self._buffer[: _HEADER.size + length]
            messages.append((decode_payload(payload, codec), codec))

    def close(self) -> None:
        """Assert the stream ended on a frame boundary."""
        if self._buffer:
            raise TruncatedFrame(
                f"stream ended with {len(self._buffer)} bytes of an incomplete frame"
            )


# ----------------------------------------------------------------------
# asyncio stream adapters
# ----------------------------------------------------------------------
async def read_message(
    reader: asyncio.StreamReader,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> Optional[Tuple[dict, str]]:
    """Read one framed message; ``None`` on clean EOF between frames.

    EOF inside a frame raises :class:`TruncatedFrame`; an oversized length
    prefix raises :class:`FrameTooLarge` without reading the payload.
    """
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise TruncatedFrame(
            f"stream ended {len(error.partial)} bytes into a frame header"
        ) from error
    tag, length = _HEADER.unpack(header)
    codec = _TAG_CODECS.get(tag[0])
    if codec is None:
        raise ProtocolError(f"unknown codec tag {tag!r} in frame header")
    if length > max_frame_bytes:
        raise FrameTooLarge(f"frame announces {length} bytes, limit is {max_frame_bytes}")
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as error:
        raise TruncatedFrame(
            f"stream ended {len(error.partial)} bytes into a {length}-byte payload"
        ) from error
    return decode_payload(payload, codec), codec


async def write_message(
    writer: asyncio.StreamWriter,
    message: dict,
    codec: str = CODEC_JSON,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> None:
    """Frame and send one message, draining the transport buffer."""
    writer.write(encode_message(message, codec, max_frame_bytes))
    await writer.drain()


def iter_frames(
    data: bytes, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
) -> Iterable[Tuple[dict, str]]:
    """Parse a complete byte string into messages (testing convenience)."""
    decoder = FrameDecoder(max_frame_bytes)
    messages = decoder.feed(data)
    decoder.close()
    return messages

"""Deadline-driven scheduling policy and admission control primitives.

The micro-batcher schedules by **deadline** instead of arrival order: every
request carries an absolute deadline (arrival time plus its traffic class's
latency budget), batches assemble earliest-deadline-first, and a partial
batch closes exactly when its earliest deadline arrives — the per-request
generalization of the old single global ``max_delay_ms``.

Three pieces live here:

* :class:`TrafficClass` — a named latency budget.  The built-in classes are
  ``interactive`` (tight budget: a live pose stream) and ``bulk`` (loose
  budget: an offline replay), mirroring the conflict-aware resource classes
  of RAN serving systems (cf. ACCoRD in PAPERS.md).
* :class:`SchedulingPolicy` — the frozen policy object carried on
  :class:`repro.serve.ServeConfig`: the class table, the default class,
  per-user token-bucket rate limits enforced at the socket front-end, and
  the ``retry_after`` hint shed requests are answered with.
* :class:`TokenBucket` — the per-user admission meter.  Deterministic: it
  refills purely as a function of the injected clock reading, never the
  wall clock, so tests can assert refill behavior exactly.

EDF with finite budgets is starvation-free: a waiting ``bulk`` request's
absolute deadline is fixed, while every newer ``interactive`` arrival gets
a *later* absolute deadline — the bulk request eventually holds the
earliest deadline and rides the next batch.  The fairness suite pins this
property under seeded randomized arrival schedules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

__all__ = ["RateLimited", "SchedulingPolicy", "TokenBucket", "TrafficClass"]

#: the built-in priority class names
INTERACTIVE = "interactive"
BULK = "bulk"


class RateLimited(RuntimeError):
    """Raised when admission control sheds a request.

    Carries the ``retry_after_ms`` hint the shedding side answers with; the
    wire layer copies it onto the correlated error frame so a client can
    back off for exactly that long and retry.
    """

    def __init__(self, message: str, retry_after_ms: Optional[float] = None) -> None:
        super().__init__(message)
        self.retry_after_ms = retry_after_ms


@dataclass(frozen=True)
class TrafficClass:
    """A named latency budget.

    ``budget_ms`` is the time a request of this class may spend waiting for
    batch co-riders: its absolute deadline is ``arrival + budget_ms`` and
    the batcher closes a partial batch no later than that.
    """

    name: str
    budget_ms: float

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValueError("traffic class name must be a non-empty string")
        if self.budget_ms < 0:
            raise ValueError("budget_ms must be non-negative")

    @property
    def budget_s(self) -> float:
        return self.budget_ms / 1000.0


@dataclass(frozen=True)
class SchedulingPolicy:
    """Deadline scheduling and admission control, in one frozen object.

    Attributes
    ----------
    classes:
        The traffic-class table.  Every request names one class (or the
        default); its latency budget becomes the request's deadline.
    default_class:
        Class assumed by requests that name none — ``interactive``, so the
        legacy single-knob configuration keeps its exact behavior.
    rate_limit_per_user:
        Sustained per-user admission rate at the front-end, in requests per
        second (token-bucket refill rate).  ``None`` disables rate limiting.
    rate_limit_burst:
        Bucket capacity: how many requests a user may burst above the
        sustained rate before shedding starts.
    retry_after_ms:
        The backoff hint shed requests are answered with (the ``retry_after``
        contract: the client sleeps this long before retrying).
    """

    classes: Tuple[TrafficClass, ...] = (
        TrafficClass(INTERACTIVE, 5.0),
        TrafficClass(BULK, 50.0),
    )
    default_class: str = INTERACTIVE
    rate_limit_per_user: Optional[float] = None
    rate_limit_burst: float = 8.0
    retry_after_ms: float = 25.0
    _by_name: Dict[str, TrafficClass] = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not self.classes:
            raise ValueError("at least one traffic class is required")
        table = {}
        for traffic_class in self.classes:
            if traffic_class.name in table:
                raise ValueError(f"duplicate traffic class '{traffic_class.name}'")
            table[traffic_class.name] = traffic_class
        if self.default_class not in table:
            raise ValueError(
                f"default_class '{self.default_class}' is not in the class table "
                f"({', '.join(sorted(table))})"
            )
        if self.rate_limit_per_user is not None and self.rate_limit_per_user <= 0:
            raise ValueError("rate_limit_per_user must be positive (or None)")
        if self.rate_limit_burst < 1:
            raise ValueError("rate_limit_burst must be >= 1")
        if self.retry_after_ms <= 0:
            raise ValueError("retry_after_ms must be positive")
        object.__setattr__(self, "_by_name", table)

    @classmethod
    def from_delay(
        cls, max_delay_ms: float, bulk_ratio: float = 10.0, **overrides
    ) -> "SchedulingPolicy":
        """The policy a plain ``max_delay_ms`` configuration expresses.

        ``interactive`` gets exactly the legacy delay budget — so a config
        that never names a class schedules bit-for-bit like the old
        arrival-order batcher — and ``bulk`` gets ``bulk_ratio`` times it.
        """
        return cls(
            classes=(
                TrafficClass(INTERACTIVE, max_delay_ms),
                TrafficClass(BULK, max_delay_ms * bulk_ratio),
            ),
            **overrides,
        )

    def resolve(self, name: Optional[str]) -> TrafficClass:
        """The class for a request naming ``name`` (``None`` = the default)."""
        key = name if name is not None else self.default_class
        try:
            return self._by_name[key]
        except KeyError:
            raise ValueError(
                f"unknown traffic class '{key}' "
                f"(expected one of {', '.join(sorted(self._by_name))})"
            ) from None

    @property
    def class_names(self) -> Tuple[str, ...]:
        return tuple(traffic_class.name for traffic_class in self.classes)

    @property
    def retry_after_s(self) -> float:
        return self.retry_after_ms / 1000.0

    # ------------------------------------------------------------------
    # Wire transport (CLI flags and the serve-config handshake)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "classes": [
                {"name": c.name, "budget_ms": c.budget_ms} for c in self.classes
            ],
            "default_class": self.default_class,
            "rate_limit_per_user": self.rate_limit_per_user,
            "rate_limit_burst": self.rate_limit_burst,
            "retry_after_ms": self.retry_after_ms,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SchedulingPolicy":
        classes = tuple(
            TrafficClass(entry["name"], float(entry["budget_ms"]))
            for entry in payload.get("classes", ())
        )
        kwargs = {
            key: payload[key]
            for key in (
                "default_class",
                "rate_limit_per_user",
                "rate_limit_burst",
                "retry_after_ms",
            )
            if key in payload
        }
        if classes:
            kwargs["classes"] = classes
        return cls(**kwargs)


class TokenBucket:
    """A deterministic token bucket metered on an injected clock.

    The bucket holds up to ``burst`` tokens and refills at ``rate`` tokens
    per second of *clock* time.  Refill is computed lazily from the elapsed
    reading — no background timers — so under a fake clock the balance after
    ``advance(dt)`` is exactly ``min(burst, tokens + dt * rate)``.
    """

    __slots__ = ("rate", "burst", "tokens", "_updated")

    def __init__(self, rate: float, burst: float, now: float = 0.0) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        if burst < 1:
            raise ValueError("burst must be >= 1")
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self._updated = float(now)

    def _refill(self, now: float) -> None:
        elapsed = now - self._updated
        if elapsed > 0:
            self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self._updated = max(self._updated, now)

    def balance(self, now: float) -> float:
        """Tokens available at clock reading ``now``."""
        self._refill(now)
        return self.tokens

    def try_acquire(self, now: float, tokens: float = 1.0) -> bool:
        """Spend ``tokens`` if available; ``False`` means shed the request."""
        self._refill(now)
        if self.tokens >= tokens:
            self.tokens -= tokens
            return True
        return False

    def retry_after_s(self, now: float, tokens: float = 1.0) -> float:
        """Clock seconds until ``tokens`` will be available (0.0 if now)."""
        self._refill(now)
        deficit = tokens - self.tokens
        return max(0.0, deficit / self.rate)

"""Process-per-shard execution: one :class:`PoseServer` per worker process.

The in-process :class:`repro.serve.ShardedPoseServer` proves that sharding
is *correct* (bitwise-identical replay); this module is what makes it
*useful* on a multi-core host.  Each shard runs in its own worker process
and talks to the parent over a picklable request/reply transport:

* **Commands** (:class:`Enqueue`, :class:`EnqueueBatch`, :class:`Flush`,
  :class:`Poll`, :class:`AdaptUsers`, :class:`ForgetUser`,
  :class:`MetricsRequest`, :class:`Shutdown`) are small frozen
  dataclasses; frames travel as raw ``(N, 5)`` point arrays, never as
  live server objects.  :class:`EnqueueBatch` amortizes the queue
  round-trip over N frames — the command surface behind
  ``ProcessShardedPoseServer.enqueue_many`` and the socket front-end's
  batched submits.
* **Replies** carry an :class:`ShardEvents` ledger — every prediction the
  shard resolved and every request it dropped since the last reply — so the
  parent's pending handles resolve without polling.
* The request queue is **bounded** (``channel_depth``); combined with the
  strict one-in-flight request/reply discipline of :class:`ShardProcess`,
  a stalled worker back-pressures its caller instead of buffering without
  limit.
* **Lifecycle** — :meth:`ShardProcess.stop` drains the shard gracefully
  (flush, resolve, exit); a crashed worker is detected mid-call
  (:class:`ShardCrashed`) and :meth:`ShardProcess.restart` brings up a
  fresh process with the same factory.  Per-shard determinism is preserved
  by seeding each worker from :func:`repro.runtime.seed_for_key`, the same
  derivation the sharded dataset generator uses.

The worker body builds its :class:`PoseServer` from a :class:`ShardFactory`
*inside* the child, so under ``fork`` the (potentially large) estimator is
shared copy-on-write and under ``spawn`` it crosses the pickle boundary
exactly once, at start-up.
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Mapping, Optional, Tuple, Union

import numpy as np

from ..core.finetune import FineTuneConfig
from ..core.pipeline import FusePoseEstimator
from ..dataset.loader import ArrayDataset
from ..dataset.sample import PoseDataset
from ..radar.pointcloud import PointCloudFrame
from ..runtime import pool_context, seed_for_key
from .batcher import PendingPrediction
from .config import ServeConfig
from .faults import FaultInjector, RetryPolicy, maybe_injector
from .policy import AdapterPolicy
from .server import PoseServer

__all__ = [
    "AdaptUsers",
    "Enqueue",
    "EnqueueBatch",
    "Enqueued",
    "EnqueuedBatch",
    "Done",
    "ExportUser",
    "Flush",
    "Flushed",
    "ForgetUser",
    "ImportUser",
    "MetricsReply",
    "MetricsRequest",
    "Poll",
    "ShardCrashed",
    "ShardDegraded",
    "ShardEvents",
    "ShardFactory",
    "ShardProcess",
    "ShardRemoteError",
    "Shutdown",
    "Stopped",
    "UserStateReply",
    "WorkerError",
    "shard_worker_main",
]

#: default bound of the per-shard request queue
DEFAULT_CHANNEL_DEPTH = 64

#: default restart budget of one shard worker ("generous": a worker that
#: crashes this many times is systematically broken, not unlucky).
DEFAULT_MAX_RESTARTS = 8

#: default capped backoff between consecutive restarts of one shard.
DEFAULT_RESTART_BACKOFF = RetryPolicy(
    max_attempts=DEFAULT_MAX_RESTARTS + 1, base_delay_s=0.05, max_delay_s=2.0
)


class ShardCrashed(RuntimeError):
    """The worker process died while a command was in flight."""


class ShardDegraded(ShardCrashed):
    """The worker is dead and its restart budget is exhausted.

    A subclass of :class:`ShardCrashed` so existing crash handling still
    fires; supervisors additionally use it to stop restarting and report
    the shard degraded instead.
    """


class ShardRemoteError(RuntimeError):
    """A command raised inside the worker; carries the remote traceback."""


# ----------------------------------------------------------------------
# Picklable command / reply types
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardFactory:
    """Everything a worker needs to build its :class:`PoseServer` shard.

    ``policy`` is the adapter policy every shard serves under; the legacy
    ``adaptation`` field is kept for old pickles and translated on build.
    """

    estimator: FusePoseEstimator
    config: ServeConfig
    adaptation: Optional[FineTuneConfig] = None
    policy: Optional[AdapterPolicy] = None

    def build(self, shard_index: Optional[int] = None) -> PoseServer:
        policy = self.policy
        if policy is None and self.adaptation is not None:
            policy = AdapterPolicy.from_finetune(self.adaptation)
        if policy is not None and shard_index is not None:
            # Every shard spills under its own subdirectory — two shards
            # never share a user (stable hash placement), so this keeps a
            # restarted worker re-attaching exactly its own cohort.
            policy = policy.with_spill_subdir(f"shard{shard_index:03d}")
        return PoseServer(self.estimator, self.config, policy=policy)


@dataclass(frozen=True)
class Enqueue:
    """Enqueue one frame for ``user_id`` (may trigger an in-shard flush).

    ``priority`` names the request's traffic class (``None`` = the config's
    default class); ``deadline_ms`` overrides the class latency budget for
    this one request.
    """

    user_id: Hashable
    points: np.ndarray
    timestamp: float = 0.0
    frame_index: int = 0
    priority: Optional[str] = None
    deadline_ms: Optional[float] = None

    def frame(self) -> PointCloudFrame:
        return PointCloudFrame(
            self.points, timestamp=self.timestamp, frame_index=self.frame_index
        )


@dataclass(frozen=True)
class EnqueueBatch:
    """Enqueue N frames in one command round-trip (one IPC hop for N).

    Frames are enqueued strictly in tuple order, so per-user frame order —
    what streaming fusion depends on — is exactly what the caller sent.
    The reply carries one shard-local sequence id per frame.  ``priority``
    names the traffic class every frame of the batch is scheduled under.
    """

    user_ids: Tuple[Hashable, ...]
    points: Tuple[np.ndarray, ...]
    timestamps: Tuple[float, ...]
    frame_indices: Tuple[int, ...]
    priority: Optional[str] = None

    def frames(self) -> List[PointCloudFrame]:
        return [
            PointCloudFrame(points, timestamp=timestamp, frame_index=frame_index)
            for points, timestamp, frame_index in zip(
                self.points, self.timestamps, self.frame_indices
            )
        ]


@dataclass(frozen=True)
class Flush:
    """Force the shard's pending micro-batch out now."""


@dataclass(frozen=True)
class Poll:
    """Apply the shard's latency deadline (worker-clock ``now``)."""


@dataclass(frozen=True)
class AdaptUsers:
    """Fine-tune personal parameters for a cohort living on this shard."""

    datasets: Mapping[Hashable, Union[PoseDataset, ArrayDataset]]
    epochs: Optional[int] = None


@dataclass(frozen=True)
class ForgetUser:
    """Drop one user's session history and adapted parameters."""

    user_id: Hashable


@dataclass(frozen=True)
class ExportUser:
    """Snapshot one user's session + adapter state (live migration source)."""

    user_id: Hashable
    forget: bool = False


@dataclass(frozen=True)
class ImportUser:
    """Install an exported user state on this shard (migration destination)."""

    state: dict


@dataclass(frozen=True)
class MetricsRequest:
    """Ask for the shard's metrics state and occupancy gauges."""


@dataclass(frozen=True)
class Shutdown:
    """Graceful stop: flush, resolve outstanding handles, exit."""


@dataclass
class ShardEvents:
    """Predictions resolved and requests dropped since the last reply.

    Dropped entries are ``(sequence, reason)`` pairs: the reason the
    shard's batcher recorded (eviction, shutdown) travels with the event so
    the parent's handle — and ultimately the wire error frame a poller
    receives — can say *why* the request died instead of hanging silently.
    """

    resolved: List[Tuple[int, np.ndarray]] = field(default_factory=list)
    dropped: List[Tuple[int, Optional[str]]] = field(default_factory=list)


@dataclass
class Enqueued:
    """Reply to :class:`Enqueue`: the shard-local sequence id of the handle."""

    sequence: int
    events: ShardEvents


@dataclass
class EnqueuedBatch:
    """Reply to :class:`EnqueueBatch`: one outcome per frame, in order.

    ``sequences[i]`` is the frame's shard-local sequence id, or ``None``
    when its enqueue failed — then ``errors[i]`` carries ``(type name,
    detail)``.  Per-frame outcomes keep a mid-batch admission failure
    (``QueueFull`` under the ``reject`` policy) from orphaning the
    already-admitted prefix: those frames stay valid, resolvable requests
    instead of being silently discarded with mutated fusion rings behind
    them.
    """

    sequences: List[Optional[int]]
    errors: List[Optional[Tuple[str, str]]]
    events: ShardEvents


@dataclass
class Flushed:
    """Reply to :class:`Flush` / :class:`Poll`."""

    produced: int
    events: ShardEvents


@dataclass
class Done:
    """Reply to side-effect commands (adaptation, forget)."""

    events: ShardEvents


@dataclass
class UserStateReply:
    """Reply to :class:`ExportUser`: the user-state dict, or ``None``.

    The state is plain arrays and scalars (see
    :mod:`repro.serve.migration`), so it crosses the pickle boundary here
    and the wire unchanged.
    """

    state: Optional[dict]
    events: ShardEvents


@dataclass
class MetricsReply:
    """Reply to :class:`MetricsRequest`.

    ``state`` is a :meth:`repro.serve.ServeMetrics.state_dict` payload; the
    parent rebuilds a :class:`ServeMetrics` from it and aggregates across
    shards exactly as the in-process sharded server does.
    """

    state: dict
    pending: int
    sessions: int
    adapted_parameter_sets: int
    events: ShardEvents


@dataclass
class Stopped:
    """Final reply of a graceful shutdown."""

    events: ShardEvents


@dataclass
class WorkerError:
    """A command failed inside the worker (the shard itself is still up)."""

    message: str
    remote_traceback: str


# ----------------------------------------------------------------------
# Worker body (runs in the child process)
# ----------------------------------------------------------------------
def _collect_events(outstanding: Dict[int, PendingPrediction]) -> ShardEvents:
    """Harvest every handle that resolved or dropped since the last reply."""
    events = ShardEvents()
    for sequence in sorted(outstanding):
        handle = outstanding[sequence]
        if handle.done:
            events.resolved.append((sequence, handle.result(flush=False)))
        elif handle.dropped:
            events.dropped.append((sequence, handle.drop_reason))
        else:
            continue
        del outstanding[sequence]
    return events


def shard_worker_main(
    factory: ShardFactory,
    requests: "multiprocessing.queues.Queue",
    replies: "multiprocessing.queues.Queue",
    shard_index: int,
    seed: Optional[int] = None,
) -> None:
    """The worker loop: build one shard, serve commands until shutdown.

    Runs as the target of a :class:`ShardProcess`; module-level so it
    crosses the pickle boundary under every start method.
    """
    if seed is None:
        seed = seed_for_key("serve-shard", shard_index)
    np.random.seed(seed & 0xFFFFFFFF)
    server = factory.build(shard_index)
    # The fault plan rides the same pickle boundary as every other config
    # field; each worker counts its own enqueued frames, so "crash shard k
    # at frame N" replays identically regardless of parent-side timing.
    injector = maybe_injector(getattr(factory.config, "fault_plan", None))
    shard_name = f"shard{shard_index}"
    outstanding: Dict[int, PendingPrediction] = {}
    while True:
        command = requests.get()
        try:
            if isinstance(command, Shutdown):
                server.flush()
                replies.put(Stopped(events=_collect_events(outstanding)))
                return
            replies.put(
                _dispatch(server, outstanding, command, injector=injector, shard_name=shard_name)
            )
        except Exception as error:  # report, keep serving: shard state is intact
            replies.put(WorkerError(message=str(error), remote_traceback=traceback.format_exc()))


def _maybe_crash(injector: Optional[FaultInjector], shard_name: str) -> None:
    """Fire a scheduled ``worker_crash``: hard process death, no cleanup.

    ``os._exit`` (not ``sys.exit``) models a real crash — no finally blocks,
    no queue flushing, no atexit — which is exactly the failure the parent's
    :class:`ShardCrashed` detection and spill re-attach must survive.
    """
    if injector is not None and injector.check("worker_crash", shard_name) is not None:
        os._exit(1)


def _dispatch(
    server: PoseServer,
    outstanding: Dict[int, PendingPrediction],
    command,
    injector: Optional[FaultInjector] = None,
    shard_name: str = "",
):
    if isinstance(command, Enqueue):
        _maybe_crash(injector, shard_name)
        handle = server.enqueue(
            command.user_id,
            command.frame(),
            priority=command.priority,
            deadline_ms=command.deadline_ms,
        )
        outstanding[handle.sequence] = handle
        return Enqueued(sequence=handle.sequence, events=_collect_events(outstanding))
    if isinstance(command, EnqueueBatch):
        sequences: List[Optional[int]] = []
        errors: List[Optional[Tuple[str, str]]] = []
        for user_id, frame in zip(command.user_ids, command.frames()):
            # Checked per frame, so a mid-batch schedule kills the worker
            # with the batch prefix already admitted — the hardest case for
            # the parent's ticket-resolution invariant.
            _maybe_crash(injector, shard_name)
            try:
                handle = server.enqueue(user_id, frame, priority=command.priority)
            except Exception as error:  # per-frame: the prefix stays valid
                sequences.append(None)
                errors.append((type(error).__name__, str(error)))
                continue
            outstanding[handle.sequence] = handle
            sequences.append(handle.sequence)
            errors.append(None)
        return EnqueuedBatch(
            sequences=sequences, errors=errors, events=_collect_events(outstanding)
        )
    if isinstance(command, Flush):
        return Flushed(produced=server.flush(), events=_collect_events(outstanding))
    if isinstance(command, Poll):
        return Flushed(produced=server.poll(), events=_collect_events(outstanding))
    if isinstance(command, AdaptUsers):
        server.adapt_users(command.datasets, epochs=command.epochs)
        return Done(events=_collect_events(outstanding))
    if isinstance(command, ForgetUser):
        server.forget_user(command.user_id)
        return Done(events=_collect_events(outstanding))
    if isinstance(command, ExportUser):
        state = server.export_user(command.user_id, forget=command.forget)
        # The export's flush may have resolved outstanding handles; the
        # ledger rides along so the parent settles them as usual.
        return UserStateReply(state=state, events=_collect_events(outstanding))
    if isinstance(command, ImportUser):
        server.import_user(command.state)
        return Done(events=_collect_events(outstanding))
    if isinstance(command, MetricsRequest):
        return MetricsReply(
            state=server.metrics.state_dict(),
            pending=server.pending,
            sessions=len(server.sessions),
            adapted_parameter_sets=len(server.registry),
            events=_collect_events(outstanding),
        )
    raise TypeError(f"unknown shard command {type(command).__name__}")


# ----------------------------------------------------------------------
# Parent-side handle
# ----------------------------------------------------------------------
class ShardProcess:
    """Parent-side handle of one shard worker process.

    The handle enforces a strict one-in-flight request/reply discipline
    under an internal lock, which makes it safe to call from the executor
    threads of the asyncio front-end, keeps the bounded request queue from
    ever deepening past one command, and guarantees replies are matched to
    the commands that produced them.
    """

    def __init__(
        self,
        factory: ShardFactory,
        index: int,
        channel_depth: int = DEFAULT_CHANNEL_DEPTH,
        start_method: Optional[str] = None,
        reply_poll_s: float = 0.1,
        max_restarts: Optional[int] = DEFAULT_MAX_RESTARTS,
        restart_backoff: Optional[RetryPolicy] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if channel_depth < 1:
            raise ValueError("channel_depth must be >= 1")
        if max_restarts is not None and max_restarts < 0:
            raise ValueError("max_restarts must be non-negative (or None for unlimited)")
        self.factory = factory
        self.index = index
        self.channel_depth = channel_depth
        self.restarts = 0
        self.max_restarts = max_restarts
        self.restart_backoff = (
            restart_backoff if restart_backoff is not None else DEFAULT_RESTART_BACKOFF
        )
        self._sleep = sleep
        self._reply_poll_s = reply_poll_s
        self._context = pool_context(start_method)
        self._lock = threading.Lock()
        self._process: Optional[multiprocessing.process.BaseProcess] = None
        self._requests = None
        self._replies = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        return self._process is not None and self._process.is_alive()

    @property
    def restart_budget_exhausted(self) -> bool:
        """Has this shard spent its whole restart budget?"""
        return self.max_restarts is not None and self.restarts >= self.max_restarts

    @property
    def degraded(self) -> bool:
        """Dead with no restart budget left: the shard is out of service.

        A degraded shard stops being restarted; its supervisor reports it
        through the ``shards_degraded`` gauge so a router can mark the
        backend down and drain its users to replicas.
        """
        return self.restart_budget_exhausted and not self.alive

    def start(self) -> None:
        if self.alive:
            raise RuntimeError(f"shard {self.index} is already running")
        self._requests = self._context.Queue(maxsize=self.channel_depth)
        self._replies = self._context.Queue()
        self._process = self._context.Process(
            target=shard_worker_main,
            args=(self.factory, self._requests, self._replies, self.index),
            name=f"fuse-serve-shard-{self.index}",
            daemon=True,
        )
        self._process.start()

    def restart(self) -> None:
        """Replace a dead worker with a fresh one (session state is lost).

        Restarts are paced by the shard's capped-backoff
        :class:`RetryPolicy` (a crash-looping worker must not spin the
        host) and bounded by ``max_restarts``: past the budget the shard is
        *degraded* and this raises :class:`ShardDegraded` instead of
        starting another doomed process.
        """
        if self.restart_budget_exhausted:
            raise ShardDegraded(
                f"shard {self.index} exhausted its restart budget "
                f"({self.restarts}/{self.max_restarts}); not restarting"
            )
        self._teardown(graceful=False)
        delay = self.restart_backoff.delay(self.restarts, salt=f"shard{self.index}")
        if delay > 0:
            self._sleep(delay)
        self.restarts += 1
        self.start()

    def stop(self, timeout: float = 5.0) -> Optional[Stopped]:
        """Gracefully drain and stop the worker; returns its final events."""
        with self._lock:
            final: Optional[Stopped] = None
            if self.alive:
                try:
                    reply = self._roundtrip(Shutdown(), timeout=timeout)
                    if isinstance(reply, Stopped):
                        final = reply
                except (ShardCrashed, ShardRemoteError):
                    final = None
            self._teardown(graceful=True, timeout=timeout)
            return final

    def _teardown(self, graceful: bool, timeout: float = 5.0) -> None:
        if self._process is not None:
            self._process.join(timeout if graceful else 0.1)
            if self._process.is_alive():
                self._process.terminate()
                self._process.join(timeout)
            self._process = None
        for channel in (self._requests, self._replies):
            if channel is not None:
                channel.close()
                channel.join_thread()
        self._requests = self._replies = None

    # ------------------------------------------------------------------
    # Command round-trips
    # ------------------------------------------------------------------
    def call(self, command, timeout: Optional[float] = None):
        """Send one command and wait for its reply.

        Raises :class:`ShardCrashed` when the worker dies mid-call (the
        caller decides whether to :meth:`restart`) and
        :class:`ShardRemoteError` when the command failed remotely but the
        worker is still healthy.
        """
        with self._lock:
            if not self.alive:
                if self.degraded:
                    raise ShardDegraded(
                        f"shard {self.index} is degraded (restart budget "
                        f"{self.restarts}/{self.max_restarts} exhausted)"
                    )
                raise ShardCrashed(f"shard {self.index} worker is not running")
            return self._roundtrip(command, timeout=timeout)

    def _roundtrip(self, command, timeout: Optional[float] = None):
        self._requests.put(command)
        waited = 0.0
        while True:
            try:
                reply = self._replies.get(timeout=self._reply_poll_s)
            except queue.Empty:
                waited += self._reply_poll_s
                if not self.alive:
                    raise ShardCrashed(
                        f"shard {self.index} worker died while handling "
                        f"{type(command).__name__}"
                    ) from None
                if timeout is not None and waited >= timeout:
                    raise ShardCrashed(
                        f"shard {self.index} did not reply to "
                        f"{type(command).__name__} within {timeout:.1f}s"
                    ) from None
                continue
            if isinstance(reply, WorkerError):
                raise ShardRemoteError(
                    f"shard {self.index} failed on {type(command).__name__}: "
                    f"{reply.message}\n--- remote traceback ---\n{reply.remote_traceback}"
                )
            return reply

"""Asyncio socket front-end: network ingress for the serving subsystem.

:class:`PoseFrontend` decouples request ingress from shard compute.  It
accepts length-prefixed msgpack/JSON frames (:mod:`repro.serve.transport`)
over TCP or a Unix socket, routes each request to the backend server —
typically a :class:`repro.serve.ProcessShardedPoseServer`, whose
:func:`repro.runtime.shard_for` placement sends the user to its shard
process — and streams results back on the same connection.

Concurrency model (protocol v2, the default):

* the asyncio event loop owns every socket: reads, frame parsing and writes
  never block on model compute;
* a connection is **pipelined**: every request carrying an ``id`` is
  dispatched as its own task (bounded by ``max_in_flight`` per connection)
  and replies carry the request's ``id`` so they may return out of order —
  one client can keep several shards busy through one socket;
* per-shard **FIFO ordering locks** keep each shard's submissions in
  arrival order (queue positions are claimed synchronously at dispatch
  time — :class:`_FifoShardLock`), so a user's frame order — what
  streaming fusion depends on — survives pipelining while different
  shards still execute concurrently;
* the streaming ``enqueue`` path returns a ``ticket`` immediately and the
  completed prediction is **pushed** later, so the cross-user micro-batcher
  finally forms batches from remote traffic instead of being defeated by
  per-frame round-trips; a background poller applies the server's latency
  deadline while tickets are outstanding;
* ``submit_batch`` carries N frames in one frame (contiguous
  :class:`repro.serve.transport.ArrayBlock` payload) and enqueues them with
  one backend batch call per shard — the cheapest way to feed the batcher
  over a socket.

Requests without an ``id`` keep the strict v1 request/reply discipline:
they are served inline, in order, and answered without an ``id`` — a v1
client on a v2 server downgrades gracefully.

Backpressure surfaces exactly like in-process serving: a full shard queue
drops or rejects per :class:`repro.serve.ServeConfig`, and the client sees
a ``prediction``, a pushed resolution, or an ``error`` frame per request.
Framing violations (truncated or oversized frames, unknown codecs) close
the connection after a best-effort ``error`` frame — the stream cannot be
resynchronized.

:class:`AsyncPoseClient` is the matching client used by the examples, the
tests and the benchmark harness.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import stat
from collections import Counter, OrderedDict, deque
from concurrent.futures import ThreadPoolExecutor
from functools import partial
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..radar.pointcloud import PointCloudFrame
from .batcher import FrameDropped, QueueFull
from .clock import MonotonicClock, as_clock
from .faults import FaultInjector, RetryPolicy, maybe_injector
from .metrics import ServeMetrics, merge_expositions
from .scheduling import RateLimited, SchedulingPolicy, TokenBucket
from . import transport
from .transport import (
    CODEC_JSON,
    DEFAULT_MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    SUPPORTED_PROTOCOLS,
    V2_MESSAGE_TYPES,
    ArrayBlock,
    WireError,
    available_codecs,
    encode_message,
    read_message,
    write_message,
)

__all__ = [
    "AsyncPoseClient",
    "PoseFrontend",
    "ServerClosing",
    "ServerError",
    "SocketServerBase",
]

#: default bound on concurrently dispatched requests per connection
DEFAULT_MAX_IN_FLIGHT = 32


class ServerClosing(RuntimeError):
    """The front-end refused a request because it is shutting down."""


class _TruncatedByFault(Exception):
    """Internal write-loop signal: an injected truncation closed the writer."""


class _FifoShardLock:
    """A FIFO lock whose queue position is taken *synchronously*.

    ``asyncio.Lock`` wakes waiters first-in first-out, but a task only
    joins the queue when it *awaits* ``acquire`` — a dispatch path with an
    await before the acquire (``submit_batch`` fans out one task per
    shard) would lose its arrival-order slot to a later request that
    reaches its lock without suspending.  :meth:`claim` registers the
    position at dispatch time, synchronously; the holder awaits the claim
    when it is ready to enqueue.  Per-shard submission order therefore
    always equals request arrival order.
    """

    __slots__ = ("_locked", "_waiters")

    def __init__(self) -> None:
        self._locked = False
        self._waiters: "deque[asyncio.Future]" = deque()

    def claim(self) -> asyncio.Future:
        """Take the next queue position now; await the result to hold it."""
        claim = asyncio.get_running_loop().create_future()
        if self._locked or self._waiters:
            self._waiters.append(claim)
        else:
            self._locked = True
            claim.set_result(None)
        return claim

    async def acquire(self, claim: asyncio.Future) -> None:
        try:
            await claim
        except asyncio.CancelledError:
            if claim.done() and not claim.cancelled():
                self.release()  # granted concurrently with the cancellation
            else:
                with contextlib.suppress(ValueError):
                    self._waiters.remove(claim)
            raise

    def release(self) -> None:
        while self._waiters:
            waiter = self._waiters.popleft()
            if not waiter.done():  # skip claims their tasks abandoned
                waiter.set_result(None)
                return
        self._locked = False

    @contextlib.asynccontextmanager
    async def held(self, claim: asyncio.Future):
        await self.acquire(claim)
        try:
            yield
        finally:
            self.release()


class _Connection:
    """Per-connection pipelining state, owned by the event loop."""

    __slots__ = (
        "reader",
        "writer",
        "codec",
        "outbox",
        "window",
        "inflight",
        "tickets",
        "tasks",
        "credits",
        "deferred",
    )

    def __init__(
        self, reader, writer, max_in_flight: int, push_credits: Optional[int] = None
    ) -> None:
        self.reader = reader
        self.writer = writer
        self.codec = CODEC_JSON
        #: replies and pushes serialized onto the socket by the write
        #: loop, as ``(message, codec, on_written)`` triples (``None`` is
        #: the shutdown sentinel): every reply is encoded in the codec of
        #: *its own* request, and ``on_written`` releases the dispatch
        #: window slot
        self.outbox: "asyncio.Queue[Optional[tuple]]" = asyncio.Queue()
        #: bounds requests between read and *written reply*: acquired in
        #: the read loop (a saturated window stops reading) and released
        #: by the write loop after the reply hits the socket, so a client
        #: that never reads cannot grow the reply queue without limit —
        #: its socket buffer fills, writes stall, the window stays full
        #: and reads stop.
        self.window = asyncio.Semaphore(max_in_flight)
        #: ids currently being served (duplicate detection)
        self.inflight: Set = set()
        #: streaming ledger: ticket id -> (user_id, pending handle, codec)
        self.tickets: "OrderedDict" = OrderedDict()
        self.tasks: Set[asyncio.Task] = set()
        #: remaining push credits (``None`` disables flow control): every
        #: server-initiated push spends one; the client replenishes with a
        #: ``credits`` grant as it consumes pushes
        self.credits = push_credits
        #: pushes awaiting credit, in completion order
        self.deferred: "deque[tuple]" = deque()


class SocketServerBase:
    """Shared asyncio socket-serving machinery: listener plus pipelining.

    Owns everything about speaking the wire protocol to *clients*: the
    listener lifecycle, the per-connection read/write loops, the pipelined
    dispatch window, the synchronous-claim FIFO ordering locks, the
    credit-based push flow control, and the protocol-generic message types
    (``hello``, ``ping``, ``credits``, ``shutdown``).

    :class:`PoseFrontend` plugs one backend server underneath;
    :class:`repro.serve.router.PoseRouter` plugs a fleet of backend
    connections instead.  Subclasses implement :meth:`_dispatch_extra`
    (their message types), optionally :meth:`_hello_extra` (their hello
    fields) and the four lifecycle hooks.
    """

    def __init__(
        self,
        host: Optional[str] = None,
        port: int = 0,
        unix_path: Optional[str] = None,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        max_in_flight: int = DEFAULT_MAX_IN_FLIGHT,
        protocol: int = PROTOCOL_VERSION,
        allow_remote_shutdown: bool = False,
        push_credits: Optional[int] = None,
    ) -> None:
        if (host is None) == (unix_path is None):
            raise ValueError("provide exactly one of host / unix_path")
        if protocol not in SUPPORTED_PROTOCOLS:
            raise ValueError(f"protocol must be one of {SUPPORTED_PROTOCOLS}")
        if max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1")
        if push_credits is not None and push_credits < 1:
            raise ValueError("push_credits must be >= 1, or None for no flow control")
        self.host = host
        self.port = port
        self.unix_path = unix_path
        self.max_frame_bytes = max_frame_bytes
        self.max_in_flight = max_in_flight
        self.protocol = protocol
        self.allow_remote_shutdown = allow_remote_shutdown
        self.push_credits = push_credits
        self._listener: Optional[asyncio.AbstractServer] = None
        self._closing = asyncio.Event()
        self._connections: Set[_Connection] = set()
        self._locks: Dict[Hashable, _FifoShardLock] = {}
        self.connections_served = 0
        self.requests_served = 0
        self.predictions_pushed = 0
        self.protocol_errors = 0
        #: deterministic fault injection over this server's wire surfaces
        #: (``blackhole``/``reply_latency`` at dispatch, ``corrupt_frame``/
        #: ``truncate_frame`` in the write loop); subclasses set it
        self.fault_injector: Optional[FaultInjector] = None

    # ------------------------------------------------------------------
    # Lifecycle hooks (subclasses)
    # ------------------------------------------------------------------
    async def _before_listen(self) -> None:
        """Runs before the socket binds (allocate resources)."""

    async def _after_listen(self) -> None:
        """Runs once the socket is bound (start background tasks)."""

    async def _before_unbind(self) -> None:
        """Runs at the start of :meth:`stop` (cancel background tasks)."""

    async def _after_unbind(self) -> None:
        """Runs at the end of :meth:`stop` (release resources)."""

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self):
        """The bound address: ``(host, port)`` for TCP, the path for Unix."""
        if self._listener is None:
            raise RuntimeError("front-end is not started")
        if self.unix_path is not None:
            return self.unix_path
        return self._listener.sockets[0].getsockname()[:2]

    async def start(self) -> "SocketServerBase":
        """Bind the socket and start accepting connections."""
        if self._listener is not None:
            raise RuntimeError("front-end is already started")
        await self._before_listen()
        if self.unix_path is not None:
            # A previous listener that exited without stop() leaves its
            # socket file behind; binding over a stale socket (never a
            # regular file) is the conventional Unix-server behaviour.
            if stat.S_ISSOCK(_path_mode(self.unix_path)):
                os.unlink(self.unix_path)
            self._listener = await asyncio.start_unix_server(
                self._handle_connection, path=self.unix_path
            )
        else:
            self._listener = await asyncio.start_server(
                self._handle_connection, host=self.host, port=self.port
            )
            self.port = self._listener.sockets[0].getsockname()[1]
        await self._after_listen()
        return self

    async def stop(self) -> None:
        """Stop accepting, close the listener and release resources.

        A backend server underneath is *not* closed: the caller owns its
        lifecycle (the CLI closes it after the front-end stops).
        """
        self._closing.set()
        await self._before_unbind()
        if self._listener is not None:
            self._listener.close()
            await self._listener.wait_closed()
            self._listener = None
            if self.unix_path is not None and stat.S_ISSOCK(_path_mode(self.unix_path)):
                with contextlib.suppress(OSError):
                    os.unlink(self.unix_path)
        # Hang up on lingering connections: their read loops observe EOF and
        # tear down cleanly instead of being cancelled mid-read when the
        # event loop exits.
        for conn in list(self._connections):
            conn.writer.close()
        await self._after_unbind()

    async def serve_until_closed(self) -> None:
        """Block until :meth:`stop` is called (or a remote shutdown)."""
        await self._closing.wait()
        await self.stop()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections_served += 1
        conn = _Connection(reader, writer, self.max_in_flight, self.push_credits)
        self._connections.add(conn)
        write_loop = asyncio.ensure_future(self._write_loop(conn))
        try:
            while True:
                try:
                    framed = await read_message(reader, self.max_frame_bytes)
                except asyncio.CancelledError:
                    break  # event-loop shutdown mid-read: clean up as on EOF
                except (ConnectionError, OSError):
                    break  # peer reset underneath us
                except WireError as error:
                    # The stream cannot be resynchronized after a framing
                    # fault: report and hang up.
                    self.protocol_errors += 1
                    conn.outbox.put_nowait((_error_message(error), conn.codec, None))
                    break
                if framed is None:
                    break  # clean EOF between frames
                message, codec = framed
                conn.codec = codec  # fallback for unparseable-frame errors
                request_id = message.get("id") if self.protocol >= 2 else None
                if request_id is None:
                    # Strict v1 discipline: serve inline, reply without id.
                    # Barrier behind in-flight pipelined requests first —
                    # this inline path would otherwise reach its shard lock
                    # before an earlier request's task has even started,
                    # overtaking it in the enqueue order.
                    if conn.tasks:
                        await asyncio.gather(*list(conn.tasks), return_exceptions=True)
                    reply = await self._serve(conn, message, None, codec)
                    if reply is None:  # blackholed
                        continue
                    conn.outbox.put_nowait((reply, codec, None))
                    self.requests_served += 1
                    if reply["type"] == "goodbye":
                        self._closing.set()
                        break
                    continue
                if not isinstance(request_id, (int, str)):
                    conn.outbox.put_nowait(
                        (
                            _error_message(
                                transport.ProtocolError("request id must be an int or str")
                            ),
                            codec,
                            None,
                        )
                    )
                    continue
                if request_id in conn.inflight:
                    conn.outbox.put_nowait(
                        (
                            _error_message(
                                transport.ProtocolError(
                                    f"request id {request_id!r} is already in flight"
                                ),
                                request_id=request_id,
                            ),
                            codec,
                            None,
                        )
                    )
                    continue
                # Acquire the window in the read loop: a full window stops
                # reads (backpressure) and guarantees dispatch tasks are
                # created — and therefore hit the shard locks — in arrival
                # order.
                await conn.window.acquire()
                conn.inflight.add(request_id)
                task = asyncio.ensure_future(
                    self._serve_pipelined(conn, message, request_id, codec)
                )
                conn.tasks.add(task)
                task.add_done_callback(conn.tasks.discard)
        finally:
            # Half-close support: finish in-flight requests and flush their
            # replies before hanging up.
            if conn.tasks:
                await asyncio.gather(*list(conn.tasks), return_exceptions=True)
            conn.outbox.put_nowait(None)
            # Suppress everything: an unexpected write-loop fault must not
            # skip the connection teardown below.
            with contextlib.suppress(Exception, asyncio.CancelledError):
                await write_loop
            self._connections.discard(conn)
            conn.tickets.clear()
            conn.deferred.clear()
            writer.close()
            # Suppress CancelledError too: stop() tears connections down
            # mid-wait and the close has already been issued above.
            with contextlib.suppress(ConnectionError, BrokenPipeError, asyncio.CancelledError):
                await writer.wait_closed()

    async def _write_loop(self, conn: _Connection) -> None:
        """Serialize every reply and push of one connection onto its socket."""
        while True:
            item = await conn.outbox.get()
            if item is None:
                return
            message, codec, on_written = item
            try:
                await self._write_frame(conn, message, codec)
            except _TruncatedByFault:
                # The injected truncation already closed the writer; free
                # the slot and drain like any other dead connection.
                if on_written is not None:
                    on_written()
                await self._drain_outbox(conn)
                return
            except WireError as error:
                # The reply itself cannot be framed (e.g. it encodes past
                # max_frame_bytes) but the socket is healthy: substitute a
                # correlated error frame so the client gets an exception
                # instead of awaiting a reply that never comes.
                self.protocol_errors += 1
                fallback = _error_message(error)
                for key in ("id", "ticket"):
                    if key in message:
                        fallback[key] = message[key]
                try:
                    await write_message(conn.writer, fallback, codec, self.max_frame_bytes)
                except (OSError, WireError):
                    conn.writer.close()  # give the read loop its EOF
                    if on_written is not None:
                        on_written()
                    await self._drain_outbox(conn)
                    return
                if on_written is not None:
                    on_written()
            except OSError:
                # Connection is gone — any socket-level fault, not just the
                # ConnectionError family (a NAT-vanished peer surfaces as
                # ETIMEDOUT): close, then drain the outbox — still
                # releasing window slots so the read loop never wedges on a
                # window that cannot refill — and let the read side
                # observe EOF and tear down.
                conn.writer.close()
                if on_written is not None:
                    on_written()
                await self._drain_outbox(conn)
                return
            else:
                if on_written is not None:
                    on_written()

    async def _write_frame(self, conn: _Connection, message: dict, codec: str) -> None:
        """Write one frame, applying any injected outgoing-frame faults.

        ``corrupt_frame`` rules (matched against the outgoing message type)
        mangle payload bytes while the frame header survives, so the peer
        decodes garbage and sees a :class:`ProtocolError`; ``truncate_frame``
        rules write a prefix of the frame and close the connection, so the
        peer sees :class:`TruncatedFrame`.  Both counters advance on every
        written frame, keeping schedules aligned with the reply stream.
        """
        if self.fault_injector is not None:
            kind = message.get("type")
            corrupt = self.fault_injector.check("corrupt_frame", kind)
            truncate = self.fault_injector.check("truncate_frame", kind)
            if corrupt is not None or truncate is not None:
                data = encode_message(message, codec, self.max_frame_bytes)
                if corrupt is not None:
                    conn.writer.write(FaultInjector.corrupt_bytes(data))
                    await conn.writer.drain()
                    return
                conn.writer.write(FaultInjector.truncate_bytes(data))
                await conn.writer.drain()
                conn.writer.close()  # mid-frame hangup: the peer cannot resync
                raise _TruncatedByFault()
        await write_message(conn.writer, message, codec, self.max_frame_bytes)

    @staticmethod
    async def _drain_outbox(conn: _Connection) -> None:
        """Consume the outbox of a dead connection, freeing window slots."""
        while True:
            leftover = await conn.outbox.get()
            if leftover is None:
                return
            if leftover[2] is not None:
                leftover[2]()

    async def _serve_pipelined(
        self, conn: _Connection, message: dict, request_id, codec: str
    ) -> None:
        try:
            reply = await self._serve(conn, message, request_id, codec)
        except BaseException:
            # Cancellation (frontend teardown): free the slot so the read
            # loop never wedges on a window that cannot refill.
            conn.inflight.discard(request_id)
            conn.window.release()
            raise
        conn.inflight.discard(request_id)
        if reply is None:  # blackholed: drop the reply but free the slot
            conn.window.release()
            return
        # The slot frees when the reply is *written*, not when it is
        # queued: that ties the dispatch window to socket backpressure.
        conn.outbox.put_nowait(
            (dict(reply, id=reply.get("id", request_id)), codec, conn.window.release)
        )
        self.requests_served += 1
        if reply["type"] == "goodbye":
            self._closing.set()

    async def _serve(
        self, conn: _Connection, message: dict, request_id, codec: str
    ) -> Optional[dict]:
        try:
            reply = await self._dispatch(conn, message, request_id, codec)
        except (FrameDropped, QueueFull, RateLimited, ServerClosing) as error:
            reply = _error_message(error, request_id=request_id)
        except Exception as error:  # backend fault: report, keep serving
            self.protocol_errors += 1
            reply = _error_message(error, request_id=request_id)
        if self.fault_injector is not None:
            # Both checks advance their per-(op, target) counters on every
            # served request, keyed by the *request* type, so schedules
            # align with the request stream.
            kind = message.get("type")
            latency = self.fault_injector.check("reply_latency", kind)
            if latency is not None:
                await asyncio.sleep(latency.delay_s)
            if self.fault_injector.check("blackhole", kind) is not None:
                return None  # swallow the reply: the client never hears back
        return reply

    # ------------------------------------------------------------------
    # Dispatch: protocol-generic message types
    # ------------------------------------------------------------------
    async def _dispatch(self, conn: _Connection, message: dict, request_id, codec: str) -> dict:
        kind = message["type"]
        if self.protocol < 2 and kind in V2_MESSAGE_TYPES:
            raise transport.ProtocolError(
                f"message type {kind!r} requires protocol v2, front-end speaks v1"
            )
        if kind == "hello":
            reply = {
                "type": "hello",
                "protocol": self.protocol,
                "protocols": [v for v in SUPPORTED_PROTOCOLS if v <= self.protocol],
                "codecs": list(available_codecs()),
                "max_in_flight": self.max_in_flight,
                # push flow control: the per-connection credit budget, or
                # None when this server pushes without credit accounting
                "push_credits": self.push_credits,
            }
            reply.update(self._hello_extra())
            return reply
        if kind == "ping":
            return self._pong()
        if kind == "credits":
            return self._grant_credits(conn, message)
        if kind == "shutdown":
            if not self.allow_remote_shutdown:
                raise ServerClosing("remote shutdown is disabled on this front-end")
            return {"type": "goodbye"}
        return await self._dispatch_extra(conn, message, request_id, codec)

    def _hello_extra(self) -> dict:
        """Subclass-specific fields merged into the ``hello`` reply."""
        return {}

    def _pong(self) -> dict:
        """The ``ping`` reply; subclasses may attach health fields."""
        return {"type": "pong"}

    async def _dispatch_extra(
        self, conn: _Connection, message: dict, request_id, codec: str
    ) -> dict:
        raise transport.ProtocolError(
            f"front-end cannot serve message type {message['type']!r}"
        )

    # ------------------------------------------------------------------
    # Push flow control
    # ------------------------------------------------------------------
    def _push(self, conn: _Connection, message: dict, codec: str) -> None:
        """Queue a server-initiated frame, spending one push credit.

        With flow control off (``push_credits=None``) this is a plain
        outbox put.  Otherwise a push with no credit left is *deferred* —
        held server-side, in completion order, until the client grants
        more — so a slow consumer bounds the reply queue at its own pace
        instead of growing it without limit.
        """
        self.predictions_pushed += 1
        if conn.credits is None:
            conn.outbox.put_nowait((message, codec, None))
            return
        if conn.credits > 0:
            conn.credits -= 1
            conn.outbox.put_nowait((message, codec, None))
        else:
            conn.deferred.append((message, codec))

    def _grant_credits(self, conn: _Connection, message: dict) -> dict:
        """Apply a ``credits`` grant and release deferred pushes in order."""
        try:
            grant = int(message.get("grant", 0))
        except (TypeError, ValueError) as error:
            raise transport.ProtocolError(f"malformed credits grant: {error}") from error
        if grant < 0:
            raise transport.ProtocolError("credits grant must be >= 0")
        if conn.credits is not None:
            conn.credits += grant
            while conn.credits > 0 and conn.deferred:
                deferred_message, deferred_codec = conn.deferred.popleft()
                conn.credits -= 1
                conn.outbox.put_nowait((deferred_message, deferred_codec, None))
        return {"type": "credits", "available": conn.credits}

    # ------------------------------------------------------------------
    # FIFO ordering locks
    # ------------------------------------------------------------------
    def _fifo_lock(self, key: Hashable) -> _FifoShardLock:
        """The FIFO ordering lock of ``key`` (a shard index or a backend
        name): per-key submission order equals request arrival order even
        under pipelining, because claims are taken synchronously at
        dispatch time."""
        lock = self._locks.get(key)
        if lock is None:
            lock = self._locks[key] = _FifoShardLock()
        return lock


class PoseFrontend(SocketServerBase):
    """Socket front-end over any server with the :class:`PoseServer` façade.

    Parameters
    ----------
    server:
        The backend: a :class:`repro.serve.ProcessShardedPoseServer` for a
        process-per-shard deployment, or any object with ``submit`` /
        ``enqueue`` / ``poll`` / ``flush`` / ``metrics_snapshot`` /
        ``to_prometheus`` (the in-process servers work too, serialized
        through a single executor thread).
    host / port:
        TCP listening address, or
    unix_path:
        Unix-domain socket path (mutually exclusive with ``host``).
    max_frame_bytes:
        Per-frame payload bound enforced before any payload is read.
    parallelism:
        Executor threads for backend calls.  Defaults to the backend's
        ``num_shards`` when the backend declares ``parallel_safe = True``
        (the process-per-shard server does: each shard's commands
        serialize on their own lock) and to 1 otherwise — the in-process
        servers are single-threaded by design and must never see
        concurrent calls.  More threads than shards buys nothing: each
        shard serializes its own commands.
    max_in_flight:
        Bound on concurrently dispatched requests per connection
        (protocol v2 pipelining).  When a connection's window is full the
        front-end stops reading from it, so the socket's own buffers are
        the only queue ahead of the dispatch layer.
    protocol:
        Highest protocol generation to speak (default 2).  ``protocol=1``
        restores the strict one-request-in-flight behaviour: request ids
        are ignored and the v2 message types are rejected.
    poll_interval_s:
        Cadence of the background poller that applies the backend's
        micro-batch latency deadline while streaming tickets are
        outstanding.  Defaults to the backend's ``config.max_delay_s``
        (5 ms for a default :class:`repro.serve.ServeConfig`).
    allow_remote_shutdown:
        Honour the ``shutdown`` message type (handy for examples and tests;
        leave off for real deployments).
    push_credits:
        Per-connection credit budget for server-initiated pushes (the
        streaming ``enqueue`` resolutions).  ``None`` — the default —
        pushes unconditionally, the pre-credit behaviour; an integer
        defers pushes beyond the budget until the client grants more with
        a ``credits`` frame (:class:`AsyncPoseClient` grants
        automatically as it consumes pushes).
    clock:
        Time source for admission control (token-bucket refill).  Any
        zero-argument callable returning seconds, or a
        :class:`repro.serve.Clock`; defaults to a monotonic clock.  Tests
        inject a :class:`repro.serve.FakeClock` to make rate-limit refill
        deterministic.

    Admission control follows the backend's
    :class:`repro.serve.SchedulingPolicy` (``server.config.scheduler``):
    when ``rate_limit_per_user`` is set, each user spends one token per
    frame at the front door and an exhausted bucket sheds the request
    with a correlated ``error`` frame carrying ``retry_after_ms`` —
    before the request ever touches a shard lock or the backend.
    """

    #: bound on distinct per-user token buckets held at once (LRU evicted)
    MAX_TRACKED_USERS = 4096

    def __init__(
        self,
        server,
        host: Optional[str] = None,
        port: int = 0,
        unix_path: Optional[str] = None,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        parallelism: Optional[int] = None,
        max_in_flight: int = DEFAULT_MAX_IN_FLIGHT,
        protocol: int = PROTOCOL_VERSION,
        poll_interval_s: Optional[float] = None,
        allow_remote_shutdown: bool = False,
        push_credits: Optional[int] = None,
        clock: Optional[Callable[[], float]] = None,
        fault_injector: Optional[FaultInjector] = None,
    ) -> None:
        super().__init__(
            host=host,
            port=port,
            unix_path=unix_path,
            max_frame_bytes=max_frame_bytes,
            max_in_flight=max_in_flight,
            protocol=protocol,
            allow_remote_shutdown=allow_remote_shutdown,
            push_credits=push_credits,
        )
        self.server = server
        if poll_interval_s is None:
            config = getattr(server, "config", None)
            poll_interval_s = getattr(config, "max_delay_s", None) or 0.005
        if poll_interval_s <= 0:
            raise ValueError("poll_interval_s must be positive")
        self.poll_interval_s = poll_interval_s
        if parallelism is None:
            if getattr(server, "parallel_safe", False):
                parallelism = int(getattr(server, "num_shards", 1) or 1)
            else:
                parallelism = 1
        if parallelism < 1:
            raise ValueError("parallelism must be >= 1")
        self.parallelism = parallelism
        self._executor: Optional[ThreadPoolExecutor] = None
        self._poller: Optional[asyncio.Task] = None
        self.clock = as_clock(clock) if clock is not None else MonotonicClock()
        config = getattr(server, "config", None)
        scheduler = getattr(config, "scheduler", None)
        self.scheduler: SchedulingPolicy = (
            scheduler if scheduler is not None else SchedulingPolicy()
        )
        #: front-door admission counters (shed requests live here, not in
        #: the backend: a shed request never reaches a shard)
        self.admission = ServeMetrics(clock=self.clock)
        self._buckets: "OrderedDict[Hashable, TokenBucket]" = OrderedDict()
        # Explicit injector wins; otherwise the backend config's fault plan
        # governs this front-end's wire surfaces too (one --fault-plan flag
        # drives the whole deployment).
        self.fault_injector = (
            fault_injector
            if fault_injector is not None
            else maybe_injector(getattr(config, "fault_plan", None))
        )

    # ------------------------------------------------------------------
    # Lifecycle hooks
    # ------------------------------------------------------------------
    async def _before_listen(self) -> None:
        self._executor = ThreadPoolExecutor(
            max_workers=self.parallelism, thread_name_prefix="fuse-frontend"
        )

    async def _after_listen(self) -> None:
        if self.protocol >= 2:
            self._poller = asyncio.ensure_future(self._poll_loop())

    async def _before_unbind(self) -> None:
        if self._poller is not None:
            self._poller.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._poller
            self._poller = None

    async def _after_unbind(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _hello_extra(self) -> dict:
        policy = getattr(self.server, "policy", None)
        return {
            "shards": int(getattr(self.server, "num_shards", 1) or 1),
            # adapter_policy lets a client discover how this deployment
            # personalizes (scope, rank, tier budgets) without a side
            # channel; None when the backend predates AdapterPolicy.
            "adapter_policy": policy.to_dict() if policy is not None else None,
            # the traffic classes, budgets and rate limits this deployment
            # schedules under — clients pick a priority from these
            "scheduling": self.scheduler.to_dict(),
        }

    async def _dispatch_extra(
        self, conn: _Connection, message: dict, request_id, codec: str
    ) -> dict:
        kind = message["type"]
        if kind == "submit":
            return await self._submit(message)
        if kind == "enqueue":
            return await self._enqueue(conn, message, request_id, codec)
        if kind == "poll":
            produced = await self._run_blocking(self.server.poll)
            self._sweep()
            return {"type": "flushed", "produced": int(produced)}
        if kind == "flush":
            produced = await self._run_blocking(self.server.flush)
            self._sweep()
            return {"type": "flushed", "produced": int(produced)}
        if kind == "submit_batch":
            return await self._submit_batch(conn, message, request_id, codec)
        if kind == "metrics":
            snapshot = await self._run_blocking(self.server.metrics_snapshot)
            # Overlay the front door's admission counters: a shed request
            # never reached the backend, so only this tier knows about it.
            snapshot = dict(snapshot)
            snapshot["shed"] = snapshot.get("shed", 0) + self.admission.shed
            return {"type": "metrics_report", "metrics": snapshot}
        if kind == "prometheus":
            text = await self._run_blocking(self.server.to_prometheus)
            if self.admission.shed:
                text = merge_expositions(
                    [(text, None), (self.admission.to_prometheus(), {"tier": "frontend"})]
                )
            return {"type": "prometheus_report", "text": text}
        if kind == "export_user":
            return await self._export_user(message)
        if kind == "import_user":
            return await self._import_user(message)
        return await super()._dispatch_extra(conn, message, request_id, codec)

    @staticmethod
    def _parse_frame(frame: dict) -> PointCloudFrame:
        points = np.asarray(frame["points"], dtype=float)
        timestamp = float(frame.get("timestamp", 0.0))
        frame_index = int(frame.get("frame_index", 0))
        return PointCloudFrame(points, timestamp=timestamp, frame_index=frame_index)

    def _pong(self) -> dict:
        """Pong with the backend's health: a degraded backend (a shard past
        its restart budget) answers pings but advertises it, so a router's
        probe can mark it down and drain its users to replicas."""
        reply = {"type": "pong"}
        if getattr(self.server, "degraded", False):
            reply["degraded"] = True
        return reply

    def _shard_lock(self, user_id: Hashable) -> _FifoShardLock:
        """The FIFO ordering lock of the user's shard: per-shard submission
        order equals request arrival order even under pipelining (claims
        are taken synchronously at dispatch time)."""
        shard_index = getattr(self.server, "shard_index", None)
        index = shard_index(user_id) if callable(shard_index) else 0
        return self._shard_lock_by_index(index)

    def _shard_lock_by_index(self, index: int) -> _FifoShardLock:
        return self._fifo_lock(index)

    # ------------------------------------------------------------------
    # Admission control
    # ------------------------------------------------------------------
    def _bucket(self, user: Hashable, now: float) -> TokenBucket:
        """The user's token bucket, created full on first sight (LRU-bounded)."""
        bucket = self._buckets.get(user)
        if bucket is None:
            while len(self._buckets) >= self.MAX_TRACKED_USERS:
                self._buckets.popitem(last=False)
            bucket = self._buckets[user] = TokenBucket(
                self.scheduler.rate_limit_per_user,
                self.scheduler.rate_limit_burst,
                now=now,
            )
        else:
            self._buckets.move_to_end(user)
        return bucket

    def _shed(self, user: Hashable, bucket: TokenBucket, now: float, tokens: float) -> None:
        """Record the shed and raise the correlated ``RateLimited``."""
        self.admission.record_shed()
        retry_after_ms = max(
            bucket.retry_after_s(now, tokens) * 1000.0, self.scheduler.retry_after_ms
        )
        raise RateLimited(
            f"user {user!r} exceeded {self.scheduler.rate_limit_per_user:g} "
            f"requests/s (burst {self.scheduler.rate_limit_burst:g})",
            retry_after_ms=retry_after_ms,
        )

    def _admit(self, user: Hashable, tokens: float = 1.0) -> None:
        """Charge the user's bucket or shed the request, before any backend
        work: a rate-limited frame must not consume a shard queue slot."""
        if self.scheduler.rate_limit_per_user is None:
            return
        now = self.clock.now()
        bucket = self._bucket(user, now)
        if not bucket.try_acquire(now, tokens):
            self._shed(user, bucket, now, tokens)

    def _admit_all(self, users: Sequence[Hashable]) -> None:
        """Admit a batch atomically: every user's frames fit their bucket,
        or the whole batch is shed without spending anyone's tokens."""
        if self.scheduler.rate_limit_per_user is None:
            return
        now = self.clock.now()
        counts = Counter(users)
        buckets = {user: self._bucket(user, now) for user in counts}
        for user, tokens in counts.items():
            if buckets[user].balance(now) < tokens:
                self._shed(user, buckets[user], now, tokens)
        for user, tokens in counts.items():
            buckets[user].try_acquire(now, tokens)

    def _backend_call(self, method: str, priority, deadline_ms=None):
        """The backend method, with scheduling kwargs bound when present.

        Plain calls stay kwarg-free so any object with the bare
        ``submit``/``enqueue`` signature still works as a backend.
        """
        fn = getattr(self.server, method)
        kwargs = {}
        if priority is not None:
            kwargs["priority"] = priority
        if deadline_ms is not None:
            kwargs["deadline_ms"] = deadline_ms
        return partial(fn, **kwargs) if kwargs else fn

    async def _submit(self, message: dict) -> dict:
        if self._closing.is_set():
            raise ServerClosing("front-end is shutting down")
        try:
            user = message["user"]
            cloud = self._parse_frame(message["frame"])
        except (KeyError, TypeError, ValueError) as error:
            raise transport.ProtocolError(f"malformed submit message: {error}") from error
        priority, deadline_ms = _parse_scheduling(message)
        self._admit(user)
        loop = asyncio.get_running_loop()
        start = loop.time()
        submit = self._backend_call("submit", priority, deadline_ms)
        lock = self._shard_lock(user)
        async with lock.held(lock.claim()):
            joints = await self._run_blocking(submit, user, cloud)
        self._sweep()
        return {
            "type": "prediction",
            "user": user,
            "joints": np.asarray(joints),
            "latency_ms": (loop.time() - start) * 1000.0,
        }

    async def _enqueue(self, conn: _Connection, message: dict, request_id, codec: str) -> dict:
        if self._closing.is_set():
            raise ServerClosing("front-end is shutting down")
        if request_id is None:
            raise transport.ProtocolError(
                "enqueue requires a request id (it doubles as the ticket)"
            )
        if request_id in conn.tickets:
            raise transport.ProtocolError(
                f"ticket {request_id!r} is still outstanding on this connection"
            )
        try:
            user = message["user"]
            cloud = self._parse_frame(message["frame"])
        except (KeyError, TypeError, ValueError) as error:
            raise transport.ProtocolError(f"malformed enqueue message: {error}") from error
        priority, deadline_ms = _parse_scheduling(message)
        self._admit(user)
        enqueue = self._backend_call("enqueue", priority, deadline_ms)
        lock = self._shard_lock(user)
        async with lock.held(lock.claim()):
            handle = await self._run_blocking(enqueue, user, cloud)
        # Register before sweeping: this very enqueue may have completed a
        # micro-batch, in which case its own resolution is pushed right away.
        conn.tickets[request_id] = (user, handle, codec)
        self._sweep()
        return {"type": "ticket", "user": user, "ticket": request_id}

    async def _submit_batch(
        self, conn: _Connection, message: dict, request_id, codec: str
    ) -> dict:
        if self._closing.is_set():
            raise ServerClosing("front-end is shutting down")
        try:
            users = list(message["users"])
            frames = message["frames"]
            points = list(frames["points"])
            timestamps = list(frames.get("timestamps") or [0.0] * len(points))
            frame_indices = list(frames.get("frame_indices") or [0] * len(points))
        except (KeyError, TypeError, ValueError) as error:
            raise transport.ProtocolError(
                f"malformed submit_batch message: {error}"
            ) from error
        if not users or not (len(users) == len(points) == len(timestamps) == len(frame_indices)):
            raise transport.ProtocolError(
                "submit_batch requires equally sized, non-empty users/frames lists"
            )
        try:
            items: List[Tuple[Hashable, PointCloudFrame]] = [
                (
                    user,
                    PointCloudFrame(
                        np.asarray(cloud, dtype=float),
                        timestamp=float(timestamp),
                        frame_index=int(frame_index),
                    ),
                )
                for user, cloud, timestamp, frame_index in zip(
                    users, points, timestamps, frame_indices
                )
            ]
        except (TypeError, ValueError) as error:
            raise transport.ProtocolError(
                f"malformed submit_batch frame: {error}"
            ) from error
        priority, _ = _parse_scheduling(message)
        # Streamed mode: push each frame's prediction the moment its handle
        # resolves (correlated by ``batch``/``index``), ahead of the final
        # ``predictions`` reply.  Needs a request id to correlate against.
        stream = bool(message.get("stream")) and request_id is not None
        self._admit_all(users)
        loop = asyncio.get_running_loop()
        start = loop.time()

        by_shard: Dict[int, List[int]] = {}
        shard_index = getattr(self.server, "shard_index", None)
        for position, (user, _) in enumerate(items):
            index = shard_index(user) if callable(shard_index) else 0
            by_shard.setdefault(index, []).append(position)

        handles: List = [None] * len(items)

        # Claim every involved shard's queue position NOW, synchronously —
        # the fan-out below runs as separate tasks, and a later request
        # that reaches its shard lock without suspending must not overtake
        # this batch's frames on any shard.
        claims = {
            index: self._shard_lock_by_index(index).claim() for index in sorted(by_shard)
        }

        async def enqueue_shard(index: int, positions: List[int]) -> None:
            shard_items = [items[p] for p in positions]
            async with self._shard_lock_by_index(index).held(claims[index]):
                got = await self._run_blocking(
                    self._enqueue_many_blocking, shard_items, priority
                )
            for position, handle in zip(positions, got):
                handles[position] = handle

        # Settle every shard before surfacing a failure: a sibling shard's
        # fault must not orphan half-registered handles mid-flight.
        outcomes = await asyncio.gather(
            *(enqueue_shard(index, positions) for index, positions in sorted(by_shard.items())),
            return_exceptions=True,
        )
        for outcome in outcomes:
            if isinstance(outcome, BaseException):
                raise outcome

        resolutions: List = [None] * len(items)

        async def resolve_shard(positions: List[int]) -> None:
            if not stream:
                resolved = await self._run_blocking(
                    self._resolve_handles_blocking, [handles[p] for p in positions]
                )
                for position, value in zip(positions, resolved):
                    resolutions[position] = value
                return
            # Streamed: resolve one handle at a time so each completed
            # frame is pushed as soon as it exists — the first resolution
            # flushes the micro-batch, the rest are plain reads.
            for position in positions:
                resolved = await self._run_blocking(
                    self._resolve_handles_blocking, [handles[position]]
                )
                value = resolutions[position] = resolved[0]
                if not isinstance(value, Exception):
                    self._push(
                        conn,
                        {
                            "type": "prediction",
                            "user": items[position][0],
                            "batch": request_id,
                            "index": position,
                            "joints": np.asarray(value),
                            "pushed": True,
                        },
                        codec,
                    )

        await asyncio.gather(
            *(resolve_shard(positions) for _, positions in sorted(by_shard.items()))
        )
        self._sweep()

        results: List[dict] = []
        joints: List[np.ndarray] = []
        for user, value in zip(users, resolutions):
            if isinstance(value, Exception):
                results.append(
                    {"ok": False, "user": user, "error": type(value).__name__, "detail": str(value)}
                )
            else:
                results.append({"ok": True, "user": user})
                joints.append(np.asarray(value))
        return {
            "type": "predictions",
            "results": results,
            "joints": ArrayBlock(joints),
            "latency_ms": (loop.time() - start) * 1000.0,
        }

    def _enqueue_many_blocking(
        self,
        items: Sequence[Tuple[Hashable, PointCloudFrame]],
        priority: Optional[str] = None,
    ):
        enqueue_many = getattr(self.server, "enqueue_many", None)
        if enqueue_many is not None:
            if priority is not None:
                return enqueue_many(items, priority=priority)
            return enqueue_many(items)
        from .server import enqueue_each

        if priority is not None:
            return enqueue_each(self.server, items, priority=priority)
        return enqueue_each(self.server, items)

    @staticmethod
    def _resolve_handles_blocking(handles: Sequence) -> List:
        resolved: List = []
        for handle in handles:
            if isinstance(handle, Exception):  # rejected at enqueue time
                resolved.append(handle)
                continue
            try:
                resolved.append(handle.result(flush=True))
            except (FrameDropped, QueueFull) as error:
                resolved.append(error)
        return resolved

    # ------------------------------------------------------------------
    # Live user migration
    # ------------------------------------------------------------------
    async def _export_user(self, message: dict) -> dict:
        try:
            user = message["user"]
        except KeyError as error:
            raise transport.ProtocolError(f"malformed export_user message: {error}") from error
        forget = bool(message.get("forget", False))
        # Under the user's shard lock: the export drains (flushes) the
        # shard first, and no later frame of this user may slip in between
        # the drain and the snapshot.
        lock = self._shard_lock(user)
        async with lock.held(lock.claim()):
            state = await self._run_blocking(self.server.export_user, user, forget)
        self._sweep()  # the drain may have resolved outstanding tickets
        return {"type": "user_state", "user": user, "state": state}

    async def _import_user(self, message: dict) -> dict:
        state = message.get("state")
        if not isinstance(state, dict):
            raise transport.ProtocolError("import_user requires a state mapping")
        user = state.get("user")
        lock = self._shard_lock(user)
        async with lock.held(lock.claim()):
            user = await self._run_blocking(self.server.import_user, state)
        return {"type": "imported", "user": user}

    # ------------------------------------------------------------------
    # Streaming resolution
    # ------------------------------------------------------------------
    def _sweep(self) -> None:
        """Push every resolved or dropped ticket of every connection.

        Runs on the event loop after any backend call that can resolve
        handles (a flush inside an enqueue, an explicit poll/flush, a
        submit's co-rider batch) — never blocks: ``result(flush=False)`` on
        a done handle is a plain attribute read.
        """
        for conn in self._connections:
            if not conn.tickets:
                continue
            completed = [
                ticket
                for ticket, (_, handle, _codec) in conn.tickets.items()
                if handle.done or handle.dropped
            ]
            for ticket in completed:
                user, handle, codec = conn.tickets.pop(ticket)
                if handle.dropped:
                    reason = (
                        getattr(handle, "drop_reason", None)
                        or "backpressure or shard restart"
                    )
                    push = _error_message(
                        FrameDropped(
                            f"request {ticket!r} of user {user!r} was dropped "
                            f"({reason})",
                            retry_after_ms=self.scheduler.retry_after_ms,
                        )
                    )
                    push["ticket"] = ticket
                else:
                    push = {
                        "type": "prediction",
                        "user": user,
                        "ticket": ticket,
                        "joints": np.asarray(handle.result(flush=False)),
                        "pushed": True,
                    }
                self._push(conn, push, codec)

    async def _poll_loop(self) -> None:
        """Apply the backend's latency deadline while tickets are pending."""
        while not self._closing.is_set():
            await asyncio.sleep(self.poll_interval_s)
            if not any(conn.tickets for conn in self._connections):
                continue
            try:
                await self._run_blocking(self.server.poll)
            except ServerClosing:
                return
            except Exception:
                pass  # backend hiccup: the next tick retries
            # Sweep even after a failed poll: a crashed shard records its
            # drops in the handles before the poll raises, and those drop
            # notifications must still reach the waiting clients.
            self._sweep()

    async def _run_blocking(self, fn, *args):
        if self._executor is None:
            raise ServerClosing("front-end is not running")
        return await asyncio.get_running_loop().run_in_executor(self._executor, fn, *args)


def _parse_scheduling(message: dict):
    """Pull ``priority`` / ``deadline_ms`` off a request message."""
    priority = message.get("priority")
    if priority is not None and not isinstance(priority, str):
        raise transport.ProtocolError("priority must be a traffic class name")
    deadline_ms = message.get("deadline_ms")
    if deadline_ms is not None:
        try:
            deadline_ms = float(deadline_ms)
        except (TypeError, ValueError) as error:
            raise transport.ProtocolError(f"malformed deadline_ms: {error}") from error
    return priority, deadline_ms


def _error_message(error: Exception, request_id=None) -> dict:
    if isinstance(error, ServerError):
        # A relayed backend error (router tier): keep the *origin* class
        # name so a client's RateLimited backoff works through the relay.
        message = {"type": "error", "error": error.error, "detail": error.detail}
    else:
        message = {"type": "error", "error": type(error).__name__, "detail": str(error)}
    retry_after_ms = getattr(error, "retry_after_ms", None)
    if retry_after_ms is not None:
        # Shedding contract: the client may retry this request after the
        # hinted delay (admission control, drop_oldest eviction).
        message["retry_after_ms"] = float(retry_after_ms)
    if request_id is not None:
        message["id"] = request_id
    return message


def _path_mode(path: str) -> int:
    """The path's stat mode, 0 when it does not exist."""
    try:
        return os.stat(path).st_mode
    except OSError:
        return 0


class ServerError(RuntimeError):
    """An ``error`` frame from the server, with its structured fields.

    ``error`` is the server-side exception class name (``"RateLimited"``,
    ``"FrameDropped"``, ...), ``retry_after_ms`` the shedding contract's
    retry hint when the server attached one.  ``str(exc)`` keeps the
    pre-structured ``server error <name>: <detail>`` wording.
    """

    def __init__(self, error: str, detail: str, retry_after_ms: Optional[float] = None):
        super().__init__(f"server error {error}: {detail}")
        self.error = error
        self.detail = detail
        self.retry_after_ms = retry_after_ms


class AsyncPoseClient:
    """Asyncio client of a :class:`PoseFrontend` socket.

    Protocol v2: every request carries a connection-unique ``id``, a reader
    task demultiplexes replies by ``id`` (out-of-order safe) and pushed
    ``prediction`` frames by ``ticket``, so one connection can hold many
    requests in flight:

    * :meth:`submit_many` pipelines ``submit`` requests under a bounded
      in-flight window;
    * :meth:`stream` rides the ``enqueue``/``ticket`` path — frames join
      the server's cross-user micro-batches and resolutions are pushed
      back as they complete;
    * :meth:`submit_batch` ships N frames in one contiguous
      :class:`repro.serve.transport.ArrayBlock` frame.

    Replies without an ``id`` (a v1 server) resolve the oldest outstanding
    request — exactly the strict-ordering discipline v1 guarantees — so the
    same client speaks to either protocol generation.  ``codec`` selects
    msgpack when both sides have it; the server always answers in the codec
    of the request.
    """

    def __init__(
        self,
        codec: Optional[str] = None,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        reconnect: bool = False,
        auto_credits: bool = True,
        rate_limit_retries: int = 4,
    ) -> None:
        if rate_limit_retries < 0:
            raise ValueError("rate_limit_retries must be >= 0")
        self.codec = codec if codec is not None else available_codecs()[-1]
        self.max_frame_bytes = max_frame_bytes
        #: opt-in: re-dial (with the connect call's bounded backoff) and
        #: replay the hello when a request finds the reader dead
        self.reconnect = reconnect
        #: grant push credits back automatically as pushes are consumed
        self.auto_credits = auto_credits
        #: extra attempts when the server sheds with ``RateLimited``: the
        #: client honours the reply's ``retry_after_ms`` hint between tries
        self.rate_limit_retries = rate_limit_retries
        self.unmatched_replies = 0
        self.reconnects = 0
        self.rate_limited_retries_performed = 0
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._reader_task: Optional[asyncio.Task] = None
        self._send_lock = asyncio.Lock()
        self._pending: "OrderedDict[object, asyncio.Future]" = OrderedDict()
        self._tickets: Dict[object, asyncio.Future] = {}
        #: streamed submit_batch callbacks, keyed by the batch's request id
        self._streams: Dict[object, Callable[[dict], None]] = {}
        self._next_id = 0
        self._server_protocol: Optional[int] = None
        self._read_error: Optional[Exception] = None
        self._opener = None
        self._dial_policy = RetryPolicy(max_attempts=1, base_delay_s=0.05, max_delay_s=1.0)
        self._redial_lock = asyncio.Lock()
        self._hello_done = False
        self._push_budget: Optional[int] = None
        self._push_consumed = 0

    # ------------------------------------------------------------------
    # Connection
    # ------------------------------------------------------------------
    async def connect_unix(
        self,
        path: str,
        retries: int = 0,
        backoff_s: float = 0.05,
        max_backoff_s: float = 1.0,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> "AsyncPoseClient":
        """Connect to a Unix socket, optionally retrying with backoff.

        ``retries`` extra attempts are spaced by an exponentially growing
        delay (``backoff_s``, doubled per attempt, capped at
        ``max_backoff_s``) — enough to absorb the race between launching
        ``fuse-serve`` and its socket appearing, without spinning.  An
        explicit ``retry_policy`` (:class:`repro.serve.RetryPolicy`)
        replaces all three knobs, adding deterministic seeded jitter.
        """
        return await self._connect(
            lambda: asyncio.open_unix_connection(path),
            self._dial_policy_from(retries, backoff_s, max_backoff_s, retry_policy),
        )

    async def connect_tcp(
        self,
        host: str,
        port: int,
        retries: int = 0,
        backoff_s: float = 0.05,
        max_backoff_s: float = 1.0,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> "AsyncPoseClient":
        """Connect over TCP, optionally retrying with bounded backoff."""
        return await self._connect(
            lambda: asyncio.open_connection(host, port),
            self._dial_policy_from(retries, backoff_s, max_backoff_s, retry_policy),
        )

    @staticmethod
    def _dial_policy_from(
        retries: int,
        backoff_s: float,
        max_backoff_s: float,
        retry_policy: Optional[RetryPolicy],
    ) -> RetryPolicy:
        """The legacy knobs expressed as a :class:`RetryPolicy` (the legacy
        schedule — ``backoff_s`` doubled per attempt, capped — is exactly
        the policy's jitter-free exponential)."""
        if retry_policy is not None:
            return retry_policy
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if backoff_s <= 0 or max_backoff_s <= 0:
            raise ValueError("backoff delays must be positive")
        return RetryPolicy(
            max_attempts=retries + 1, base_delay_s=backoff_s, max_delay_s=max_backoff_s
        )

    async def _connect(self, opener, retry_policy: RetryPolicy) -> "AsyncPoseClient":
        # Remember how to dial: an opt-in reconnecting client re-dials with
        # the same opener and backoff schedule when its reader dies.
        self._opener = opener
        self._dial_policy = retry_policy
        for attempt in range(retry_policy.max_attempts):
            try:
                self._reader, self._writer = await opener()
                break
            except (ConnectionError, FileNotFoundError, OSError) as error:
                if attempt == retry_policy.max_attempts - 1:
                    raise ConnectionError(
                        f"could not connect after {retry_policy.max_attempts} "
                        f"attempt(s): {error}"
                    ) from error
                await asyncio.sleep(retry_policy.delay(attempt, salt="dial"))
        self._reader_task = asyncio.ensure_future(self._read_loop())
        return self

    async def close(self) -> None:
        if self._reader_task is not None:
            self._reader_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._reader_task
            self._reader_task = None
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass
            self._reader = self._writer = None
        self._fail_outstanding(ConnectionError("client closed"))

    async def __aenter__(self) -> "AsyncPoseClient":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # Reply demultiplexing
    # ------------------------------------------------------------------
    async def _read_loop(self) -> None:
        error: Exception = ConnectionError("server closed the connection")
        try:
            while True:
                framed = await read_message(self._reader, self.max_frame_bytes)
                if framed is None:
                    break
                self._route(framed[0])
        except asyncio.CancelledError:
            self._fail_outstanding(ConnectionError("client closed"))
            raise
        except (WireError, ConnectionError, OSError) as caught:
            error = caught
        self._read_error = error
        self._fail_outstanding(error)

    def _route(self, message: dict) -> None:
        """One incoming frame: a correlated reply, a push, or unmatched."""
        request_id = message.get("id")
        if request_id is not None and request_id in self._pending:
            self._resolve(self._pending.pop(request_id), message)
            return
        ticket = message.get("ticket")
        if ticket is not None and ticket in self._tickets:
            self._resolve(self._tickets.pop(ticket), message)
            self._note_push()
            return
        batch = message.get("batch")
        if batch is not None and batch in self._streams:
            # An incremental per-frame push of a streamed submit_batch:
            # hand it to the batch's callback, keep the request pending.
            with contextlib.suppress(Exception):  # a faulty callback must
                self._streams[batch](message)  # not kill the read loop
            self._note_push()
            return
        if request_id is None and ticket is None:
            if message["type"] == "error" and (self._server_protocol or 0) >= 2:
                # A v2 server only ever sends an uncorrelated error for a
                # connection-level fault (an unparseable frame) and hangs
                # up right after — blaming the oldest request would point
                # the caller at the wrong submission.
                self._fail_outstanding(
                    RuntimeError(
                        f"server error {message['error']}: {message['detail']}"
                    )
                )
                return
            if self._pending:
                # A v1 server answers strictly in order and without ids:
                # the reply belongs to the oldest outstanding request.
                _, future = self._pending.popitem(last=False)
                self._resolve(future, message)
                return
        self.unmatched_replies += 1

    @staticmethod
    def _resolve(future: asyncio.Future, message: dict) -> None:
        if future.done():
            return
        if message["type"] == "error":
            future.set_exception(
                ServerError(
                    message["error"],
                    message["detail"],
                    retry_after_ms=message.get("retry_after_ms"),
                )
            )
        else:
            future.set_result(message)

    def _fail_outstanding(self, error: Exception) -> None:
        for future in list(self._pending.values()) + list(self._tickets.values()):
            if not future.done():
                future.set_exception(error)
        self._pending.clear()
        self._tickets.clear()

    def _note_push(self) -> None:
        """Account one consumed push; replenish the server's credits.

        Fire-and-forget at the half-budget mark — granting per push would
        double every push's round-trips, while waiting for the budget to
        empty would stall the server's push stream on the grant's
        round-trip latency.
        """
        if self._push_budget is None or not self.auto_credits:
            return
        self._push_consumed += 1
        threshold = max(1, self._push_budget // 2)
        if self._push_consumed >= threshold:
            grant = self._push_consumed
            self._push_consumed = 0
            asyncio.ensure_future(self._grant_quietly(grant))

    async def _grant_quietly(self, grant: int) -> None:
        with contextlib.suppress(Exception):
            await self.grant_credits(grant)

    def _claim_id(self) -> int:
        self._next_id += 1
        return self._next_id

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------
    async def request(self, message: dict) -> dict:
        """Send one request and await its correlated reply.

        Raises on an ``error`` reply.  Many requests may be in flight at
        once; replies resolve by ``id`` (or in order against a v1 server).
        """
        if self._reader is None or self._writer is None:
            raise RuntimeError("client is not connected")
        if self._reader_task is not None and self._reader_task.done():
            if not (self.reconnect and self._opener is not None):
                # The reader died (framing fault, reset): registering a
                # future now would await a reply nothing can ever deliver.
                raise ConnectionError(
                    f"connection is broken: {self._read_error or 'reader stopped'}"
                )
            await self._redial()
        request_id = message.get("id")
        if request_id is None:
            request_id = self._claim_id()
            message = {**message, "id": request_id}
        future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        try:
            async with self._send_lock:
                await write_message(self._writer, message, self.codec, self.max_frame_bytes)
            return await future
        finally:
            self._pending.pop(request_id, None)

    async def request_retrying(self, message: dict) -> dict:
        """Send one request, honouring the server's shedding contract.

        A reply of ``error == "RateLimited"`` is retried up to
        ``rate_limit_retries`` extra times, sleeping the reply's
        ``retry_after_ms`` hint between attempts; every other error raises
        immediately, exactly like :meth:`request`.
        """
        attempts = 0
        while True:
            try:
                return await self.request(dict(message))
            except ServerError as error:
                if error.error != "RateLimited" or attempts >= self.rate_limit_retries:
                    raise
                attempts += 1
                self.rate_limited_retries_performed += 1
                await asyncio.sleep((error.retry_after_ms or 25.0) / 1000.0)

    async def _redial(self) -> None:
        """Re-dial a dead connection and replay the hello handshake.

        Outstanding requests of the old connection have already failed
        (the dying reader failed them); only *new* requests ride the new
        socket.  Serialized: concurrent requests that all found the reader
        dead perform one redial between them.
        """
        async with self._redial_lock:
            if self._reader_task is not None and not self._reader_task.done():
                return  # a concurrent request already redialed
            writer = self._writer
            self._reader = self._writer = None
            self._reader_task = None
            if writer is not None:
                writer.close()
                with contextlib.suppress(ConnectionError, BrokenPipeError, OSError):
                    await writer.wait_closed()
            self._read_error = None
            self._push_consumed = 0
            await self._connect(self._opener, self._dial_policy)
            self.reconnects += 1
            if self._hello_done:
                # Re-announce the protocol and refresh the negotiated
                # fields (the server's push-credit budget in particular).
                await self.hello()

    async def hello(self) -> dict:
        reply = await self.request({"type": "hello", "protocol": PROTOCOL_VERSION})
        try:
            self._server_protocol = int(reply.get("protocol", 1))
        except (TypeError, ValueError):
            self._server_protocol = None
        budget = reply.get("push_credits")
        self._push_budget = int(budget) if isinstance(budget, int) else None
        self._push_consumed = 0
        self._hello_done = True
        return reply

    async def ping(self) -> bool:
        return (await self.request({"type": "ping"}))["type"] == "pong"

    @staticmethod
    def _frame_payload(frame: PointCloudFrame) -> dict:
        return {
            "points": frame.points,
            "timestamp": frame.timestamp,
            "frame_index": frame.frame_index,
        }

    @staticmethod
    def _scheduling_fields(
        message: dict, priority: Optional[str], deadline_ms: Optional[float]
    ) -> dict:
        if priority is not None:
            message["priority"] = priority
        if deadline_ms is not None:
            message["deadline_ms"] = float(deadline_ms)
        return message

    async def submit(
        self,
        user_id,
        frame: PointCloudFrame,
        priority: Optional[str] = None,
        deadline_ms: Optional[float] = None,
    ) -> np.ndarray:
        """Submit one frame; returns the ``(joints, 3)`` prediction.

        ``priority`` names one of the server's traffic classes
        (``"interactive"`` / ``"bulk"`` by default) and ``deadline_ms``
        overrides the class's latency budget for this one frame.  A
        rate-limited reply is retried with the server's backoff hint.
        """
        message = self._scheduling_fields(
            {"type": "submit", "user": user_id, "frame": self._frame_payload(frame)},
            priority,
            deadline_ms,
        )
        reply = await self.request_retrying(message)
        return np.asarray(reply["joints"])

    async def submit_many(
        self,
        user_id,
        frames: Sequence[PointCloudFrame],
        max_in_flight: int = 8,
        priority: Optional[str] = None,
        deadline_ms: Optional[float] = None,
    ) -> List[np.ndarray]:
        """Pipeline many submits under a bounded in-flight window.

        Frames are sent in order on this one connection (the front-end's
        per-shard FIFO locks preserve that order into the serving layer),
        up to ``max_in_flight`` awaiting replies at any moment.  Returns
        the predictions in frame order.
        """
        if max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1")
        window = asyncio.Semaphore(max_in_flight)
        results: List[Optional[np.ndarray]] = [None] * len(frames)

        async def one(index: int, frame: PointCloudFrame) -> None:
            try:
                results[index] = await self.submit(
                    user_id, frame, priority=priority, deadline_ms=deadline_ms
                )
            finally:
                window.release()

        tasks: List[asyncio.Task] = []
        try:
            for index, frame in enumerate(frames):
                await window.acquire()
                tasks.append(asyncio.ensure_future(one(index, frame)))
            await asyncio.gather(*tasks)
        except BaseException:
            for task in tasks:
                task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)
            raise
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Streaming (enqueue / ticket / push)
    # ------------------------------------------------------------------
    async def enqueue(
        self,
        user_id,
        frame: PointCloudFrame,
        priority: Optional[str] = None,
        deadline_ms: Optional[float] = None,
    ) -> asyncio.Future:
        """Enqueue one frame; returns a future for the pushed prediction.

        The returned future resolves with the ``(joints, 3)`` array when
        the server pushes the completed prediction (batch full, a poll
        deadline, or an explicit :meth:`flush`); it raises if the request
        was dropped under backpressure.  ``priority`` / ``deadline_ms``
        select the frame's traffic class and budget; a rate-limited reply
        is retried (fresh ticket per attempt) with the server's backoff
        hint.
        """
        payload = self._scheduling_fields(
            {"type": "enqueue", "user": user_id, "frame": self._frame_payload(frame)},
            priority,
            deadline_ms,
        )
        attempts = 0
        loop = asyncio.get_running_loop()
        while True:
            ticket = self._claim_id()
            push: asyncio.Future = loop.create_future()
            # Register before sending: the push may beat the ticket reply
            # when this enqueue completes a micro-batch inside the server.
            self._tickets[ticket] = push
            try:
                await self.request({**payload, "id": ticket})
            except BaseException as error:
                self._tickets.pop(ticket, None)
                if (
                    isinstance(error, ServerError)
                    and error.error == "RateLimited"
                    and attempts < self.rate_limit_retries
                ):
                    attempts += 1
                    self.rate_limited_retries_performed += 1
                    await asyncio.sleep((error.retry_after_ms or 25.0) / 1000.0)
                    continue
                raise
            return push

    async def poll(self) -> int:
        """Apply the server's latency deadline; returns predictions produced."""
        return int((await self.request({"type": "poll"}))["produced"])

    async def flush(self) -> int:
        """Force the server's pending micro-batches out now."""
        return int((await self.request({"type": "flush"}))["produced"])

    async def stream(
        self,
        user_id,
        frames: Sequence[PointCloudFrame],
        max_in_flight: int = 8,
        flush: bool = True,
        return_errors: bool = False,
        priority: Optional[str] = None,
        deadline_ms: Optional[float] = None,
    ) -> List:
        """Stream frames through the server's micro-batcher, in order.

        Each frame is enqueued (joining cross-user micro-batches on the
        server) with at most ``max_in_flight`` unresolved tickets; the
        final partial batch is flushed unless ``flush=False`` (e.g. when
        co-riding clients or the server's poll deadline will flush it).
        Returns the predictions in frame order.  Every ticket is awaited
        even when some frames fail (dropped under backpressure), so
        successful predictions are never abandoned mid-stream; a failed
        frame raises after the stream settles — or, with
        ``return_errors=True``, yields the error object in its slot.
        """
        if max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1")
        futures: List[asyncio.Future] = []
        for index, frame in enumerate(frames):
            if index >= max_in_flight:
                with contextlib.suppress(Exception):
                    # Window pacing only; failures surface when collected.
                    await self._await_push(futures[index - max_in_flight])
            futures.append(
                await self.enqueue(
                    user_id, frame, priority=priority, deadline_ms=deadline_ms
                )
            )
        if flush and frames:
            await self.flush()
        outcomes: List = []
        first_error: Optional[Exception] = None
        for future in futures:
            try:
                outcomes.append(await self._await_push(future))
            except Exception as error:
                outcomes.append(error)
                if first_error is None:
                    first_error = error
        if first_error is not None and not return_errors:
            raise first_error
        return outcomes

    @staticmethod
    async def _await_push(future: asyncio.Future) -> np.ndarray:
        message = await future
        return np.asarray(message["joints"])

    # ------------------------------------------------------------------
    # Batched submits
    # ------------------------------------------------------------------
    async def submit_batch(
        self,
        items: Sequence[Tuple[Hashable, PointCloudFrame]],
        return_errors: bool = False,
        priority: Optional[str] = None,
        on_result: Optional[Callable[[int, Hashable, np.ndarray], None]] = None,
    ) -> List:
        """Submit N ``(user_id, frame)`` pairs in one wire frame.

        Point clouds travel as one contiguous
        :class:`repro.serve.transport.ArrayBlock` (one header + one bytes
        region per dtype/shape group).  Returns the predictions in item
        order; a frame dropped under backpressure raises — or, with
        ``return_errors=True``, yields the error object in its slot.

        ``priority`` names the traffic class every frame of the batch
        rides under.  ``on_result`` opts into *streamed* results: the
        server pushes each frame's prediction as its micro-batch resolves
        and the callback fires as ``on_result(index, user_id, joints)``,
        ahead of the final aggregate reply this method still returns.
        """
        if not items:
            raise ValueError("at least one (user, frame) item is required")
        message = {
            "type": "submit_batch",
            "users": [user for user, _ in items],
            "frames": {
                "points": ArrayBlock([frame.points for _, frame in items]),
                "timestamps": [float(frame.timestamp) for _, frame in items],
                "frame_indices": [int(frame.frame_index) for _, frame in items],
            },
        }
        if priority is not None:
            message["priority"] = priority
        if on_result is None:
            reply = await self.request_retrying(message)
        else:
            request_id = self._claim_id()
            message["id"] = request_id
            message["stream"] = True

            def deliver(push: dict) -> None:
                on_result(int(push["index"]), push["user"], np.asarray(push["joints"]))

            self._streams[request_id] = deliver
            try:
                reply = await self.request_retrying(message)
            finally:
                self._streams.pop(request_id, None)
        joints = iter(reply["joints"])
        out: List = []
        for result in reply["results"]:
            if result["ok"]:
                out.append(np.asarray(next(joints)))
                continue
            error = ServerError(result["error"], result["detail"])
            if not return_errors:
                raise error
            out.append(error)
        return out

    # ------------------------------------------------------------------
    # Live user migration
    # ------------------------------------------------------------------
    async def export_user(self, user_id, forget: bool = False) -> Optional[dict]:
        """Fetch a user's portable state (session ring + adapter archive).

        The server drains the user's shard first, so the state reflects
        every accepted frame.  ``forget=True`` atomically removes the user
        server-side after the snapshot — the move half of a migration.
        Returns ``None`` for a user the server has never seen.
        """
        reply = await self.request(
            {"type": "export_user", "user": user_id, "forget": bool(forget)}
        )
        return reply["state"]

    async def import_user(self, state: dict):
        """Install a user state exported elsewhere; returns the user id."""
        reply = await self.request({"type": "import_user", "state": state})
        return reply["user"]

    # ------------------------------------------------------------------
    # Push flow control
    # ------------------------------------------------------------------
    async def grant_credits(self, grant: int) -> Optional[int]:
        """Grant the server ``grant`` push credits; returns its new balance
        (``None`` when the server runs without flow control)."""
        reply = await self.request({"type": "credits", "grant": int(grant)})
        return reply["available"]

    # ------------------------------------------------------------------
    # Observability / control
    # ------------------------------------------------------------------
    async def metrics(self) -> dict:
        return (await self.request({"type": "metrics"}))["metrics"]

    async def prometheus(self) -> str:
        return (await self.request({"type": "prometheus"}))["text"]

    async def shutdown(self) -> None:
        """Ask the front-end to stop (requires ``allow_remote_shutdown``)."""
        await self.request({"type": "shutdown"})

"""Asyncio socket front-end: network ingress for the serving subsystem.

:class:`PoseFrontend` decouples request ingress from shard compute.  It
accepts length-prefixed msgpack/JSON frames (:mod:`repro.serve.transport`)
over TCP or a Unix socket, turns each ``submit`` into a call on the backend
server — typically a :class:`repro.serve.ProcessShardedPoseServer`, whose
:func:`repro.runtime.shard_for` placement routes the user to its shard
process — and streams the prediction back on the same connection.

Concurrency model:

* the asyncio event loop owns every socket: reads, frame parsing and writes
  never block on model compute;
* backend calls run on a thread pool sized to the backend's shard count, so
  requests for *different* shards execute concurrently while each shard's
  strict one-in-flight transport discipline keeps per-shard execution
  serialized (and therefore deterministic);
* each connection is strict request/reply — a client wanting pipeline
  parallelism opens one connection per stream, as the example client does.

Backpressure surfaces exactly like in-process serving: a full shard queue
drops or rejects per :class:`repro.serve.ServeConfig`, and the client sees
either a ``prediction`` or an ``error`` frame per submission.  Framing
violations (truncated or oversized frames, unknown codecs) close the
connection after an ``error`` frame — the stream cannot be resynchronized.

:class:`AsyncPoseClient` is the matching client used by the examples, the
tests and the benchmark harness.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import stat
from concurrent.futures import ThreadPoolExecutor
from typing import Optional

import numpy as np

from ..radar.pointcloud import PointCloudFrame
from .batcher import FrameDropped, QueueFull
from . import transport
from .transport import (
    CODEC_JSON,
    DEFAULT_MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    WireError,
    available_codecs,
    read_message,
    write_message,
)

__all__ = ["AsyncPoseClient", "PoseFrontend", "ServerClosing"]


class ServerClosing(RuntimeError):
    """The front-end refused a request because it is shutting down."""


class PoseFrontend:
    """Socket front-end over any server with the :class:`PoseServer` façade.

    Parameters
    ----------
    server:
        The backend: a :class:`repro.serve.ProcessShardedPoseServer` for a
        process-per-shard deployment, or any object with ``submit`` /
        ``metrics_snapshot`` / ``to_prometheus`` (the in-process servers
        work too, serialized through a single executor thread).
    host / port:
        TCP listening address, or
    unix_path:
        Unix-domain socket path (mutually exclusive with ``host``).
    max_frame_bytes:
        Per-frame payload bound enforced before any payload is read.
    parallelism:
        Executor threads for backend calls.  Defaults to the backend's
        ``num_shards`` when the backend declares ``parallel_safe = True``
        (the process-per-shard server does: each shard's commands
        serialize on their own lock) and to 1 otherwise — the in-process
        servers are single-threaded by design and must never see
        concurrent calls.  More threads than shards buys nothing: each
        shard serializes its own commands.
    allow_remote_shutdown:
        Honour the ``shutdown`` message type (handy for examples and tests;
        leave off for real deployments).
    """

    def __init__(
        self,
        server,
        host: Optional[str] = None,
        port: int = 0,
        unix_path: Optional[str] = None,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        parallelism: Optional[int] = None,
        allow_remote_shutdown: bool = False,
    ) -> None:
        if (host is None) == (unix_path is None):
            raise ValueError("provide exactly one of host / unix_path")
        self.server = server
        self.host = host
        self.port = port
        self.unix_path = unix_path
        self.max_frame_bytes = max_frame_bytes
        self.allow_remote_shutdown = allow_remote_shutdown
        if parallelism is None:
            if getattr(server, "parallel_safe", False):
                parallelism = int(getattr(server, "num_shards", 1) or 1)
            else:
                parallelism = 1
        if parallelism < 1:
            raise ValueError("parallelism must be >= 1")
        self.parallelism = parallelism
        self._executor: Optional[ThreadPoolExecutor] = None
        self._listener: Optional[asyncio.AbstractServer] = None
        self._closing = asyncio.Event()
        self.connections_served = 0
        self.requests_served = 0
        self.protocol_errors = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self):
        """The bound address: ``(host, port)`` for TCP, the path for Unix."""
        if self._listener is None:
            raise RuntimeError("front-end is not started")
        if self.unix_path is not None:
            return self.unix_path
        return self._listener.sockets[0].getsockname()[:2]

    async def start(self) -> "PoseFrontend":
        """Bind the socket and start accepting connections."""
        if self._listener is not None:
            raise RuntimeError("front-end is already started")
        self._executor = ThreadPoolExecutor(
            max_workers=self.parallelism, thread_name_prefix="fuse-frontend"
        )
        if self.unix_path is not None:
            # A previous listener that exited without stop() leaves its
            # socket file behind; binding over a stale socket (never a
            # regular file) is the conventional Unix-server behaviour.
            if stat.S_ISSOCK(_path_mode(self.unix_path)):
                os.unlink(self.unix_path)
            self._listener = await asyncio.start_unix_server(
                self._handle_connection, path=self.unix_path
            )
        else:
            self._listener = await asyncio.start_server(
                self._handle_connection, host=self.host, port=self.port
            )
            self.port = self._listener.sockets[0].getsockname()[1]
        return self

    async def stop(self) -> None:
        """Stop accepting, close the listener and release the executor.

        The backend server is *not* closed: the caller owns its lifecycle
        (the CLI closes it after the front-end stops).
        """
        self._closing.set()
        if self._listener is not None:
            self._listener.close()
            await self._listener.wait_closed()
            self._listener = None
            if self.unix_path is not None and stat.S_ISSOCK(_path_mode(self.unix_path)):
                with contextlib.suppress(OSError):
                    os.unlink(self.unix_path)
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    async def serve_until_closed(self) -> None:
        """Block until :meth:`stop` is called (or a remote shutdown)."""
        await self._closing.wait()
        await self.stop()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections_served += 1
        codec = CODEC_JSON
        try:
            while True:
                try:
                    framed = await read_message(reader, self.max_frame_bytes)
                except WireError as error:
                    # The stream cannot be resynchronized after a framing
                    # fault: report and hang up.
                    self.protocol_errors += 1
                    await self._best_effort_error(writer, codec, error)
                    break
                if framed is None:
                    break  # clean EOF between frames
                message, codec = framed
                try:
                    reply = await self._dispatch(message)
                except (FrameDropped, QueueFull, ServerClosing) as error:
                    reply = _error_message(error)
                except Exception as error:  # backend fault: report, keep serving
                    self.protocol_errors += 1
                    reply = _error_message(error)
                await write_message(writer, reply, codec, self.max_frame_bytes)
                self.requests_served += 1
                if reply["type"] == "goodbye":
                    self._closing.set()
                    break
        finally:
            writer.close()
            # Suppress CancelledError too: stop() tears connections down
            # mid-wait and the close has already been issued above.
            with contextlib.suppress(ConnectionError, BrokenPipeError, asyncio.CancelledError):
                await writer.wait_closed()

    async def _best_effort_error(self, writer, codec, error) -> None:
        try:
            await write_message(writer, _error_message(error), codec, self.max_frame_bytes)
        except (ConnectionError, BrokenPipeError, WireError):
            pass

    async def _dispatch(self, message: dict) -> dict:
        kind = message["type"]
        if kind == "hello":
            return {
                "type": "hello",
                "protocol": PROTOCOL_VERSION,
                "codecs": list(available_codecs()),
                "shards": int(getattr(self.server, "num_shards", 1) or 1),
            }
        if kind == "ping":
            return {"type": "pong"}
        if kind == "submit":
            return await self._submit(message)
        if kind == "metrics":
            snapshot = await self._run_blocking(self.server.metrics_snapshot)
            return {"type": "metrics_report", "metrics": snapshot}
        if kind == "prometheus":
            text = await self._run_blocking(self.server.to_prometheus)
            return {"type": "prometheus_report", "text": text}
        if kind == "shutdown":
            if not self.allow_remote_shutdown:
                raise ServerClosing("remote shutdown is disabled on this front-end")
            return {"type": "goodbye"}
        raise transport.ProtocolError(f"front-end cannot serve message type {kind!r}")

    async def _submit(self, message: dict) -> dict:
        if self._closing.is_set():
            raise ServerClosing("front-end is shutting down")
        try:
            user = message["user"]
            frame = message["frame"]
            points = np.asarray(frame["points"], dtype=float)
            timestamp = float(frame.get("timestamp", 0.0))
            frame_index = int(frame.get("frame_index", 0))
        except (KeyError, TypeError, ValueError) as error:
            raise transport.ProtocolError(f"malformed submit message: {error}") from error
        cloud = PointCloudFrame(points, timestamp=timestamp, frame_index=frame_index)
        loop = asyncio.get_running_loop()
        start = loop.time()
        joints = await self._run_blocking(self.server.submit, user, cloud)
        return {
            "type": "prediction",
            "user": user,
            "joints": np.asarray(joints),
            "latency_ms": (loop.time() - start) * 1000.0,
        }

    async def _run_blocking(self, fn, *args):
        if self._executor is None:
            raise ServerClosing("front-end is not running")
        return await asyncio.get_running_loop().run_in_executor(self._executor, fn, *args)


def _error_message(error: Exception) -> dict:
    return {"type": "error", "error": type(error).__name__, "detail": str(error)}


def _path_mode(path: str) -> int:
    """The path's stat mode, 0 when it does not exist."""
    try:
        return os.stat(path).st_mode
    except OSError:
        return 0


class AsyncPoseClient:
    """Asyncio client of a :class:`PoseFrontend` socket.

    One client speaks strict request/reply over one connection; open several
    clients for concurrent streams (each user stream in the example owns
    one).  ``codec`` selects msgpack when both sides have it; the server
    always answers in the codec of the request.
    """

    def __init__(
        self,
        codec: Optional[str] = None,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ) -> None:
        self.codec = codec if codec is not None else available_codecs()[-1]
        self.max_frame_bytes = max_frame_bytes
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._lock = asyncio.Lock()

    # ------------------------------------------------------------------
    # Connection
    # ------------------------------------------------------------------
    async def connect_unix(self, path: str) -> "AsyncPoseClient":
        self._reader, self._writer = await asyncio.open_unix_connection(path)
        return self

    async def connect_tcp(self, host: str, port: int) -> "AsyncPoseClient":
        self._reader, self._writer = await asyncio.open_connection(host, port)
        return self

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass
            self._reader = self._writer = None

    async def __aenter__(self) -> "AsyncPoseClient":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------
    async def request(self, message: dict) -> dict:
        """One request/reply round-trip; raises on an ``error`` reply."""
        if self._reader is None or self._writer is None:
            raise RuntimeError("client is not connected")
        async with self._lock:
            await write_message(self._writer, message, self.codec, self.max_frame_bytes)
            framed = await read_message(self._reader, self.max_frame_bytes)
        if framed is None:
            raise ConnectionError("server closed the connection mid-request")
        reply, _ = framed
        if reply["type"] == "error":
            raise RuntimeError(f"server error {reply['error']}: {reply['detail']}")
        return reply

    async def hello(self) -> dict:
        return await self.request({"type": "hello", "protocol": PROTOCOL_VERSION})

    async def ping(self) -> bool:
        return (await self.request({"type": "ping"}))["type"] == "pong"

    async def submit(self, user_id, frame: PointCloudFrame) -> np.ndarray:
        """Submit one frame; returns the ``(joints, 3)`` prediction."""
        reply = await self.request(
            {
                "type": "submit",
                "user": user_id,
                "frame": {
                    "points": frame.points,
                    "timestamp": frame.timestamp,
                    "frame_index": frame.frame_index,
                },
            }
        )
        return np.asarray(reply["joints"])

    async def metrics(self) -> dict:
        return (await self.request({"type": "metrics"}))["metrics"]

    async def prometheus(self) -> str:
        return (await self.request({"type": "prometheus"}))["text"]

    async def shutdown(self) -> None:
        """Ask the front-end to stop (requires ``allow_remote_shutdown``)."""
        await self.request({"type": "shutdown"})

"""Batch-invariant shared-parameter inference kernel.

Micro-batching is only correct if coalescing requests cannot change their
answers.  Plain ``model.predict`` does not guarantee that: BLAS picks
different kernels for different GEMM shapes (a one-row matrix product goes
through ``gemv``, a many-row one through blocked ``gemm``), so the same frame
served alone and served inside a batch can differ in the last bits.

:class:`SharedParameterKernel` removes the batch size from every GEMM shape.
Frames are processed in fixed-width blocks of exactly ``block`` frames (the
last block is zero-padded):

* convolutions run as one ``im2col`` matrix product whose row count is
  ``block * out_h * out_w`` — constant;
* fully connected layers run transposed, ``weight @ x.T``, so the batch
  dimension is the GEMM's *column* count, again padded to ``block``.

Because each output row/column of a fixed-shape GEMM is an independent dot
product computed in a fixed reduction order, a frame's prediction depends
only on its own features — not on how many co-riders shared the block, which
slot it occupied, or what the padding contained.  This is verified bitwise by
``tests/serve/test_replay_equivalence.py``.

The arithmetic executes through a :class:`repro.nn.backend.KernelBackend`
(default: whatever is active in the registry).  Backends with
``parallelism > 1`` fan independent blocks out over threads — every block is
computed with identical GEMM shapes, so the result bits stay independent of
which thread ran which block and the batch-invariance contract holds
per backend.  Within one backend, batched replay remains bitwise identical
to unbatched; across backends results are numerically equivalent within the
op-db suite's pinned tolerances.

The kernel is inference-only (no autograd) and holds its own contiguous copy
of the shared parameters, so serving never races with training code mutating
the live model.  Per-user *adapted* parameters take the task-batched
:func:`repro.engine.batched_forward` path instead, which is slice-stable by
construction.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from .. import nn
from ..nn import backend as _kernel_backends
from ..nn.backend import KernelBackend
from ..nn.ops import conv_output_shape, im2col

__all__ = ["SharedParameterKernel"]


class _ConvStep:
    """One convolution lowered to a fixed-shape matrix product."""

    def __init__(
        self,
        layer: nn.Conv2d,
        weight: np.ndarray,
        bias: Optional[np.ndarray],
        backend: KernelBackend,
    ) -> None:
        out_channels = weight.shape[0]
        self.kernel_size = weight.shape[2], weight.shape[3]
        self.stride = layer.stride
        self.padding = layer.padding
        # (patch, out_channels), contiguous so the GEMM reads it linearly.
        self.weight_flat = np.ascontiguousarray(weight.reshape(out_channels, -1).T)
        self.bias = None if bias is None else np.ascontiguousarray(bias)
        self.backend = backend

    def _base(self, x: np.ndarray):
        block = x.shape[0]
        out_h, out_w = conv_output_shape(
            x.shape[2], x.shape[3], self.kernel_size, self.stride, self.padding
        )
        cols = im2col(x, self.kernel_size, self.stride, self.padding)
        flat = cols.reshape(block * out_h * out_w, -1)
        workspace = self.backend.workspace(
            (id(self), "out"), (flat.shape[0], self.weight_flat.shape[1]), flat.dtype
        )
        out = self.backend.gemm(flat, self.weight_flat, out=workspace)
        if self.bias is not None:
            out += self.bias
        return out, flat, block, out_h, out_w

    def __call__(self, x: np.ndarray) -> np.ndarray:
        out, _, block, out_h, out_w = self._base(x)
        return np.ascontiguousarray(
            out.reshape(block, out_h, out_w, -1).transpose(0, 3, 1, 2)
        )

    def lowrank(self, x: np.ndarray, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """The base product plus a per-frame rank-r delta on the patch view.

        The base GEMM is exactly :meth:`__call__`'s fixed-shape product; the
        delta ``(cols @ a[i].T) @ b[i].T`` runs as per-frame batched rank-r
        matmuls whose shapes never depend on the batch, so the sum stays
        batch-invariant frame by frame.
        """
        out, flat, block, out_h, out_w = self._base(x)
        cols3 = flat.reshape(block, out_h * out_w, -1)
        hidden = self.backend.matmul(cols3, a.transpose(0, 2, 1))  # (block, oh*ow, r)
        out3 = out.reshape(block, out_h * out_w, -1)
        out3 += self.backend.matmul(hidden, b.transpose(0, 2, 1))
        return np.ascontiguousarray(
            out3.reshape(block, out_h, out_w, -1).transpose(0, 3, 1, 2)
        )


class _LinearStep:
    """One fully connected layer computed transposed (batch on the N axis)."""

    def __init__(
        self, weight: np.ndarray, bias: Optional[np.ndarray], backend: KernelBackend
    ) -> None:
        self.weight = np.ascontiguousarray(weight)  # (out_features, in_features)
        self.bias = None if bias is None else np.ascontiguousarray(bias)
        self.backend = backend

    def _base(self, x: np.ndarray) -> np.ndarray:
        x_t = np.ascontiguousarray(x).T
        workspace = self.backend.workspace(
            (id(self), "out"), (self.weight.shape[0], x_t.shape[1]), x_t.dtype
        )
        out_t = self.backend.gemm(self.weight, x_t, out=workspace)  # (out_features, block)
        if self.bias is not None:
            out_t += self.bias[:, None]
        return out_t

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self._base(x).T

    def lowrank(self, x: np.ndarray, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """The base product plus a per-frame rank-r delta (see _ConvStep)."""
        out_t = self._base(x)
        hidden = self.backend.matmul(x[:, None, :], a.transpose(0, 2, 1))  # (block, 1, r)
        delta = self.backend.matmul(hidden, b.transpose(0, 2, 1))[:, 0]  # (block, out)
        return out_t.T + delta


class _ReluStep:
    def __init__(self, backend: KernelBackend) -> None:
        self.backend = backend

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.backend.relu(x)


class _TanhStep:
    def __init__(self, backend: KernelBackend) -> None:
        self.backend = backend

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.backend.tanh(x)


class _SigmoidStep:
    def __init__(self, backend: KernelBackend) -> None:
        self.backend = backend

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.backend.sigmoid(x)


class _FlattenStep:
    def __call__(self, x: np.ndarray) -> np.ndarray:
        return x.reshape(x.shape[0], -1)


class SharedParameterKernel:
    """Batch-size-invariant forward pass for one shared parameter set.

    Parameters
    ----------
    module:
        The architecture template (every layer must be one of the supported
        types: ``Conv2d``, ``Linear``, ``ReLU``, ``Tanh``, ``Sigmoid``,
        ``Flatten``, inactive ``Dropout``, or a container of those).
    parameters:
        Optional explicit parameter arrays in ``module.parameters()`` order;
        defaults to a snapshot of the module's current parameters.
    block:
        Fixed GEMM block width.  Must be >= 2: single-column products fall
        into BLAS's ``gemv`` fast path, whose reduction order differs from
        the blocked ``gemm`` kernel and would break batch invariance.
    backend:
        Kernel backend: a registry name, a :class:`KernelBackend` instance,
        or ``None`` for the currently active backend (the process default or
        the innermost ``nn.use_backend`` scope at construction time).
    """

    def __init__(
        self,
        module: nn.Module,
        parameters: Optional[Sequence[np.ndarray]] = None,
        block: int = 32,
        backend: Union[None, str, KernelBackend] = None,
    ) -> None:
        if block < 2:
            raise ValueError("block must be >= 2 for batch-invariant GEMM shapes")
        self.block = block
        self.backend = _kernel_backends.resolve_backend(backend)
        self.backend_name = self.backend.name
        if parameters is None:
            parameters = [param.data for param in module.parameters()]
        expected = sum(1 for _ in module.parameters())
        parameters = [np.asarray(p, dtype=float).copy() for p in parameters]
        if len(parameters) != expected:
            raise ValueError(
                f"module has {expected} parameters but {len(parameters)} were supplied"
            )
        self._steps: List = []
        self._out_features: Optional[int] = None
        remaining = self._compile(module, list(parameters))
        if remaining:
            raise ValueError("more parameters supplied than the module consumes")

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def _compile(self, module: nn.Module, params: List[np.ndarray]) -> List[np.ndarray]:
        """Flatten the module tree into primitive steps, consuming ``params``."""
        if isinstance(module, nn.Sequential):
            for child in module:
                params = self._compile(child, params)
            return params
        if isinstance(module, nn.Conv2d):
            weight = params.pop(0)
            bias = params.pop(0) if module.bias is not None else None
            self._steps.append(_ConvStep(module, weight, bias, self.backend))
            return params
        if isinstance(module, nn.Linear):
            weight = params.pop(0)
            bias = params.pop(0) if module.bias is not None else None
            self._steps.append(_LinearStep(weight, bias, self.backend))
            self._out_features = int(weight.shape[0])
            return params
        if isinstance(module, nn.ReLU):
            self._steps.append(_ReluStep(self.backend))
            return params
        if isinstance(module, nn.Tanh):
            self._steps.append(_TanhStep(self.backend))
            return params
        if isinstance(module, nn.Sigmoid):
            self._steps.append(_SigmoidStep(self.backend))
            return params
        if isinstance(module, nn.Flatten):
            self._steps.append(_FlattenStep())
            return params
        if isinstance(module, nn.Dropout):
            # Serving is inference: dropout is identity regardless of p.
            return params
        children = list(module._modules.values())
        if children and not module._parameters:
            for child in children:
                params = self._compile(child, params)
            return params
        raise NotImplementedError(
            f"no batch-invariant serving kernel for layer {module!r}"
        )

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def _run_block(self, x: np.ndarray) -> np.ndarray:
        for step in self._steps:
            x = step(x)
        return x

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Forward ``(batch, channels, height, width)`` features to ``(batch, out)``.

        The batch is processed in zero-padded blocks of exactly
        :attr:`block` frames so every GEMM shape — and therefore every
        frame's bit pattern — is independent of the batch size.  Parallel
        backends compute independent blocks on different threads; the block
        shapes (and hence the bits) do not depend on the thread assignment.
        """
        features = np.asarray(features, dtype=float)
        if features.ndim != 4:
            raise ValueError(
                f"expected (batch, channels, height, width) features, got {features.shape}"
            )
        total = features.shape[0]
        if total == 0:
            if self._out_features is None:
                raise ValueError("cannot infer output width of an empty batch")
            return np.zeros((0, self._out_features))
        starts = list(range(0, total, self.block))
        if len(starts) > 1 and self.backend.parallelism > 1:

            def run(start: int) -> np.ndarray:
                chunk = features[start : start + self.block]
                valid = chunk.shape[0]
                block_buffer = np.zeros((self.block, *features.shape[1:]))
                block_buffer[:valid] = chunk
                return self._run_block(block_buffer)[:valid].copy()

            outputs = self.backend.map_blocks(run, starts)
        else:
            outputs = []
            buffer = np.zeros((self.block, *features.shape[1:]))
            for start in starts:
                chunk = features[start : start + self.block]
                valid = chunk.shape[0]
                buffer[:valid] = chunk
                if valid < self.block:
                    buffer[valid:] = 0.0
                outputs.append(self._run_block(buffer)[:valid].copy())
        return np.concatenate(outputs, axis=0)

    def predict_lowrank(
        self, features: np.ndarray, factors: Sequence
    ) -> np.ndarray:
        """Forward with per-frame low-rank deltas on every adaptable layer.

        ``factors`` carries one ``(batch, rank, fan_in)`` down-projection and
        one ``(batch, fan_out, rank)`` up-projection per Conv2d/Linear step,
        interleaved ``[a0, b0, a1, b1, ...]`` — the stacks
        :meth:`repro.serve.AdapterRegistry.gather` produces under
        ``scope="lora"``, one row per frame.  The shared base runs in the
        same fixed-width zero-padded blocks as :meth:`predict` (padding rows
        get zero factors), and each frame's delta is a chain of per-frame
        rank-r products — so predictions stay bitwise independent of the
        micro-batch composition while the heavy GEMMs remain the shared
        base's, not per-user ones.
        """
        features = np.asarray(features, dtype=float)
        if features.ndim != 4:
            raise ValueError(
                f"expected (batch, channels, height, width) features, got {features.shape}"
            )
        arrays = [
            np.asarray(f.data if isinstance(f, nn.Tensor) else f, dtype=float)
            for f in factors
        ]
        adaptable = sum(isinstance(step, (_ConvStep, _LinearStep)) for step in self._steps)
        if len(arrays) != 2 * adaptable:
            raise ValueError(
                f"kernel has {adaptable} adaptable layers and needs {2 * adaptable} "
                f"factor stacks, got {len(arrays)}"
            )
        total = features.shape[0]
        if any(array.shape[0] != total for array in arrays):
            raise ValueError("every factor stack needs one row per frame")
        if total == 0:
            if self._out_features is None:
                raise ValueError("cannot infer output width of an empty batch")
            return np.zeros((0, self._out_features))
        starts = list(range(0, total, self.block))
        if len(starts) > 1 and self.backend.parallelism > 1:

            def run(start: int) -> np.ndarray:
                chunk = features[start : start + self.block]
                valid = chunk.shape[0]
                block_buffer = np.zeros((self.block, *features.shape[1:]))
                block_buffer[:valid] = chunk
                block_factors = []
                for array in arrays:
                    padded_slot = np.zeros((self.block, *array.shape[1:]))
                    padded_slot[:valid] = array[start : start + valid]
                    block_factors.append(padded_slot)
                return self._run_block_lowrank(block_buffer, block_factors)[:valid].copy()

            outputs = self.backend.map_blocks(run, starts)
        else:
            outputs = []
            buffer = np.zeros((self.block, *features.shape[1:]))
            padded = [np.zeros((self.block, *array.shape[1:])) for array in arrays]
            for start in starts:
                chunk = features[start : start + self.block]
                valid = chunk.shape[0]
                buffer[:valid] = chunk
                if valid < self.block:
                    buffer[valid:] = 0.0
                for slot, array in enumerate(arrays):
                    padded[slot][:valid] = array[start : start + valid]
                    if valid < self.block:
                        padded[slot][valid:] = 0.0
                outputs.append(self._run_block_lowrank(buffer, padded)[:valid].copy())
        return np.concatenate(outputs, axis=0)

    def _run_block_lowrank(self, x: np.ndarray, factors: Sequence[np.ndarray]) -> np.ndarray:
        pairs = iter(factors)
        for step in self._steps:
            if isinstance(step, (_ConvStep, _LinearStep)):
                x = step.lowrank(x, next(pairs), next(pairs))
            else:
                x = step(x)
        return x

    def predict_joints(self, features: np.ndarray) -> np.ndarray:
        """Inference reshaped to ``(batch, joints, 3)`` coordinates."""
        flat = self.predict(features)
        return flat.reshape(flat.shape[0], -1, 3)

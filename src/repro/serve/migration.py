"""Live user migration: portable per-user serving state.

A user's serving state is two things: their session ring (the ``2M + 1``
frames feeding streaming fusion) and their adapted parameters (an
:class:`AdapterRegistry` entry).  Both are already portable — the ring is a
handful of point-cloud arrays, the adapter is a versioned ``.npz`` archive —
so moving a user between backends is a *state copy*, not a retrain: export
on the source, ship the dict over wire protocol v2 (arrays travel tagged,
the adapter archive as a ``uint8`` byte array, so both codecs carry it),
import on the destination.  Because serving is batch-invariant and the
restored ring is bitwise equal to the source's, the destination's next
prediction for the user is bitwise identical to what the source would have
produced — the property ``tests/serve/test_migration.py`` and the router
end-to-end tests pin.

Three layers live here:

* the **user-state schema** (:func:`export_user_state` /
  :func:`import_user_state` / :func:`validate_user_state`) shared by
  :meth:`PoseServer.export_user`, the shard-worker commands and the
  front-end's ``export_user``/``import_user`` messages;
* :func:`migrate_user`, the client-side drain-export-import step the router
  runs on planned topology changes;
* :class:`SessionMirror`, the router's bounded copy of recent frames per
  user — when a backend dies *unannounced* there is nothing left to export,
  so the router restores the user's session ring on the failover target
  from its mirror (adapted parameters cannot be recovered this way; see
  ``docs/cluster.md`` for the failover semantics).
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Deque, Dict, Hashable, List, Optional, Tuple

import numpy as np

from ..radar.pointcloud import PointCloudFrame

__all__ = [
    "MigrationError",
    "SessionMirror",
    "USER_STATE_VERSION",
    "export_user_state",
    "import_user_state",
    "migrate_user",
    "validate_user_state",
]

#: schema version of the user-state dict (bumped on incompatible change)
USER_STATE_VERSION = 1

_SESSION_KEYS = ("frames_seen", "points", "timestamps", "frame_indices")


class MigrationError(RuntimeError):
    """A user-state transfer was malformed or incompatible."""


# ----------------------------------------------------------------------
# User-state schema
# ----------------------------------------------------------------------
def validate_user_state(state) -> dict:
    """Check a user-state dict's schema; returns it, raises :class:`MigrationError`.

    The state crosses both the worker-process pickle boundary and the wire
    (where a hostile peer may send anything), so the schema is validated on
    every import, not trusted.
    """
    if not isinstance(state, dict):
        raise MigrationError(f"user state must be a dict, got {type(state).__name__}")
    version = state.get("version")
    if version != USER_STATE_VERSION:
        raise MigrationError(f"unsupported user-state version {version!r}")
    user = state.get("user")
    if isinstance(user, bool) or not isinstance(user, (str, int)):
        raise MigrationError("user state requires a str/int 'user' id")
    session = state.get("session")
    if session is not None:
        if not isinstance(session, dict):
            raise MigrationError("'session' must be a dict or None")
        missing = [key for key in _SESSION_KEYS if key not in session]
        if missing:
            raise MigrationError(f"session state is missing keys {missing}")
        points = session["points"]
        lengths = {len(points), len(session["timestamps"]), len(session["frame_indices"])}
        if len(lengths) != 1:
            raise MigrationError("session frame lists disagree in length")
        if int(session["frames_seen"]) < len(points):
            raise MigrationError("frames_seen cannot be below the ring length")
    adapter = state.get("adapter")
    if adapter is not None:
        archive = np.asarray(adapter)
        if archive.dtype != np.uint8 or archive.ndim != 1:
            raise MigrationError("'adapter' must be a 1-d uint8 byte array or None")
    if session is None and adapter is None:
        raise MigrationError("user state carries neither session nor adapter")
    return state


def export_user_state(server, user_id: Hashable, forget: bool = False) -> Optional[dict]:
    """Export one user's session ring + adapter archive from a :class:`PoseServer`.

    The server's pending micro-batch is flushed first, so every in-flight
    frame of the user resolves *before* the snapshot — combined with the
    front-end's FIFO shard locks this is the drain step of a live
    migration.  Returns ``None`` for a user with no state; with
    ``forget=True`` the user is dropped from the source after the snapshot
    (the atomic move used on planned topology changes).
    """
    server.flush()
    session = server.sessions.get(user_id)
    archive = server.registry.export_user_bytes(user_id)
    if session is None and archive is None:
        return None
    state: dict = {
        "version": USER_STATE_VERSION,
        "user": user_id,
        "session": None,
        "adapter": None,
    }
    if session is not None:
        history = session.history
        state["session"] = {
            "frames_seen": int(session.frames_seen),
            "ring_capacity": int(session.ring_capacity),
            "num_context_frames": int(session.num_context_frames),
            "points": [np.asarray(frame.points, dtype=float) for frame in history],
            "timestamps": [float(frame.timestamp) for frame in history],
            "frame_indices": [int(frame.frame_index) for frame in history],
        }
    if archive is not None:
        state["adapter"] = np.frombuffer(archive, dtype=np.uint8)
    if forget:
        server.forget_user(user_id)
    return state


def import_user_state(server, state) -> Hashable:
    """Install an exported user state into a :class:`PoseServer`; returns the id.

    The session ring is restored bitwise (the destination keeps the newest
    ``ring_capacity`` frames — exactly what its own deque would retain);
    adapter bytes go through the registry's schema validation, so a
    scope/rank mismatch between source and destination policies raises
    readably instead of corrupting the gather path.  When the state carries
    a ``num_context_frames`` that disagrees with the destination estimator,
    the import refuses: fusion windows would differ and predictions could
    never re-pin.
    """
    state = validate_user_state(state)
    user_id = state["user"]
    session_state = state.get("session")
    if session_state is not None:
        expected_m = session_state.get("num_context_frames")
        if (
            expected_m is not None
            and int(expected_m) != server.sessions.num_context_frames
        ):
            raise MigrationError(
                f"session was recorded with num_context_frames={expected_m}, "
                f"destination serves {server.sessions.num_context_frames}"
            )
        session = server.sessions.get_or_create(user_id)
        frames = [
            PointCloudFrame(
                np.array(points, dtype=float),
                timestamp=float(timestamp),
                frame_index=int(frame_index),
            )
            for points, timestamp, frame_index in zip(
                session_state["points"],
                session_state["timestamps"],
                session_state["frame_indices"],
            )
        ]
        if len(frames) > session.ring_capacity:
            frames = frames[-session.ring_capacity :]
        session.restore(frames, int(session_state["frames_seen"]))
    adapter = state.get("adapter")
    if adapter is not None:
        archive = np.ascontiguousarray(np.asarray(adapter, dtype=np.uint8))
        server.registry.import_user_bytes(user_id, archive.tobytes())
    return user_id


async def migrate_user(source, target, user_id: Hashable, forget: bool = True) -> bool:
    """Move one user's state between two backends over their clients.

    ``source`` and ``target`` are :class:`AsyncPoseClient`-shaped objects.
    Returns ``False`` when the source holds no state for the user (nothing
    to move — a fresh user lands on the new placement naturally).
    """
    state = await source.export_user(user_id, forget=forget)
    if state is None:
        return False
    await target.import_user(state)
    return True


# ----------------------------------------------------------------------
# Router-side session mirror (failover restore)
# ----------------------------------------------------------------------
class SessionMirror:
    """Bounded per-user copy of recently routed frames.

    The router appends every frame it forwards, in forwarding order, so when
    a backend dies without warning the mirror still holds what the dead
    backend's session rings held (provided ``capacity`` is at least the
    backends' ring capacity) and the failover target can be seeded with a
    bitwise-identical ring.  Users are LRU-bounded like the backends' own
    session managers.
    """

    def __init__(self, capacity: int = 64, max_users: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if max_users < 1:
            raise ValueError("max_users must be >= 1")
        self.capacity = capacity
        self.max_users = max_users
        self._users: "OrderedDict[Hashable, Tuple[Deque, List[int]]]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._users)

    def __contains__(self, user_id: Hashable) -> bool:
        return user_id in self._users

    def observe(
        self, user_id: Hashable, points, timestamp: float, frame_index: int
    ) -> None:
        """Record one forwarded frame (a copy — wire buffers are reused)."""
        entry = self._users.get(user_id)
        if entry is None:
            entry = (deque(maxlen=self.capacity), [0])
            self._users[user_id] = entry
        ring, seen = entry
        ring.append(
            (np.array(points, dtype=float), float(timestamp), int(frame_index))
        )
        seen[0] += 1
        self._users.move_to_end(user_id)
        while len(self._users) > self.max_users:
            self._users.popitem(last=False)

    def user_state(self, user_id: Hashable) -> Optional[dict]:
        """The user's mirrored ring as an importable user-state dict."""
        entry = self._users.get(user_id)
        if entry is None:
            return None
        ring, seen = entry
        return {
            "version": USER_STATE_VERSION,
            "user": user_id,
            "session": {
                "frames_seen": seen[0],
                "points": [points for points, _, _ in ring],
                "timestamps": [timestamp for _, timestamp, _ in ring],
                "frame_indices": [frame_index for _, _, frame_index in ring],
            },
            "adapter": None,
        }

    def repair_state(self, user_id: Hashable) -> dict:
        """The user's mirrored ring, or an *empty* session for an unseen user.

        This is what a retry re-seeds a possibly-fed backend session from:
        a timed-out attempt may or may not have reached the backend, so the
        retry first resets the session ring to exactly the accepted frames
        the mirror holds — for a user whose very first frame timed out,
        that is an empty ring — and only then resubmits.  Without the reset
        a retried frame could enter the fusion window twice.
        """
        state = self.user_state(user_id)
        if state is not None:
            return state
        return {
            "version": USER_STATE_VERSION,
            "user": user_id,
            "session": {
                "frames_seen": 0,
                "points": [],
                "timestamps": [],
                "frame_indices": [],
            },
            "adapter": None,
        }

    def forget(self, user_id: Hashable) -> None:
        self._users.pop(user_id, None)

    def clear(self) -> None:
        self._users.clear()

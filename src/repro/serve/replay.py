"""Replay driver: simulate N concurrent users against a :class:`PoseServer`.

The driver turns a labelled (synthetic) dataset into per-user frame streams,
interleaves them round-robin — the worst case for cross-user micro-batching,
every consecutive request comes from a different user — and feeds them
through a server, collecting per-user predictions, drop records and the
metrics snapshot.

Two reference paths accompany it:

* serving with ``max_batch_size=1`` (an unbatched :class:`PoseServer`) is the
  *sequential per-user reference*: same sessions, same kernel, no
  coalescing.  Replay predictions must match it bitwise.
* :func:`sequential_reference` is the *naive baseline*: a plain per-frame
  loop over ``estimator.predict`` with no serving machinery at all.  It is
  the honest speed yardstick for the throughput benchmark (its BLAS kernels
  differ from the batch-invariant serving kernel, so agreement is close but
  not bitwise).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.pipeline import FusePoseEstimator
from ..dataset.sample import LabelledFrame, PoseDataset
from ..radar.pointcloud import merge_frames
from .adapters import AdapterRegistry
from .batcher import PendingPrediction
from .server import PoseServer
from .session import streaming_window

__all__ = [
    "ReplayResult",
    "user_streams_from_dataset",
    "adaptation_split",
    "replay_users",
    "sequential_reference",
]


@dataclass
class ReplayResult:
    """Everything one replay produced.

    ``predictions`` maps each user to an ``(frames, joints, 3)`` array in
    stream order; frames dropped under backpressure are recorded in
    ``dropped`` (per-user stream indices) and excluded from the arrays.
    """

    predictions: Dict[Hashable, np.ndarray] = field(default_factory=dict)
    labels: Dict[Hashable, np.ndarray] = field(default_factory=dict)
    dropped: Dict[Hashable, List[int]] = field(default_factory=dict)
    metrics: Dict[str, float] = field(default_factory=dict)
    wall_seconds: float = 0.0

    @property
    def num_users(self) -> int:
        return len(self.predictions)

    @property
    def frames_served(self) -> int:
        return sum(array.shape[0] for array in self.predictions.values())

    @property
    def frames_dropped(self) -> int:
        return sum(len(indices) for indices in self.dropped.values())

    @property
    def frames_per_second(self) -> float:
        return self.frames_served / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def mae_cm(self) -> float:
        """Mean absolute joint error (cm) over every served, labelled frame."""
        errors: List[np.ndarray] = []
        for user_id, predicted in self.predictions.items():
            labelled = self.labels.get(user_id)
            if labelled is None or labelled.shape[0] != predicted.shape[0]:
                continue
            errors.append(np.abs(predicted - labelled).reshape(-1))
        if not errors:
            return float("nan")
        return float(np.concatenate(errors).mean() * 100.0)


def user_streams_from_dataset(
    dataset: PoseDataset,
    num_users: int,
    frames_per_user: Optional[int] = None,
) -> "Dict[str, List[LabelledFrame]]":
    """Slice a labelled dataset into ``num_users`` per-user frame streams.

    Recording sessions are assigned round-robin; when there are more users
    than sessions, later users receive subsequent chunks of the same
    sessions.  Streams never cross session boundaries, so streaming fusion
    stays physically meaningful.
    """
    if num_users < 1:
        raise ValueError("num_users must be >= 1")
    by_sequence: Dict[int, List[LabelledFrame]] = {}
    for sample in dataset:
        by_sequence.setdefault(sample.sequence_id, []).append(sample)
    sequences = [
        sorted(samples, key=lambda s: s.frame_index)
        for _, samples in sorted(by_sequence.items())
    ]
    if not sequences:
        raise ValueError("dataset has no recording sessions")

    shortest = min(len(sequence) for sequence in sequences)
    rounds = -(-num_users // len(sequences))  # ceil
    budget = shortest // rounds
    if frames_per_user is None:
        frames_per_user = budget
    if frames_per_user < 1 or budget < 1:
        raise ValueError(
            f"dataset too small for {num_users} users: "
            f"{shortest} frames/session over {rounds} users/session"
        )
    frames_per_user = min(frames_per_user, budget)

    streams: Dict[str, List[LabelledFrame]] = {}
    for user_index in range(num_users):
        sequence = sequences[user_index % len(sequences)]
        offset = (user_index // len(sequences)) * frames_per_user
        chunk = sequence[offset : offset + frames_per_user]
        streams[f"user-{user_index:03d}"] = chunk
    return streams


def adaptation_split(
    streams: Mapping[Hashable, Sequence[LabelledFrame]], adaptation_frames: int
) -> Tuple[Dict[Hashable, List[LabelledFrame]], Dict[Hashable, List[LabelledFrame]]]:
    """Split each stream into (calibration frames, serving frames).

    The first ``adaptation_frames`` labelled frames of each stream become the
    user's personal fine-tuning set; the remainder is what the user actually
    streams at serving time.
    """
    if adaptation_frames < 0:
        raise ValueError("adaptation_frames must be non-negative")
    calibration: Dict[Hashable, List[LabelledFrame]] = {}
    serving: Dict[Hashable, List[LabelledFrame]] = {}
    for user_id, stream in streams.items():
        stream = list(stream)
        if adaptation_frames >= len(stream):
            raise ValueError(
                f"stream of user {user_id!r} has only {len(stream)} frames, "
                f"cannot reserve {adaptation_frames} for adaptation"
            )
        calibration[user_id] = stream[:adaptation_frames]
        serving[user_id] = stream[adaptation_frames:]
    return calibration, serving


def replay_users(
    server: PoseServer,
    streams: Mapping[Hashable, Sequence[LabelledFrame]],
    poll_between_ticks: bool = False,
) -> ReplayResult:
    """Interleave every user's stream through the server, round-robin.

    Tick ``t`` submits frame ``t`` of every user (in stream order) — the
    maximally interleaved arrival pattern, so consecutive requests belong to
    different users and micro-batches genuinely coalesce across users.
    Flushes happen when batches fill; with ``poll_between_ticks`` the server
    additionally applies its latency deadline after every tick.
    """
    users = list(streams)
    handles: Dict[Hashable, List[PendingPrediction]] = {user: [] for user in users}
    longest = max((len(streams[user]) for user in users), default=0)
    num_joints = server.estimator.model.config.output_dim // 3

    start = time.perf_counter()
    for tick in range(longest):
        for user in users:
            stream = streams[user]
            if tick < len(stream):
                handles[user].append(server.enqueue(user, stream[tick].cloud))
        if poll_between_ticks:
            server.poll()
    while server.flush():
        pass
    wall = time.perf_counter() - start

    result = ReplayResult(wall_seconds=wall, metrics=server.metrics_snapshot())
    for user in users:
        served: List[np.ndarray] = []
        labels: List[np.ndarray] = []
        dropped: List[int] = []
        for index, handle in enumerate(handles[user]):
            if handle.dropped:
                dropped.append(index)
                continue
            served.append(handle.result(flush=False))
            labels.append(streams[user][index].joints)
        result.predictions[user] = (
            np.stack(served) if served else np.zeros((0, num_joints, 3))
        )
        result.labels[user] = np.stack(labels) if labels else np.zeros((0, num_joints, 3))
        result.dropped[user] = dropped
    return result


def sequential_reference(
    estimator: FusePoseEstimator,
    streams: Mapping[Hashable, Sequence[LabelledFrame]],
    registry: Optional[AdapterRegistry] = None,
) -> Dict[Hashable, np.ndarray]:
    """The naive per-user serving loop: no batching, no serving machinery.

    Each user's frames are processed strictly one at a time — streaming
    fusion window, solo feature build, one single-frame model call (with the
    user's adapted parameters when a registry is given).  This is the
    throughput baseline micro-batched serving is measured against.
    """
    m = estimator.config.num_context_frames
    num_joints = estimator.model.config.output_dim // 3
    results: Dict[Hashable, np.ndarray] = {}
    for user_id, stream in streams.items():
        parameters = registry.parameters_for(user_id) if registry is not None else None
        history: List = []
        predictions: List[np.ndarray] = []
        for sample in stream:
            history.append(sample.cloud)
            if len(history) > 2 * m + 1:
                history.pop(0)
            if m > 0:
                fused = merge_frames(streaming_window(history, m))
            else:
                fused = sample.cloud
            features = estimator.feature_builder.build_batch([fused])
            predictions.append(estimator.predict(features, parameters=parameters)[0])
        results[user_id] = (
            np.stack(predictions) if predictions else np.zeros((0, num_joints, 3))
        )
    return results

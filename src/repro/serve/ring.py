"""Consistent hashing with virtual nodes: user→backend placement.

The router places every user on exactly one backend.  A modulo hash
(:func:`repro.runtime.shard_for`) would remap almost every user whenever a
backend joins or leaves; a consistent-hash ring remaps only the arc the
changed backend owned — the property that makes planned topology changes a
bounded migration and a backend death a bounded failover.

Design points:

* **Deterministic** — placement is a pure function of the node names and
  the user key, derived from SHA-1 digests (never Python's per-process
  salted ``hash()``), so every router replica, every restart and every
  test computes the identical ring.  ``tests/serve/test_ring.py`` pins
  literal placements.
* **Virtual nodes** — each backend owns ``vnodes`` points on the ring
  (``sha1("<node>#<i>")``), which evens out arc sizes and spreads a removed
  backend's users over *all* survivors instead of dumping them on one
  neighbour.
* **Keys** — user ids are hashed via their ``repr``, matching the str/int
  id domain the adapter registry can persist.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Hashable, Iterable, List, Tuple

__all__ = ["DEFAULT_VNODES", "HashRing"]

#: virtual nodes per backend (128 keeps arc imbalance within a few percent)
DEFAULT_VNODES = 128


def _point(label: str) -> int:
    """A stable 64-bit ring coordinate for a label."""
    return int.from_bytes(hashlib.sha1(label.encode("utf-8")).digest()[:8], "big")


class HashRing:
    """A consistent-hash ring mapping hashable keys onto named nodes."""

    def __init__(self, nodes: Iterable[str] = (), vnodes: int = DEFAULT_VNODES) -> None:
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        self._points: List[Tuple[int, str]] = []
        self._nodes: Dict[str, List[int]] = {}
        for node in nodes:
            self.add(node)

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    @property
    def nodes(self) -> List[str]:
        """The member nodes, sorted by name."""
        return sorted(self._nodes)

    def add(self, node: str) -> None:
        """Add a node's virtual points; only its new arcs change placement."""
        if not isinstance(node, str) or not node:
            raise ValueError("node names must be non-empty strings")
        if node in self._nodes:
            raise ValueError(f"node {node!r} is already on the ring")
        points = [_point(f"{node}#{index}") for index in range(self.vnodes)]
        self._nodes[node] = points
        for point in points:
            # Ties between distinct nodes are astronomically unlikely with
            # 64-bit points, but keep insertion deterministic regardless:
            # (point, node) pairs sort totally.
            bisect.insort(self._points, (point, node))

    def remove(self, node: str) -> None:
        """Remove a node; only keys on its arcs remap (to their successors)."""
        points = self._nodes.pop(node, None)
        if points is None:
            raise KeyError(f"node {node!r} is not on the ring")
        self._points = [entry for entry in self._points if entry[1] != node]

    def copy(self) -> "HashRing":
        """An independent ring with the same members (for what-if remaps)."""
        twin = HashRing(vnodes=self.vnodes)
        twin._points = list(self._points)
        twin._nodes = {node: list(points) for node, points in self._nodes.items()}
        return twin

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    @staticmethod
    def key_point(key: Hashable) -> int:
        """The ring coordinate of a user key (``repr``-hashed, stable)."""
        return _point(repr(key))

    def node_for(self, key: Hashable) -> str:
        """The node owning ``key``: the first virtual point at or after it."""
        if not self._points:
            raise LookupError("the ring has no nodes")
        point = self.key_point(key)
        index = bisect.bisect_left(self._points, (point, ""))
        if index == len(self._points):
            index = 0  # wrap: the ring is circular
        return self._points[index][1]

    def moved_keys(self, keys: Iterable[Hashable], other: "HashRing") -> List[Hashable]:
        """The subset of ``keys`` whose placement differs on ``other``.

        This is the migration work-list of a topology change: build the new
        ring, diff the currently placed users, move exactly those.
        """
        return [key for key in keys if self.node_for(key) != other.node_for(key)]

    def arc_share(self, node: str) -> float:
        """Fraction of the 64-bit keyspace the node owns (balance gauge)."""
        if node not in self._nodes:
            raise KeyError(f"node {node!r} is not on the ring")
        if len(self._nodes) == 1:
            return 1.0
        span = 1 << 64
        total = 0
        previous = self._points[-1][0] - span  # the wrap-around arc
        for point, owner in self._points:
            if owner == node:
                total += point - previous
            previous = point
        return total / span

"""The injectable time source of the serving subsystem.

Scheduling code is timing-sensitive: batch-close deadlines, token-bucket
refills and latency measurements all read a clock.  Production reads the
monotonic wall clock; tests must not — every scheduling decision has to be
reproducible, so the whole serving tier takes its notion of "now" from one
injected :class:`Clock` seam instead of calling :func:`time.perf_counter`
directly.

A :class:`Clock` is *callable* (``clock()`` is ``clock.now()``), so an
instance satisfies every pre-existing ``Callable[[], float]`` clock
parameter — :class:`repro.serve.PoseServer`, :class:`ServeMetrics` and
friends accept either a bare callable or a :class:`Clock` unchanged.

* :class:`MonotonicClock` — the default; wraps :func:`time.perf_counter`.
* :class:`FakeClock` — a manually stepped clock for deterministic tests:
  time only moves when the test calls :meth:`FakeClock.advance`.
"""

from __future__ import annotations

import time
from typing import Callable

__all__ = ["Clock", "MonotonicClock", "FakeClock", "as_clock"]


class Clock:
    """Abstract monotonic time source, callable like ``time.perf_counter``."""

    def now(self) -> float:
        """Seconds on this clock (monotonic within one instance)."""
        raise NotImplementedError

    def __call__(self) -> float:
        return self.now()


class MonotonicClock(Clock):
    """The production clock: :func:`time.perf_counter`."""

    def now(self) -> float:
        return time.perf_counter()


class FakeClock(Clock):
    """A manually advanced clock for deterministic scheduling tests.

    Time starts at ``start`` and only moves via :meth:`advance`, so a test
    controls exactly when deadlines expire and token buckets refill.
    """

    def __init__(self, start: float = 0.0) -> None:
        self.time = float(start)

    def now(self) -> float:
        return self.time

    def advance(self, seconds: float) -> float:
        """Step time forward; returns the new reading."""
        if seconds < 0:
            raise ValueError("a monotonic clock cannot move backwards")
        self.time += seconds
        return self.time


class _CallableClock(Clock):
    """Adapter giving a bare ``Callable[[], float]`` the :class:`Clock` API."""

    def __init__(self, fn: Callable[[], float]) -> None:
        self._fn = fn

    def now(self) -> float:
        return self._fn()


def as_clock(clock: Callable[[], float]) -> Clock:
    """Coerce a clock argument (a :class:`Clock` or bare callable) to a Clock."""
    if isinstance(clock, Clock):
        return clock
    if not callable(clock):
        raise TypeError(f"clock must be callable, got {type(clock).__name__}")
    return _CallableClock(clock)

"""Multi-host routed serving tier: one cluster out of N ``fuse-serve``s.

:class:`PoseRouter` is a :class:`repro.serve.frontend.SocketServerBase`
that speaks wire protocol v2 to clients on the front and holds one
pipelined :class:`repro.serve.frontend.AsyncPoseClient` per backend on the
back.  A backend is any independently running front-end — a ``fuse-serve``
process on another host, typically wrapping a
:class:`repro.serve.ProcessShardedPoseServer`.

Placement
    A :class:`repro.serve.ring.HashRing` (consistent hashing, virtual
    nodes) owns user→backend placement, so a topology change remaps only
    the changed backend's arcs.  Actual routing is *placement-first*: the
    first frame of a user pins it (``_placement``), and later frames
    follow the pin even while the ring is mid-change — the pin only moves
    under the FIFO locks that also order the user's frames.

Ordering
    One FIFO lock per backend (the shared synchronous-claim discipline of
    the front-end) keeps each backend's submissions in arrival order.
    After acquiring, a dispatch re-resolves placement: if a failover or
    migration moved the user while it waited, it re-claims the new
    backend's lock — synchronously, preserving its slot relative to later
    frames.

Failover
    A :class:`repro.serve.health.HealthMonitor` pings every backend; a
    dead backend is removed from the ring and its users lazily fail over:
    the next frame re-places the user and restores its recent session ring
    from the router's :class:`repro.serve.migration.SessionMirror`.
    Fidelity note — the mirror holds session frames only, so a failed-over
    user's *adapter* is lost (it re-personalizes from scratch); sessions
    continue bitwise-identically.  A recovered backend is **not**
    automatically re-added (its state is stale); re-attach it explicitly
    with :meth:`add_backend`.

Migration
    Planned topology changes (:meth:`add_backend`, :meth:`remove_backend`)
    move exactly the users whose placement changes: under both backends'
    locks, ``export_user(forget=True)`` drains and snapshots the user on
    the source (session ring + adapter npz bytes) and ``import_user``
    installs it on the target — predictions continue bitwise-identically,
    adapters included.

Flow control
    The router always serves clients with credit-based push flow control
    (``push_credits``), so one slow consumer defers its own pushes instead
    of growing the router's write queues without bound.
"""

from __future__ import annotations

import asyncio
import contextlib
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from ..radar.pointcloud import PointCloudFrame
from . import transport
from .faults import FaultInjector, RetryPolicy
from .frontend import (
    DEFAULT_MAX_IN_FLIGHT,
    AsyncPoseClient,
    ServerClosing,
    SocketServerBase,
    _Connection,
    _error_message,
    _parse_scheduling,
)
from .health import HealthMonitor
from .metrics import ServeMetrics, merge_expositions
from .migration import SessionMirror
from .ring import DEFAULT_VNODES, HashRing
from .transport import (
    DEFAULT_MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ArrayBlock,
)

__all__ = ["BackendSpec", "NoBackendAvailable", "PoseRouter", "RouterBackend"]

#: default per-connection push credit budget on the router's front side
DEFAULT_PUSH_CREDITS = 256

#: default router→backend retry schedule: one immediate failover retry —
#: exactly the pre-policy behaviour (the second attempt lands on the new
#: placement after a mark-down, with the mirror restore in between)
DEFAULT_FORWARD_RETRY = RetryPolicy(max_attempts=2, base_delay_s=0.0, max_delay_s=0.0)


class NoBackendAvailable(RuntimeError):
    """Every backend that could serve the request is down."""


@dataclass(frozen=True)
class BackendSpec:
    """Where one backend listens.  Exactly one of ``host`` / ``unix_path``."""

    name: str
    host: Optional[str] = None
    port: Optional[int] = None
    unix_path: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("backend name must be non-empty")
        if (self.host is None) == (self.unix_path is None):
            raise ValueError("provide exactly one of host / unix_path")
        if self.host is not None and self.port is None:
            raise ValueError("a TCP backend needs a port")

    @classmethod
    def from_endpoint(cls, name: str, endpoint: str) -> "BackendSpec":
        """``host:port`` → TCP; anything else is a Unix socket path."""
        head, sep, tail = endpoint.rpartition(":")
        if sep and tail.isdigit() and "/" not in head:
            return cls(name=name, host=head or "127.0.0.1", port=int(tail))
        return cls(name=name, unix_path=endpoint)

    @property
    def endpoint(self) -> str:
        if self.unix_path is not None:
            return self.unix_path
        return f"{self.host}:{self.port}"


class RouterBackend:
    """One attached backend: its spec, client connection, and status."""

    def __init__(self, spec: BackendSpec, client: AsyncPoseClient) -> None:
        self.spec = spec
        self.client = client
        self.healthy = True
        self.hello: dict = {}
        self.frames_routed = 0

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def shards(self) -> int:
        return int(self.hello.get("shards", 1) or 1)


class PoseRouter(SocketServerBase):
    """Consistent-hash router over N backend front-ends.

    Parameters beyond the :class:`SocketServerBase` ones:

    backends:
        The initial :class:`BackendSpec` fleet (may be empty; attach later
        with :meth:`add_backend`).
    vnodes:
        Virtual nodes per backend on the hash ring.
    codec:
        Wire codec for the backend connections (client side picks the
        richest by default).
    connect_retries / connect_backoff_s:
        Bounded-backoff dialing of each backend at :meth:`start` (absorbs
        the race against a just-spawned ``fuse-serve``).
    health_interval_s / health_timeout_s / health_failures:
        :class:`HealthMonitor` cadence, per-ping deadline and the
        consecutive-failure threshold for declaring a backend dead.
    mirror_capacity:
        Session frames mirrored per user for failover restore.
    push_credits:
        Front-side push flow control budget (always on for a router;
        ``DEFAULT_PUSH_CREDITS`` unless overridden).
    request_timeout_s:
        Per-request deadline on every routed backend call.  A timeout
        counts one failure against the backend's health streak (brownout
        detection: a backend alive enough to answer pings but too slow to
        answer requests is marked down by the same debounced threshold)
        and the call is retried under ``retry_policy``.  ``None`` (the
        default) keeps the pre-timeout behaviour: calls wait forever.
    retry_policy:
        The :class:`repro.serve.RetryPolicy` governing routed-call retries
        after a connection fault or timeout.  The default is one immediate
        failover retry, the pre-policy behaviour.
    fault_injector:
        Optional :class:`repro.serve.FaultInjector` over the router's own
        wire surfaces (``blackhole``/``reply_latency``/``corrupt_frame``/
        ``truncate_frame`` on client-facing replies).
    """

    def __init__(
        self,
        backends: Sequence[BackendSpec] = (),
        host: Optional[str] = None,
        port: int = 0,
        unix_path: Optional[str] = None,
        vnodes: int = DEFAULT_VNODES,
        codec: Optional[str] = None,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        max_in_flight: int = DEFAULT_MAX_IN_FLIGHT,
        protocol: int = PROTOCOL_VERSION,
        allow_remote_shutdown: bool = False,
        push_credits: Optional[int] = DEFAULT_PUSH_CREDITS,
        connect_retries: int = 20,
        connect_backoff_s: float = 0.05,
        health_interval_s: float = 1.0,
        health_timeout_s: float = 1.0,
        health_failures: int = 3,
        mirror_capacity: int = 64,
        request_timeout_s: Optional[float] = None,
        retry_policy: Optional[RetryPolicy] = None,
        fault_injector: Optional[FaultInjector] = None,
    ) -> None:
        super().__init__(
            host=host,
            port=port,
            unix_path=unix_path,
            max_frame_bytes=max_frame_bytes,
            max_in_flight=max_in_flight,
            protocol=protocol,
            allow_remote_shutdown=allow_remote_shutdown,
            push_credits=push_credits,
        )
        if protocol < 2:
            raise ValueError("the router requires protocol v2 (pipelining + pushes)")
        self._specs = list(backends)
        self.codec = codec
        self.connect_retries = connect_retries
        self.connect_backoff_s = connect_backoff_s
        self.ring = HashRing(vnodes=vnodes)
        self.mirror = SessionMirror(capacity=mirror_capacity)
        self.monitor = HealthMonitor(
            probe=self._ping_backend,
            interval_s=health_interval_s,
            timeout_s=health_timeout_s,
            failure_threshold=health_failures,
            on_down=self._mark_down,
        )
        self._backends: Dict[str, RouterBackend] = {}
        #: user -> backend name: where the user's state lives *now*.
        #: Routing consults this before the ring, so a mid-change ring
        #: never forwards a pinned user to a backend without its state.
        self._placement: Dict[Hashable, str] = {}
        if request_timeout_s is not None and request_timeout_s <= 0:
            raise ValueError("request_timeout_s must be positive, or None")
        self.request_timeout_s = request_timeout_s
        self.retry_policy = retry_policy if retry_policy is not None else DEFAULT_FORWARD_RETRY
        self.fault_injector = fault_injector
        self._admin_lock = asyncio.Lock()
        self.frames_routed = 0
        self.users_failed_over = 0
        self.users_migrated = 0
        self.backends_lost = 0
        self.request_timeouts = 0
        self.retries = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def _before_listen(self) -> None:
        for spec in self._specs:
            await self._attach(spec)

    async def _after_listen(self) -> None:
        self.monitor.start()

    async def _before_unbind(self) -> None:
        await self.monitor.stop()

    async def _after_unbind(self) -> None:
        for backend in list(self._backends.values()):
            with contextlib.suppress(Exception):
                await backend.client.close()
        self._backends.clear()

    async def _attach(self, spec: BackendSpec) -> RouterBackend:
        if spec.name in self._backends:
            raise ValueError(f"backend {spec.name!r} is already attached")
        # rate_limit_retries=0: a backend's shed is *relayed* to the end
        # client (with its retry_after_ms hint) rather than absorbed by
        # router-side sleeps — the client owns the backoff decision.
        client = AsyncPoseClient(codec=self.codec, reconnect=True, rate_limit_retries=0)
        if spec.unix_path is not None:
            await client.connect_unix(
                spec.unix_path,
                retries=self.connect_retries,
                backoff_s=self.connect_backoff_s,
            )
        else:
            await client.connect_tcp(
                spec.host,
                spec.port,
                retries=self.connect_retries,
                backoff_s=self.connect_backoff_s,
            )
        backend = RouterBackend(spec, client)
        try:
            backend.hello = await client.hello()
            protocol = int(backend.hello.get("protocol", 1))
            if protocol < 2:
                raise ValueError(
                    f"backend {spec.name!r} speaks protocol v{protocol}; the "
                    "router needs v2 (pipelining, pushes, migration frames)"
                )
        except BaseException:
            await client.close()
            raise
        self._backends[spec.name] = backend
        self.ring.add(spec.name)
        self.monitor.watch(spec.name)
        return backend

    # ------------------------------------------------------------------
    # Health / failover
    # ------------------------------------------------------------------
    async def _ping_backend(self, name: str) -> bool:
        backend = self._backends.get(name)
        if backend is None or not backend.healthy:
            return False
        reply = await backend.client.request({"type": "ping"})
        if reply.get("degraded"):
            # The backend answers but advertises degradation (a shard past
            # its restart budget): treat the probe as failed so the same
            # debounced threshold marks it down and drains its users.
            return False
        return reply["type"] == "pong"

    def _mark_down(self, name: str) -> None:
        """Declare a backend dead: off the ring, users fail over lazily."""
        backend = self._backends.get(name)
        if backend is None or not backend.healthy:
            return
        backend.healthy = False
        self.backends_lost += 1
        if name in self.ring:
            self.ring.remove(name)
        # Placement pins stay: _ensure_placed detects the dead pin on the
        # user's next frame and restores from the mirror on the new owner.

    def healthy_backends(self) -> List[RouterBackend]:
        return [b for b in self._backends.values() if b.healthy]

    @property
    def backends(self) -> Dict[str, RouterBackend]:
        return dict(self._backends)

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def _resolve(self, user: Hashable) -> str:
        """The backend that should serve the user's next frame, by name."""
        name = self._placement.get(user)
        if name is not None:
            backend = self._backends.get(name)
            if backend is not None and backend.healthy:
                return name
        try:
            return self.ring.node_for(user)
        except LookupError as error:
            raise NoBackendAvailable("no healthy backend on the ring") from error

    @contextlib.asynccontextmanager
    async def _user_backend(self, user: Hashable):
        """Hold the user's backend FIFO lock; yield the placed backend.

        The claim is taken synchronously at dispatch, so per-backend
        submission order equals arrival order.  If placement moved while
        the claim waited (failover, migration), the stale lock is released
        and the new one claimed synchronously — the slot relative to later
        frames is preserved.
        """
        while True:
            name = self._resolve(user)
            lock = self._fifo_lock(name)
            await lock.acquire(lock.claim())
            if self._resolve(user) == name:
                break
            lock.release()  # placement moved while waiting: re-claim
        try:
            backend = await self._ensure_placed(user, name)
            yield backend
        finally:
            lock.release()

    async def _ensure_placed(self, user: Hashable, name: str) -> RouterBackend:
        """Pin the user to ``name``, moving or restoring state if needed.

        Runs under ``name``'s FIFO lock.  Three cases:

        * already pinned here — nothing to do;
        * pinned to a live backend elsewhere (the ring moved the user
          outside a planned migration) — live-migrate: export (drain +
          forget) there, import here, adapters included;
        * pinned to a dead backend — failover: restore the session ring
          from the mirror (the adapter is lost with the backend).
        """
        backend = self._backends[name]
        previous = self._placement.get(user)
        if previous == name:
            return backend
        state: Optional[dict] = None
        if previous is not None:
            source = self._backends.get(previous)
            if source is not None and source.healthy:
                state = await source.client.export_user(user, forget=True)
                self.users_migrated += 1
            else:
                state = self.mirror.user_state(user)
                self.users_failed_over += 1
        if state is not None:
            await backend.client.import_user(state)
        self._placement[user] = name
        return backend

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _hello_extra(self) -> dict:
        backends = sorted(self._backends)
        return {
            "role": "router",
            "backends": backends,
            "shards": sum(b.shards for b in self._backends.values()),
        }

    async def _dispatch_extra(
        self, conn: _Connection, message: dict, request_id, codec: str
    ) -> dict:
        kind = message["type"]
        if kind == "submit":
            return await self._submit(message)
        if kind == "enqueue":
            return await self._enqueue(conn, message, request_id, codec)
        if kind == "poll":
            return {"type": "flushed", "produced": await self._fan_produce("poll")}
        if kind == "flush":
            return {"type": "flushed", "produced": await self._fan_produce("flush")}
        if kind == "submit_batch":
            return await self._submit_batch(conn, message, request_id, codec)
        if kind == "metrics":
            return {"type": "metrics_report", "metrics": await self.cluster_metrics()}
        if kind == "prometheus":
            return {"type": "prometheus_report", "text": await self.cluster_prometheus()}
        if kind == "export_user":
            return await self._export_user(message)
        if kind == "import_user":
            return await self._import_user(message)
        return await super()._dispatch_extra(conn, message, request_id, codec)

    @staticmethod
    def _parse_frame(frame: dict) -> PointCloudFrame:
        points = np.asarray(frame["points"], dtype=float)
        timestamp = float(frame.get("timestamp", 0.0))
        frame_index = int(frame.get("frame_index", 0))
        return PointCloudFrame(points, timestamp=timestamp, frame_index=frame_index)

    @staticmethod
    def _remaining_deadline(deadline_ms, start: float, loop) -> Optional[float]:
        """The deadline budget left after router queueing/retry time.

        The router spends part of a request's ``deadline_ms`` waiting on
        FIFO locks, failed attempts and retry backoff; forwarding the
        *remaining* budget lets the backend shed a request that already
        blew it instead of computing a prediction nobody is waiting for.
        Clamped to zero: the backend treats ``deadline_ms=0`` as "already
        exhausted, shed" while a negative value is a client error.
        """
        if deadline_ms is None:
            return None
        return max(deadline_ms - (loop.time() - start) * 1000.0, 0.0)

    async def _forward(self, user: Hashable, call, *args, repair_on_retry: bool = False):
        """One routed backend call under the retry policy and timeout.

        A connection fault marks the backend down immediately (faster than
        waiting for the health monitor) and the retry goes through the new
        placement — the mirror restore inside :meth:`_ensure_placed` makes
        it land on a backend that has the user's session.  A per-request
        timeout counts one failure against the backend's health streak
        (brownout detection: the debounced threshold marks a slow-but-alive
        backend down) before the retry; attempts are spaced by the policy's
        deterministic backoff, salted per user.

        ``repair_on_retry`` is set by the frame-carrying ops: a failed
        attempt is *possibly applied* (the backend may have fed the frame
        to the user's fusion ring even though no reply arrived), so before
        re-calling, the retry resets the backend session to the mirror's
        accepted frames (:meth:`SessionMirror.repair_state`) — the fusion
        window is never fed the same frame twice.
        """
        policy = self.retry_policy
        last_error: Optional[Exception] = None
        needs_repair = False
        for attempt in range(policy.max_attempts):
            if attempt:
                self.retries += 1
                delay = policy.delay(attempt - 1, salt=repr(user))
                if delay > 0:
                    await asyncio.sleep(delay)
            async with self._user_backend(user) as backend:
                if needs_repair:
                    await self._repair_session(user, backend)
                    needs_repair = False
                try:
                    if self.request_timeout_s is not None:
                        result = await asyncio.wait_for(
                            call(backend, *args), timeout=self.request_timeout_s
                        )
                    else:
                        result = await call(backend, *args)
                except asyncio.TimeoutError:
                    self.request_timeouts += 1
                    await self.monitor.record_failure(backend.name)
                    last_error = TimeoutError(
                        f"backend {backend.name!r} did not answer within "
                        f"{self.request_timeout_s:g}s"
                    )
                    needs_repair = repair_on_retry
                    continue
                except (ConnectionError, OSError) as error:
                    self._mark_down(backend.name)
                    last_error = error
                    needs_repair = repair_on_retry
                    continue
                self.monitor.record_success(backend.name)
                backend.frames_routed += 1
                self.frames_routed += 1
                return result
        if last_error is not None:
            raise last_error
        raise NoBackendAvailable("no healthy backend on the ring")  # pragma: no cover

    async def _repair_session(self, user: Hashable, backend: RouterBackend) -> None:
        """Reset the user's backend session to the mirror before a retry.

        Best-effort and bounded by the request timeout: when the repair
        import itself fails the backend is almost certainly dead and the
        next failure marks it down — the subsequent placement restores from
        the mirror anyway.  The import carries no adapter (``None``), so a
        backend-resident adapter is left untouched.
        """
        state = self.mirror.repair_state(user)
        try:
            if self.request_timeout_s is not None:
                await asyncio.wait_for(
                    backend.client.import_user(state), timeout=self.request_timeout_s
                )
            else:
                await backend.client.import_user(state)
        except (asyncio.TimeoutError, ConnectionError, OSError):
            pass

    async def _submit(self, message: dict) -> dict:
        if self._closing.is_set():
            raise ServerClosing("router is shutting down")
        try:
            user = message["user"]
            cloud = self._parse_frame(message["frame"])
        except (KeyError, TypeError, ValueError) as error:
            raise transport.ProtocolError(f"malformed submit message: {error}") from error
        priority, deadline_ms = _parse_scheduling(message)
        loop = asyncio.get_running_loop()
        start = loop.time()

        async def call(backend, cloud):
            joints = await backend.client.submit(
                user,
                cloud,
                priority=priority,
                deadline_ms=self._remaining_deadline(deadline_ms, start, loop),
            )
            # Mirror only *accepted* frames: observing before the call would
            # leave a failed attempt's frame in the mirror, and the failover
            # restore plus the retry would then feed it to fusion twice.
            self.mirror.observe(user, cloud.points, cloud.timestamp, cloud.frame_index)
            return joints

        joints = await self._forward(user, call, cloud, repair_on_retry=True)
        return {
            "type": "prediction",
            "user": user,
            "joints": np.asarray(joints),
            "latency_ms": (loop.time() - start) * 1000.0,
        }

    async def _enqueue(self, conn: _Connection, message: dict, request_id, codec: str) -> dict:
        if self._closing.is_set():
            raise ServerClosing("router is shutting down")
        if request_id is None:
            raise transport.ProtocolError(
                "enqueue requires a request id (it doubles as the ticket)"
            )
        if request_id in conn.tickets:
            raise transport.ProtocolError(
                f"ticket {request_id!r} is still outstanding on this connection"
            )
        try:
            user = message["user"]
            cloud = self._parse_frame(message["frame"])
        except (KeyError, TypeError, ValueError) as error:
            raise transport.ProtocolError(f"malformed enqueue message: {error}") from error
        priority, deadline_ms = _parse_scheduling(message)

        loop = asyncio.get_running_loop()
        start = loop.time()

        async def call(backend, cloud):
            push = await backend.client.enqueue(
                user,
                cloud,
                priority=priority,
                deadline_ms=self._remaining_deadline(deadline_ms, start, loop),
            )
            # The ticket reply means the backend admitted the frame into its
            # session; only then does it belong in the failover mirror.
            self.mirror.observe(user, cloud.points, cloud.timestamp, cloud.frame_index)
            return push

        push_future = await self._forward(user, call, cloud, repair_on_retry=True)
        conn.tickets[request_id] = (user, push_future, codec)
        push_future.add_done_callback(
            lambda fut: self._relay_push(conn, request_id, user, codec, fut)
        )
        return {"type": "ticket", "user": user, "ticket": request_id}

    def _relay_push(self, conn: _Connection, ticket, user, codec: str, fut) -> None:
        """A backend pushed (or failed) a ticket: relay to the client."""
        if ticket not in conn.tickets:
            return  # connection tore down first
        conn.tickets.pop(ticket, None)
        try:
            pushed = fut.result()
            push = {
                "type": "prediction",
                "user": user,
                "ticket": ticket,
                "joints": np.asarray(pushed["joints"]),
                "pushed": True,
            }
        except Exception as error:
            push = _error_message(error)
            push["ticket"] = ticket
        self._push(conn, push, codec)

    async def _fan_produce(self, method: str) -> int:
        """poll/flush every healthy backend; sum the predictions produced."""
        backends = self.healthy_backends()
        outcomes = await asyncio.gather(
            *(getattr(b.client, method)() for b in backends), return_exceptions=True
        )
        produced = 0
        for backend, outcome in zip(backends, outcomes):
            if isinstance(outcome, (ConnectionError, OSError)):
                self._mark_down(backend.name)
            elif isinstance(outcome, BaseException):
                raise outcome
            else:
                produced += int(outcome)
        return produced

    async def _submit_batch(
        self, conn: _Connection, message: dict, request_id, codec: str
    ) -> dict:
        if self._closing.is_set():
            raise ServerClosing("router is shutting down")
        try:
            users = list(message["users"])
            frames = message["frames"]
            points = list(frames["points"])
            timestamps = list(frames.get("timestamps") or [0.0] * len(points))
            frame_indices = list(frames.get("frame_indices") or [0] * len(points))
        except (KeyError, TypeError, ValueError) as error:
            raise transport.ProtocolError(
                f"malformed submit_batch message: {error}"
            ) from error
        if not users or not (len(users) == len(points) == len(timestamps) == len(frame_indices)):
            raise transport.ProtocolError(
                "submit_batch requires equally sized, non-empty users/frames lists"
            )
        try:
            items: List[Tuple[Hashable, PointCloudFrame]] = [
                (
                    user,
                    PointCloudFrame(
                        np.asarray(cloud, dtype=float),
                        timestamp=float(timestamp),
                        frame_index=int(frame_index),
                    ),
                )
                for user, cloud, timestamp, frame_index in zip(
                    users, points, timestamps, frame_indices
                )
            ]
        except (TypeError, ValueError) as error:
            raise transport.ProtocolError(
                f"malformed submit_batch frame: {error}"
            ) from error
        priority, _ = _parse_scheduling(message)
        # Streamed mode mirrors the front-end's: each forwarded frame's
        # prediction is pushed (correlated by ``batch``/``index``) the
        # moment its backend answers, ahead of the aggregate reply.
        stream = bool(message.get("stream")) and request_id is not None
        loop = asyncio.get_running_loop()
        start = loop.time()

        # A batch keeps per-user frame order by forwarding each user's
        # frames sequentially, users fanned out concurrently.  (Per-user,
        # not per-backend: a user mid-failover may move backends between
        # two of its frames, and _forward handles that per call.)
        by_user: Dict[Hashable, List[int]] = {}
        for position, (user, _) in enumerate(items):
            by_user.setdefault(user, []).append(position)

        resolutions: List = [None] * len(items)

        async def run_user(user: Hashable, positions: List[int]) -> None:
            for position in positions:
                cloud = items[position][1]

                async def call(backend, cloud):
                    joints = await backend.client.submit(user, cloud, priority=priority)
                    self.mirror.observe(
                        user, cloud.points, cloud.timestamp, cloud.frame_index
                    )
                    return joints

                try:
                    value = np.asarray(
                        await self._forward(user, call, cloud, repair_on_retry=True)
                    )
                except Exception as error:
                    resolutions[position] = error
                    continue
                resolutions[position] = value
                if stream:
                    self._push(
                        conn,
                        {
                            "type": "prediction",
                            "user": user,
                            "batch": request_id,
                            "index": position,
                            "joints": value,
                            "pushed": True,
                        },
                        codec,
                    )

        await asyncio.gather(
            *(run_user(user, positions) for user, positions in by_user.items())
        )

        results: List[dict] = []
        joints: List[np.ndarray] = []
        for user, value in zip(users, resolutions):
            if isinstance(value, Exception):
                # _error_message unwraps a relayed ServerError to its
                # origin class name; reuse it for the per-item shape.
                relayed = _error_message(value)
                results.append(
                    {
                        "ok": False,
                        "user": user,
                        "error": relayed["error"],
                        "detail": relayed["detail"],
                    }
                )
            else:
                results.append({"ok": True, "user": user})
                joints.append(np.asarray(value))
        return {
            "type": "predictions",
            "results": results,
            "joints": ArrayBlock(joints),
            "latency_ms": (loop.time() - start) * 1000.0,
        }

    async def _export_user(self, message: dict) -> dict:
        try:
            user = message["user"]
        except KeyError as error:
            raise transport.ProtocolError(f"malformed export_user message: {error}") from error
        forget = bool(message.get("forget", False))

        async def call(backend, forget):
            return await backend.client.export_user(user, forget=forget)

        state = await self._forward(user, call, forget)
        if forget:
            self._placement.pop(user, None)
            self.mirror.forget(user)
        return {"type": "user_state", "user": user, "state": state}

    async def _import_user(self, message: dict) -> dict:
        state = message.get("state")
        if not isinstance(state, dict):
            raise transport.ProtocolError("import_user requires a state mapping")
        user = state.get("user")

        async def call(backend, state):
            return await backend.client.import_user(state)

        user = await self._forward(user, call, state)
        return {"type": "imported", "user": user}

    # ------------------------------------------------------------------
    # Cluster observability
    # ------------------------------------------------------------------
    def router_metrics(self) -> Dict[str, float]:
        """The router's own counters (merged into :meth:`cluster_metrics`)."""
        return {
            "router_connections_served": self.connections_served,
            "router_requests_served": self.requests_served,
            "router_predictions_pushed": self.predictions_pushed,
            "router_protocol_errors": self.protocol_errors,
            "router_frames_routed": self.frames_routed,
            "router_users_failed_over": self.users_failed_over,
            "router_users_migrated": self.users_migrated,
            "router_backends_lost": self.backends_lost,
            "router_request_timeouts": self.request_timeouts,
            "router_retries": self.retries,
            "router_backends_healthy": len(self.healthy_backends()),
            "router_backends_total": len(self._backends),
            "router_users_placed": len(self._placement),
        }

    async def cluster_metrics(self) -> Dict[str, float]:
        """Cluster-wide snapshot: per-backend aggregates + router counters.

        Backend snapshots come over the wire as plain dicts, so the
        snapshot-tolerant :meth:`ServeMetrics.aggregate` path merges them —
        a backend missing newer counters contributes zeros.
        """
        backends = self.healthy_backends()
        snapshots = []
        for backend, outcome in zip(
            backends,
            await asyncio.gather(
                *(b.client.metrics() for b in backends), return_exceptions=True
            ),
        ):
            if isinstance(outcome, (ConnectionError, OSError)):
                self._mark_down(backend.name)
            elif isinstance(outcome, BaseException):
                raise outcome
            else:
                snapshots.append(outcome)
        report: Dict[str, float] = (
            dict(ServeMetrics.aggregate(snapshots)) if snapshots else {}
        )
        report.update(self.router_metrics())
        return report

    async def cluster_prometheus(self) -> str:
        """One exposition: every backend labelled ``instance=<name>``."""
        backends = self.healthy_backends()
        parts: List[Tuple[str, Optional[dict]]] = []
        for backend, outcome in zip(
            backends,
            await asyncio.gather(
                *(b.client.prometheus() for b in backends), return_exceptions=True
            ),
        ):
            if isinstance(outcome, (ConnectionError, OSError)):
                self._mark_down(backend.name)
            elif isinstance(outcome, BaseException):
                raise outcome
            else:
                parts.append((outcome, {"instance": backend.name}))
        parts.append((self._router_exposition(), None))
        return merge_expositions(parts)

    def _router_exposition(self) -> str:
        lines = []
        for key, value in self.router_metrics().items():
            name = f"fuse_router_{key[len('router_'):]}"
            kind = "gauge" if key.endswith(("_healthy", "_total", "_placed")) else "counter"
            if kind == "counter":
                name += "_total"
            lines.append(f"# HELP {name} Router {key[len('router_'):].replace('_', ' ')}.")
            lines.append(f"# TYPE {name} {kind}")
            lines.append(f"{name} {float(value):.10g}")
        return "\n".join(lines) + "\n"

    # ------------------------------------------------------------------
    # Topology administration
    # ------------------------------------------------------------------
    async def add_backend(self, spec: BackendSpec) -> RouterBackend:
        """Attach a backend and live-migrate the users its arcs claim."""
        async with self._admin_lock:
            backend = await self._attach(spec)  # also adds to the ring
            new_ring = self.ring
            await self._rebalance(new_ring)
            return backend

    async def remove_backend(self, name: str) -> None:
        """Detach a backend after live-migrating its users away."""
        async with self._admin_lock:
            backend = self._backends.get(name)
            if backend is None:
                raise KeyError(f"backend {name!r} is not attached")
            if len(self.healthy_backends()) <= 1 and backend.healthy and self._placement:
                raise RuntimeError(
                    "cannot remove the last healthy backend while users are placed"
                )
            if name in self.ring:
                self.ring.remove(name)
            self.monitor.unwatch(name)
            if backend.healthy:
                await self._rebalance(self.ring)
            backend.healthy = False
            self._backends.pop(name, None)
            # Any user still pinned here (rebalance skips dead sources)
            # fails over on its next frame.
            await backend.client.close()

    async def migrate_user(self, user: Hashable, target: str) -> bool:
        """Explicitly move one user to ``target`` (drain, transfer, re-pin).

        Returns False when the user is unknown or already there.
        """
        if target not in self._backends or not self._backends[target].healthy:
            raise ValueError(f"backend {target!r} is not attached and healthy")
        async with self._admin_lock:
            return await self._migrate(user, target)

    async def _rebalance(self, ring: HashRing) -> None:
        """Move every pinned user whose ring placement changed."""
        moved = [
            user
            for user, name in list(self._placement.items())
            if ring.node_for(user) != name
        ]
        for user in moved:
            await self._migrate(user, ring.node_for(user))

    async def _migrate(self, user: Hashable, target: str) -> bool:
        """Live-migrate one user under both backends' FIFO locks.

        The source lock drains the user's in-flight frames (FIFO: our
        claim waits behind them); the target lock keeps later frames
        (which re-resolve to the target) behind the import.  Locks are
        claimed in sorted-name order; dispatchers hold at most one lock,
        so the two-lock hold cannot deadlock (admin calls serialize on
        ``_admin_lock``).
        """
        source = self._placement.get(user)
        if source == target:
            return False
        names = sorted({source, target} - {None})
        locks = [self._fifo_lock(name) for name in names]
        claims = [lock.claim() for lock in locks]  # synchronous: FIFO slots
        for lock, claim in zip(locks, claims):
            await lock.acquire(claim)
        try:
            source_backend = self._backends.get(source) if source else None
            state: Optional[dict] = None
            if source_backend is not None and source_backend.healthy:
                state = await source_backend.client.export_user(user, forget=True)
            elif source is not None:
                state = self.mirror.user_state(user)  # dead source: best effort
                if state is not None:
                    self.users_failed_over += 1
            if state is not None:
                await self._backends[target].client.import_user(state)
            self._placement[user] = target
            if source is not None and source_backend is not None and source_backend.healthy:
                self.users_migrated += 1
            return state is not None
        finally:
            for lock in locks:
                lock.release()

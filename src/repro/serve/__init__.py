"""``repro.serve`` — streaming multi-user pose serving, in-process to socket.

The serving subsystem turns the reproduction from an experiment harness into
a deployable system: many users stream radar frames, the server fuses each
user's frames (streaming multi-frame fusion over a per-session ring buffer),
coalesces requests *across users* into micro-batches, and answers through
batch-invariant inference kernels so coalescing never changes a prediction.

Pieces, inside-out:

* :class:`ServeConfig` — scheduling and capacity knobs;
* :class:`PoseServer` — the synchronous in-process front door
  (``submit(user_id, frame) -> (joints, 3)``);
* :class:`SessionManager` / :class:`UserSession` — per-user sliding frame
  windows feeding streaming fusion;
* :class:`MicroBatcher` — bounded pending queue with max-batch/max-latency
  scheduling and drop-oldest backpressure;
* :class:`AdapterRegistry` — per-user fine-tuned parameter sets, adapted in
  grouped task-batched calls, gathered per micro-batch and persistable
  (``save`` / ``load`` on :mod:`repro.nn.serialization`);
* :class:`SharedParameterKernel` — fixed-GEMM-shape inference for the shared
  base parameters (the reason batched == unbatched, bitwise);
* :class:`ServeMetrics` — latency percentiles, throughput, queue depth and
  cache hit rates, with Prometheus text export and picklable state transfer
  for cross-process aggregation;
* :class:`ShardedPoseServer` — N independent server shards behind one
  façade; users hash onto shards (:func:`repro.runtime.shard_for`), each
  shard owns its registry/batcher/sessions, metrics aggregate across shards;
* :class:`ProcessShardedPoseServer` — the same shard layout with every
  shard in its own worker process (:mod:`repro.serve.worker`): bounded
  request/reply pipes, graceful shutdown, restart on crash, replay still
  bitwise identical to the in-process servers;
* :class:`PoseFrontend` / :class:`AsyncPoseClient`
  (:mod:`repro.serve.frontend`) — the asyncio socket layer speaking the
  length-prefixed msgpack/JSON wire protocol of
  :mod:`repro.serve.transport`, v2: pipelined multi-in-flight connections
  with out-of-order reply correlation, a streaming ``enqueue``/push path
  that feeds the cross-user micro-batcher from remote traffic, and
  batched submits carrying N frames per wire frame in one contiguous
  zero-copy ndarray block;
* the replay driver (:func:`replay_users`, :func:`user_streams_from_dataset`)
  simulating N concurrent users from the synthetic dataset;
* the cluster tier (:mod:`repro.serve.router`) — :class:`PoseRouter`
  fronts N independent backend front-ends behind one socket: a
  :class:`HashRing` (consistent hashing, virtual nodes) owns user→backend
  placement, a :class:`HealthMonitor` ping-checks backends and a dead one
  fails over to the survivors (sessions restored from a
  :class:`SessionMirror`), planned topology changes live-migrate users
  (adapter + session ring over the wire, bitwise-identical predictions),
  and pushed predictions flow under per-connection credit grants.
"""

from .adapters import AdapterRegistry
from .batcher import FrameDropped, MicroBatcher, PendingPrediction, QueueFull, ServeRequest
from .cli_utils import ReadyAddress, format_ready_line, parse_ready_line, wait_for_ready
from .clock import Clock, FakeClock, MonotonicClock, as_clock
from .config import ServeConfig
from .faults import FaultInjector, FaultPlan, FaultRule, RetryPolicy, maybe_injector
from .policy import AdapterPolicy
from .scheduling import RateLimited, SchedulingPolicy, TokenBucket, TrafficClass
from .frontend import (
    AsyncPoseClient,
    PoseFrontend,
    ServerClosing,
    ServerError,
    SocketServerBase,
)
from .health import HealthMonitor
from .kernel import SharedParameterKernel
from .metrics import ServeMetrics, merge_expositions, percentile, prometheus_exposition
from .migration import (
    MigrationError,
    SessionMirror,
    export_user_state,
    import_user_state,
    migrate_user,
)
from .ring import HashRing
from .router import BackendSpec, NoBackendAvailable, PoseRouter, RouterBackend
from .replay import (
    ReplayResult,
    adaptation_split,
    replay_users,
    sequential_reference,
    user_streams_from_dataset,
)
from .server import PoseServer
from .session import SessionManager, UserSession, streaming_window
from .sharded import ProcessShardedPoseServer, ShardedPoseServer
from .worker import ShardCrashed, ShardDegraded, ShardProcess, ShardRemoteError

__all__ = [
    "AdapterPolicy",
    "AdapterRegistry",
    "AsyncPoseClient",
    "BackendSpec",
    "Clock",
    "FakeClock",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "FrameDropped",
    "HashRing",
    "HealthMonitor",
    "MicroBatcher",
    "MigrationError",
    "MonotonicClock",
    "NoBackendAvailable",
    "PendingPrediction",
    "PoseFrontend",
    "PoseRouter",
    "PoseServer",
    "ProcessShardedPoseServer",
    "QueueFull",
    "RateLimited",
    "ReadyAddress",
    "ReplayResult",
    "RetryPolicy",
    "RouterBackend",
    "SchedulingPolicy",
    "ServeConfig",
    "ServeMetrics",
    "ServeRequest",
    "ServerClosing",
    "ServerError",
    "SessionManager",
    "SessionMirror",
    "ShardCrashed",
    "ShardDegraded",
    "ShardProcess",
    "ShardRemoteError",
    "SharedParameterKernel",
    "ShardedPoseServer",
    "SocketServerBase",
    "TokenBucket",
    "TrafficClass",
    "UserSession",
    "adaptation_split",
    "as_clock",
    "export_user_state",
    "format_ready_line",
    "import_user_state",
    "maybe_injector",
    "merge_expositions",
    "migrate_user",
    "parse_ready_line",
    "percentile",
    "prometheus_exposition",
    "replay_users",
    "sequential_reference",
    "streaming_window",
    "user_streams_from_dataset",
    "wait_for_ready",
]

"""Cross-user micro-batching: the deadline-ordered pending queue.

The :class:`MicroBatcher` is the scheduling half of the serving layer.  It
owns the bounded queue of pending requests ordered **earliest-deadline-first**
(EDF): every request carries an absolute deadline — its arrival time plus its
traffic class's latency budget — batches assemble in deadline order, and a
partial batch closes exactly when its earliest deadline arrives.  That is the
per-request generalization of the old single global ``max_delay_ms``: with
one class and a uniform budget, EDF order *is* arrival order and the batcher
behaves bit-for-bit like its arrival-order predecessor.  It applies
backpressure when producers outrun the model — the classic request-coalescing
pattern of RAN/inference serving systems (cf. ACCoRD in PAPERS.md), kept
single-threaded and deterministic here so serving results are replayable.

Execution of a drained batch belongs to :class:`repro.serve.PoseServer`; the
batcher never touches the model.
"""

from __future__ import annotations

import heapq
from typing import Callable, Hashable, List, Optional, Tuple

import numpy as np

from ..radar.pointcloud import PointCloudFrame
from .config import ServeConfig
from .metrics import ServeMetrics

__all__ = ["FrameDropped", "QueueFull", "PendingPrediction", "ServeRequest", "MicroBatcher"]


class FrameDropped(RuntimeError):
    """Raised when a request's prediction was dropped under backpressure.

    ``retry_after_ms``, when set, is the backoff hint the dropping side
    attaches (copied onto the correlated wire error frame).
    """

    def __init__(self, message: str, retry_after_ms: Optional[float] = None) -> None:
        super().__init__(message)
        self.retry_after_ms = retry_after_ms


class QueueFull(RuntimeError):
    """Raised under the ``"reject"`` overflow policy when the queue is full."""

    def __init__(self, message: str, retry_after_ms: Optional[float] = None) -> None:
        super().__init__(message)
        self.retry_after_ms = retry_after_ms


class PendingPrediction:
    """Handle to a prediction that a future micro-batch will produce.

    The handle resolves when the request's batch is flushed.  Calling
    :meth:`result` forces outstanding flushes first, so a caller that cannot
    wait for co-riders still gets an answer synchronously.  A handle dropped
    under backpressure resolves to the dropped state with a reason — never
    left permanently pending, so a poller always observes an outcome.
    """

    __slots__ = (
        "user_id",
        "sequence",
        "submitted_at",
        "_value",
        "_dropped",
        "_drop_reason",
        "_flush",
    )

    def __init__(
        self,
        user_id: Hashable,
        sequence: int,
        submitted_at: float,
        flush: Callable[[], int],
    ) -> None:
        self.user_id = user_id
        self.sequence = sequence
        self.submitted_at = submitted_at
        self._value: Optional[np.ndarray] = None
        self._dropped = False
        self._drop_reason: Optional[str] = None
        self._flush = flush

    @property
    def done(self) -> bool:
        return self._value is not None

    @property
    def dropped(self) -> bool:
        return self._dropped

    @property
    def drop_reason(self) -> Optional[str]:
        """Why this request was dropped (``None`` while not dropped)."""
        return self._drop_reason

    def _resolve(self, value: np.ndarray) -> None:
        self._value = value

    def _drop(self, reason: Optional[str] = None) -> None:
        self._dropped = True
        self._drop_reason = reason

    def result(self, flush: bool = True) -> np.ndarray:
        """The ``(joints, 3)`` prediction, forcing a flush if still pending."""
        while self._value is None and not self._dropped and flush:
            if self._flush() == 0:
                break
        if self._dropped:
            detail = f" ({self._drop_reason})" if self._drop_reason else ""
            raise FrameDropped(
                f"request {self.sequence} of user {self.user_id!r} was dropped "
                f"under backpressure{detail}"
            )
        if self._value is None:
            raise RuntimeError(
                f"request {self.sequence} of user {self.user_id!r} is still pending"
            )
        return self._value


class ServeRequest:
    """One enqueued frame: the fused cloud plus scheduling bookkeeping."""

    __slots__ = ("user_id", "fused", "pending", "arrival", "deadline", "traffic_class", "features")

    def __init__(
        self,
        user_id: Hashable,
        fused: PointCloudFrame,
        pending: PendingPrediction,
        arrival: float,
        deadline: Optional[float] = None,
        traffic_class: str = "interactive",
        features: Optional[np.ndarray] = None,
    ) -> None:
        self.user_id = user_id
        self.fused = fused
        self.pending = pending
        self.arrival = arrival
        # Back-compat: a request built without a deadline closes immediately,
        # like a zero-budget class would.
        self.deadline = deadline if deadline is not None else arrival
        self.traffic_class = traffic_class
        self.features = features

    def __repr__(self) -> str:  # keep dataclass-era debuggability
        return (
            f"ServeRequest(user_id={self.user_id!r}, "
            f"sequence={self.pending.sequence}, arrival={self.arrival!r}, "
            f"deadline={self.deadline!r}, traffic_class={self.traffic_class!r})"
        )


class MicroBatcher:
    """Bounded deterministic EDF queue of :class:`ServeRequest` objects.

    The heap orders pending requests by ``(deadline, sequence)``: earliest
    deadline first, arrival order as the deterministic tiebreak.  Because
    the inference kernels are batch-composition invariant, the EDF
    reordering never changes a request's predicted values — only *when* it
    is served.
    """

    def __init__(self, config: ServeConfig, metrics: Optional[ServeMetrics] = None) -> None:
        self.config = config
        self.metrics = metrics
        self._pending: List[Tuple[float, int, ServeRequest]] = []

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def full(self) -> bool:
        """Whether the next flush is due on capacity grounds."""
        return len(self._pending) >= self.config.max_batch_size

    def admit(self) -> None:
        """Make room for one incoming request per the overflow policy.

        Called *before* the request is built so a rejected submission has no
        side effects (in particular, it must not touch the user's session
        ring).  Under ``"drop_oldest"`` the oldest pending request — oldest
        by *arrival*, not by deadline, so a loose-budget request cannot
        shield itself from eviction — is dropped and its handle resolves to
        the dropped state with a reason and retry hint; it never hangs a
        poller.
        """
        if len(self._pending) < self.config.max_queue_depth:
            return
        retry_after_ms = self.config.scheduler.retry_after_ms
        if self.config.overflow == "reject":
            raise QueueFull(
                f"pending queue is at max_queue_depth={self.config.max_queue_depth}",
                retry_after_ms=retry_after_ms,
            )
        index = min(
            range(len(self._pending)), key=lambda position: self._pending[position][1]
        )
        _, _, oldest = self._pending.pop(index)
        heapq.heapify(self._pending)
        oldest.pending._drop(reason="evicted by a newer arrival under drop_oldest")
        if self.metrics is not None:
            self.metrics.record_drop()

    def enqueue(self, request: ServeRequest) -> None:
        """Push an admitted request (see :meth:`admit`) in deadline order."""
        heapq.heappush(
            self._pending, (request.deadline, request.pending.sequence, request)
        )

    def oldest_age(self, now: float) -> float:
        """Seconds the oldest pending request has waited (0.0 when empty)."""
        if not self._pending:
            return 0.0
        earliest_arrival = min(entry[2].arrival for entry in self._pending)
        return max(0.0, now - earliest_arrival)

    def earliest_deadline(self) -> Optional[float]:
        """The next batch-close time (``None`` when the queue is empty)."""
        return self._pending[0][0] if self._pending else None

    def due(self, now: float) -> bool:
        """Whether a flush is due: capacity reached or a deadline arrived."""
        if not self._pending:
            return False
        if self.full:
            return True
        return now >= self._pending[0][0]

    def drain(self) -> List[ServeRequest]:
        """Pop the next micro-batch: up to ``max_batch_size`` requests, EDF."""
        count = min(len(self._pending), self.config.max_batch_size)
        return [heapq.heappop(self._pending)[2] for _ in range(count)]

    def clear(self) -> int:
        """Drop every pending request (server shutdown); returns the count."""
        count = len(self._pending)
        while self._pending:
            _, _, request = heapq.heappop(self._pending)
            request.pending._drop(reason="server shutdown")
            if self.metrics is not None:
                self.metrics.record_drop()
        return count

"""Cross-user micro-batching: the pending-request queue and its policies.

The :class:`MicroBatcher` is the scheduling half of the serving layer.  It
owns the bounded queue of pending requests, decides when a micro-batch is due
(capacity reached or the oldest request's latency budget spent) and applies
backpressure when producers outrun the model — the classic request-coalescing
pattern of RAN/inference serving systems (cf. ACCoRD in PAPERS.md), kept
single-threaded and deterministic here so serving results are replayable.

Execution of a drained batch belongs to :class:`repro.serve.PoseServer`; the
batcher never touches the model.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Hashable, List, Optional

import numpy as np

from ..radar.pointcloud import PointCloudFrame
from .config import ServeConfig
from .metrics import ServeMetrics

__all__ = ["FrameDropped", "QueueFull", "PendingPrediction", "ServeRequest", "MicroBatcher"]


class FrameDropped(RuntimeError):
    """Raised when a request's prediction was dropped under backpressure."""


class QueueFull(RuntimeError):
    """Raised under the ``"reject"`` overflow policy when the queue is full."""


class PendingPrediction:
    """Handle to a prediction that a future micro-batch will produce.

    The handle resolves when the request's batch is flushed.  Calling
    :meth:`result` forces outstanding flushes first, so a caller that cannot
    wait for co-riders still gets an answer synchronously.
    """

    __slots__ = ("user_id", "sequence", "submitted_at", "_value", "_dropped", "_flush")

    def __init__(
        self,
        user_id: Hashable,
        sequence: int,
        submitted_at: float,
        flush: Callable[[], int],
    ) -> None:
        self.user_id = user_id
        self.sequence = sequence
        self.submitted_at = submitted_at
        self._value: Optional[np.ndarray] = None
        self._dropped = False
        self._flush = flush

    @property
    def done(self) -> bool:
        return self._value is not None

    @property
    def dropped(self) -> bool:
        return self._dropped

    def _resolve(self, value: np.ndarray) -> None:
        self._value = value

    def _drop(self) -> None:
        self._dropped = True

    def result(self, flush: bool = True) -> np.ndarray:
        """The ``(joints, 3)`` prediction, forcing a flush if still pending."""
        while self._value is None and not self._dropped and flush:
            if self._flush() == 0:
                break
        if self._dropped:
            raise FrameDropped(
                f"request {self.sequence} of user {self.user_id!r} was dropped under backpressure"
            )
        if self._value is None:
            raise RuntimeError(
                f"request {self.sequence} of user {self.user_id!r} is still pending"
            )
        return self._value


@dataclass
class ServeRequest:
    """One enqueued frame: the fused cloud plus bookkeeping."""

    user_id: Hashable
    fused: PointCloudFrame
    pending: PendingPrediction
    arrival: float
    features: Optional[np.ndarray] = field(default=None, repr=False)


class MicroBatcher:
    """Bounded deterministic queue of :class:`ServeRequest` objects."""

    def __init__(self, config: ServeConfig, metrics: Optional[ServeMetrics] = None) -> None:
        self.config = config
        self.metrics = metrics
        self._pending: "deque[ServeRequest]" = deque()

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def full(self) -> bool:
        """Whether the next flush is due on capacity grounds."""
        return len(self._pending) >= self.config.max_batch_size

    def admit(self) -> None:
        """Make room for one incoming request per the overflow policy.

        Called *before* the request is built so a rejected submission has no
        side effects (in particular, it must not touch the user's session
        ring).  Under ``"drop_oldest"`` the oldest pending request is dropped
        and its handle resolves to the dropped state.
        """
        if len(self._pending) < self.config.max_queue_depth:
            return
        if self.config.overflow == "reject":
            raise QueueFull(
                f"pending queue is at max_queue_depth={self.config.max_queue_depth}"
            )
        oldest = self._pending.popleft()
        oldest.pending._drop()
        if self.metrics is not None:
            self.metrics.record_drop()

    def enqueue(self, request: ServeRequest) -> None:
        """Append an admitted request (see :meth:`admit`)."""
        self._pending.append(request)

    def oldest_age(self, now: float) -> float:
        """Seconds the oldest pending request has waited (0.0 when empty)."""
        if not self._pending:
            return 0.0
        return max(0.0, now - self._pending[0].arrival)

    def due(self, now: float) -> bool:
        """Whether a flush is due: batch capacity reached or deadline spent."""
        if not self._pending:
            return False
        if self.full:
            return True
        return self.oldest_age(now) >= self.config.max_delay_s

    def drain(self) -> List[ServeRequest]:
        """Pop the next micro-batch (up to ``max_batch_size`` requests)."""
        count = min(len(self._pending), self.config.max_batch_size)
        return [self._pending.popleft() for _ in range(count)]

    def clear(self) -> int:
        """Drop every pending request (server shutdown); returns the count."""
        count = len(self._pending)
        while self._pending:
            request = self._pending.popleft()
            request.pending._drop()
            if self.metrics is not None:
                self.metrics.record_drop()
        return count

"""The in-process streaming pose server.

:class:`PoseServer` is the front door of the serving subsystem.  It ties the
pieces together per request:

1. the user's :class:`UserSession` turns the incoming radar frame into a
   fused point cloud (streaming multi-frame fusion);
2. the :class:`MicroBatcher` coalesces fused frames *across users* until the
   batch is full or the oldest request's latency budget is spent;
3. a flush builds every feature map in one vectorized
   :meth:`FeatureMapBuilder.build_batch` call, then routes base-model users
   through the batch-invariant :class:`SharedParameterKernel` and adapted
   users through the task-batched :func:`repro.engine.batched_forward` with
   their per-user parameter slices from the :class:`AdapterRegistry`.

Both inference routes are batch-composition invariant, so a replay of N
interleaved users is bitwise identical to serving each user alone — the
property that makes micro-batching safe to deploy and simple to test.

The server is single-threaded and synchronous by design: "concurrency" is
logical (many interleaved user streams), scheduling is explicit
(:meth:`poll` / :meth:`flush`), and every run is deterministic.
"""

from __future__ import annotations

import time
import warnings
from typing import Callable, Dict, Hashable, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from .. import nn
from ..core.finetune import FineTuneConfig
from ..core.pipeline import FusePoseEstimator
from ..dataset.loader import ArrayDataset
from ..dataset.sample import PoseDataset
from ..engine.functional import batched_forward
from ..radar.pointcloud import PointCloudFrame
from .adapters import AdapterRegistry
from .batcher import FrameDropped, MicroBatcher, PendingPrediction, ServeRequest
from .config import ServeConfig
from .faults import maybe_injector
from .kernel import SharedParameterKernel
from .metrics import ServeMetrics
from .migration import export_user_state, import_user_state
from .policy import AdapterPolicy
from .session import SessionManager

__all__ = ["PoseServer", "enqueue_each"]


def enqueue_each(
    server,
    items: Sequence[Tuple[Hashable, PointCloudFrame]],
    priority: Optional[str] = None,
) -> List[Union[PendingPrediction, Exception]]:
    """Enqueue ``(user_id, frame)`` pairs in order, one outcome per slot.

    The shared per-frame contract of every ``enqueue_many`` surface: each
    slot holds the handle, or the exception its enqueue raised
    (``QueueFull`` under the ``reject`` backpressure policy).  Capturing
    per slot — rather than raising mid-batch — keeps the already-admitted
    prefix addressable: those frames *did* enter their users' fusion
    rings, so a caller must never blindly resubmit them.  ``priority``
    names the traffic class every frame of the batch is scheduled under.
    """
    outcomes: List[Union[PendingPrediction, Exception]] = []
    for user_id, frame in items:
        try:
            outcomes.append(server.enqueue(user_id, frame, priority=priority))
        except Exception as error:
            outcomes.append(error)
    return outcomes


class PoseServer:
    """Streaming multi-user pose serving on top of a trained estimator.

    Parameters
    ----------
    estimator:
        A (typically trained) :class:`FusePoseEstimator`.  The server reuses
        its fusion setting, feature builder and model; the model is treated
        as read-only — per-user adaptation lives in the registry, never in
        the shared weights.
    config:
        Scheduling and capacity knobs (:class:`ServeConfig`).  Its
        ``adapter`` field is the canonical place to configure per-user
        adaptation.
    adaptation:
        Deprecated: legacy fine-tuning hyper-parameters.  Use
        ``policy=AdapterPolicy(...)`` (or ``config.adapter``) instead; the
        translated policy is bitwise-equivalent.
    clock:
        Monotonic time source, injectable for deterministic latency tests.
    policy:
        The per-user :class:`AdapterPolicy`.  Resolution order: this kwarg,
        then ``config.adapter``, then the default policy (``scope="all"``,
        the ~5-epoch online regime the legacy default expressed).
    """

    def __init__(
        self,
        estimator: FusePoseEstimator,
        config: Optional[ServeConfig] = None,
        adaptation: Optional[FineTuneConfig] = None,
        clock: Callable[[], float] = time.perf_counter,
        policy: Optional[AdapterPolicy] = None,
    ) -> None:
        self.estimator = estimator
        self.config = config if config is not None else ServeConfig()
        if adaptation is not None:
            if policy is not None:
                raise TypeError("pass either policy= or the legacy adaptation=, not both")
            warnings.warn(
                "PoseServer(adaptation=FineTuneConfig(...)) is deprecated; "
                "pass policy=AdapterPolicy(...) or set ServeConfig.adapter instead",
                DeprecationWarning,
                stacklevel=2,
            )
            policy = AdapterPolicy.from_finetune(adaptation)
        if policy is None:
            policy = self.config.adapter
        self.policy = policy if policy is not None else AdapterPolicy()
        self.clock = clock
        self.scheduler = self.config.scheduler
        self.metrics = ServeMetrics(clock=clock)
        self.sessions = SessionManager(
            num_context_frames=estimator.config.num_context_frames,
            ring_capacity=self.config.ring_capacity,
            max_sessions=self.config.max_sessions,
            on_evict=lambda _session: self.metrics.record_session_eviction(),
        )
        self.fault_injector = maybe_injector(self.config.fault_plan)
        self.registry = AdapterRegistry(
            estimator.model,
            policy=self.policy,
            metrics=self.metrics,
            gemm_block=self.config.block_width,
            kernel_backend=self.config.kernel_backend,
            fault_injector=self.fault_injector,
        )
        self.kernel = SharedParameterKernel(
            estimator.model,
            block=self.config.block_width,
            backend=self.config.kernel_backend,
        )
        self._batcher = MicroBatcher(self.config, metrics=self.metrics)
        self._sequence = 0

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of requests waiting for the next micro-batch."""
        return len(self._batcher)

    def enqueue(
        self,
        user_id: Hashable,
        frame: PointCloudFrame,
        priority: Optional[str] = None,
        deadline_ms: Optional[float] = None,
    ) -> PendingPrediction:
        """Accept one frame; may trigger a flush when the batch fills up.

        ``priority`` names the traffic class (``"interactive"`` / ``"bulk"``
        by default; ``None`` = the policy's default class) whose latency
        budget becomes the request's deadline; ``deadline_ms`` overrides the
        class budget for this one request.  Returns a
        :class:`PendingPrediction` handle that resolves at the next flush
        (or immediately if this request completed the batch).
        """
        # Resolve the class before admission: an unknown class must reject
        # without evicting anything under drop_oldest.
        traffic_class = self.scheduler.resolve(priority)
        budget_s = (
            deadline_ms / 1000.0 if deadline_ms is not None else traffic_class.budget_s
        )
        if budget_s < 0:
            raise ValueError("deadline_ms must be non-negative")
        if deadline_ms is not None and budget_s <= 0:
            # A request that arrives with its deadline already spent (the
            # router decremented ``deadline_ms`` by elapsed queue/transit
            # time) is shed before admission — no session observe, no
            # fusion-ring trace — instead of computed and discarded.
            self.metrics.record_deadline_shed()
            raise FrameDropped(
                f"deadline exhausted before admission for user {user_id!r}"
            )
        # Admission next: a request rejected under backpressure must leave
        # no trace, in particular not in the user's fusion ring.
        self._batcher.admit()
        session = self.sessions.get_or_create(user_id)
        fused = session.observe(frame)
        now = self.clock()
        pending = PendingPrediction(user_id, self._sequence, now, flush=self.flush)
        self._sequence += 1
        request = ServeRequest(
            user_id=user_id,
            fused=fused,
            pending=pending,
            arrival=now,
            deadline=now + budget_s,
            traffic_class=traffic_class.name,
        )
        self._batcher.enqueue(request)
        self.metrics.record_submit(queue_depth=len(self._batcher))
        if self._batcher.full:
            self.flush()
        return pending

    def enqueue_many(
        self,
        items: Sequence[Tuple[Hashable, PointCloudFrame]],
        priority: Optional[str] = None,
    ) -> List[Union[PendingPrediction, Exception]]:
        """Enqueue many ``(user_id, frame)`` pairs in order, one outcome
        per slot (see :func:`enqueue_each` for the per-frame contract).

        The batched surface exists so transports (the socket front-end,
        the process-shard command channel) can amortize their per-request
        round-trip cost over N frames.
        """
        return enqueue_each(self, items, priority=priority)

    def submit(
        self,
        user_id: Hashable,
        frame: PointCloudFrame,
        priority: Optional[str] = None,
        deadline_ms: Optional[float] = None,
    ) -> np.ndarray:
        """Synchronous prediction: enqueue, flush, return ``(joints, 3)``.

        Under logical concurrency (other requests already pending) the flush
        still coalesces them with this frame into one micro-batch.
        """
        return self.enqueue(
            user_id, frame, priority=priority, deadline_ms=deadline_ms
        ).result(flush=True)

    def poll(self, now: Optional[float] = None) -> int:
        """Flush if the pending batch is due (full, or deadline exceeded).

        Returns the number of predictions produced (0 when nothing was due).
        A serving loop calls this between arrivals so partial batches respect
        ``max_delay_ms``.
        """
        now = now if now is not None else self.clock()
        if not self._batcher.due(now):
            return 0
        return self.flush()

    def flush(self) -> int:
        """Execute one micro-batch now; returns the number of predictions."""
        requests = self._batcher.drain()
        if not requests:
            return 0
        features = self.estimator.feature_builder.build_batch(
            [request.fused for request in requests]
        )
        outputs = np.empty((len(requests), self.estimator.model.config.output_dim))

        base_rows: List[int] = []
        adapted_rows: List[int] = []
        for row, request in enumerate(requests):
            (adapted_rows if request.user_id in self.registry else base_rows).append(row)

        if base_rows:
            outputs[base_rows] = self.kernel.predict(features[base_rows])
        if adapted_rows:
            try:
                outputs[adapted_rows] = self._predict_adapted(
                    [requests[row].user_id for row in adapted_rows],
                    features[adapted_rows],
                )
            except KeyError:
                # A warm user's spill file was quarantined during the gather
                # (corrupted archive, failed checksum): their registry
                # membership changed mid-flush.  Re-split by the current
                # membership and serve the defected rows from the base model
                # — the ticket still resolves, degradation shows up only in
                # the ``spill_quarantined`` counter.
                survivors = [
                    row for row in adapted_rows if requests[row].user_id in self.registry
                ]
                defected = [row for row in adapted_rows if row not in set(survivors)]
                if defected:
                    outputs[defected] = self.kernel.predict(features[defected])
                if survivors:
                    outputs[survivors] = self._predict_adapted(
                        [requests[row].user_id for row in survivors],
                        features[survivors],
                    )

        now = self.clock()
        self.metrics.record_flush(len(requests))
        joints = outputs.reshape(len(requests), -1, 3)
        for row, request in enumerate(requests):
            request.pending._resolve(joints[row])
            self.metrics.record_completion(
                now - request.arrival,
                traffic_class=request.traffic_class,
                deadline_missed=now > request.deadline,
            )
        return len(requests)

    def _predict_adapted(self, user_ids: List[Hashable], features: np.ndarray) -> np.ndarray:
        """Grouped inference with per-user parameter slices.

        Under ``scope="last"`` the shared trunk embeds every adapted frame
        through the batch-invariant kernel and only the tiny personal heads
        run per-user.  Under ``scope="lora"`` the shared base runs through
        the fixed-block kernel with each request's rank-r factor slices
        applied as per-frame deltas (:meth:`SharedParameterKernel.predict_lowrank`)
        — near-base-model speed with full-network personalization.  Under
        ``scope="all"`` each request rides one task slice of the fully
        personalised network (a width-one batch axis).  Every route is
        bitwise identical to serving each request alone.
        """
        if self.registry.scope == "lora":
            factors = self.registry.gather(user_ids)
            return self.kernel.predict_lowrank(features, factors)
        if self.registry.scope == "last":
            hidden = self.registry.trunk_embed(features)
            params = self.registry.gather(user_ids)
            bias = params[1] if len(params) > 1 else None
            with nn.no_grad():
                stacked = nn.linear_batched(nn.Tensor(hidden[:, None]), params[0], bias)
            return stacked.numpy()[:, 0]
        params = self.registry.gather(user_ids)
        with nn.no_grad():
            stacked = batched_forward(
                self.estimator.model, params, nn.Tensor(features[:, None])
            )
        return stacked.numpy()[:, 0]

    # ------------------------------------------------------------------
    # Per-user adaptation
    # ------------------------------------------------------------------
    def adapt_user(
        self,
        user_id: Hashable,
        dataset: Union[PoseDataset, ArrayDataset],
        epochs: Optional[int] = None,
    ) -> None:
        """Fine-tune a personal parameter set from a few labelled frames."""
        self.adapt_users({user_id: dataset}, epochs=epochs)

    def adapt_users(
        self,
        datasets: Mapping[Hashable, Union[PoseDataset, ArrayDataset]],
        epochs: Optional[int] = None,
    ) -> None:
        """Adapt many users in grouped task-batched calls.

        Labelled :class:`PoseDataset` inputs run through the estimator's
        prepare path (fusion + feature building, memoized by the configured
        feature cache), so repeated onboarding of the same calibration data
        is cheap.
        """
        arrays = {
            user_id: self.estimator.to_arrays(dataset)
            for user_id, dataset in datasets.items()
        }
        self.registry.adapt_many(arrays, epochs=epochs)

    def forget_user(self, user_id: Hashable) -> None:
        """Drop a user's session history and adapted parameters."""
        self.sessions.close(user_id)
        self.registry.remove(user_id)

    # ------------------------------------------------------------------
    # Live migration
    # ------------------------------------------------------------------
    def export_user(self, user_id: Hashable, forget: bool = False) -> Optional[Dict]:
        """Snapshot one user's session ring + adapter archive (live migration).

        The pending micro-batch is flushed first so the snapshot sits after
        every admitted frame; ``forget=True`` drops the user from this
        server once exported.  Returns ``None`` for a user with no state.
        See :mod:`repro.serve.migration` for the schema.
        """
        return export_user_state(self, user_id, forget=forget)

    def import_user(self, state: Mapping) -> Hashable:
        """Install a user state exported by :meth:`export_user`; returns the id.

        The restored ring makes the user's next fusion window — and, through
        batch invariance, their next prediction — bitwise identical to what
        the exporting server would have produced.
        """
        return import_user_state(self, state)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def metrics_snapshot(self) -> Dict[str, float]:
        """Serving metrics plus queue, session and cache gauges."""
        report = self.metrics.snapshot(queue_depth=len(self._batcher))
        report["sessions"] = len(self.sessions)
        report["adapted_parameter_sets"] = len(self.registry)
        for tier, count in self.registry.tier_sizes().items():
            report[f"adapter_tier_{tier}"] = count
        cache = self.estimator.feature_cache
        if cache is not None:
            for key, value in cache.stats.as_dict().items():
                report[f"feature_cache_{key}"] = value
        return report

    def to_prometheus(self) -> str:
        """Prometheus text exposition of this server's metrics.

        Façade parity with the sharded servers, so the socket front-end can
        expose any backend; a single server's samples carry no shard label.
        """
        return self.metrics.to_prometheus(queue_depth=self.pending)

"""Serving observability: latency percentiles, throughput and queue health.

:class:`ServeMetrics` is the single metrics surface of the serving subsystem.
Every component reports into it — the server records submissions, flushes and
completion latencies, the micro-batcher records drops and queue depth, the
adapter registry records parameter-stack cache hits — and
:meth:`ServeMetrics.snapshot` renders one flat dictionary suitable for
logging, the benchmark JSONs and the replay driver's report.

Two export surfaces sit on top of the counters:

* :meth:`ServeMetrics.to_prometheus` renders the Prometheus text exposition
  format (counters, gauges and a latency summary with quantiles), optionally
  with a fixed label set — :class:`repro.serve.ShardedPoseServer` labels each
  shard's block with ``shard="<index>"``.
* :meth:`ServeMetrics.aggregate` merges several instances (one per serving
  shard) into a single snapshot: counters sum, high-water marks take the
  maximum, and latency percentiles are computed over the pooled windows.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable, Dict, Mapping, Optional, Sequence, Tuple, Union

__all__ = ["ServeMetrics", "merge_expositions", "percentile", "prometheus_exposition"]


def percentile(values, fraction: float) -> float:
    """Nearest-rank percentile of a sequence (0.0 for an empty one)."""
    ordered = sorted(values)
    if not ordered:
        return 0.0
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    rank = min(len(ordered) - 1, max(0, int(round(fraction * (len(ordered) - 1)))))
    return float(ordered[rank])


class ServeMetrics:
    """Counters and latency window describing a :class:`PoseServer`'s health.

    Parameters
    ----------
    latency_window:
        Number of most recent per-request latencies retained for the
        percentile estimates (bounded so long-running servers do not grow).
    clock:
        Monotonic time source; injectable so tests can drive virtual time.
    """

    def __init__(
        self, latency_window: int = 2048, clock: Callable[[], float] = time.perf_counter
    ) -> None:
        if latency_window < 1:
            raise ValueError("latency_window must be >= 1")
        self._clock = clock
        self._latencies: "deque[float]" = deque(maxlen=latency_window)
        self._class_latencies: Dict[str, "deque[float]"] = {}
        self._class_completed: Dict[str, int] = {}
        self.submitted = 0
        self.completed = 0
        self.dropped = 0
        self.shed = 0
        self.deadline_misses = 0
        self.flushes = 0
        self.batched_frames = 0
        self.max_batch_seen = 0
        self.max_queue_depth_seen = 0
        self.session_evictions = 0
        self.param_cache_hits = 0
        self.param_cache_misses = 0
        self.adaptation_runs = 0
        self.adapted_users = 0
        self.adapter_hot_hits = 0
        self.adapter_warm_hits = 0
        self.adapter_cold_misses = 0
        self.adapter_demotions_warm = 0
        self.adapter_demotions_cold = 0
        self.restarts = 0
        self.spill_quarantined = 0
        self.request_timeouts = 0
        self.retries = 0
        self.deadline_shed = 0
        self.shards_degraded = 0
        self.latency_sum_s = 0.0
        self._first_submit_at: Optional[float] = None
        self._last_completion_at: Optional[float] = None

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_submit(self, queue_depth: int) -> None:
        self.submitted += 1
        if self._first_submit_at is None:
            self._first_submit_at = self._clock()
        if queue_depth > self.max_queue_depth_seen:
            self.max_queue_depth_seen = queue_depth

    def record_flush(self, batch_size: int) -> None:
        self.flushes += 1
        self.batched_frames += batch_size
        if batch_size > self.max_batch_seen:
            self.max_batch_seen = batch_size

    def record_completion(
        self,
        latency_s: float,
        traffic_class: Optional[str] = None,
        deadline_missed: bool = False,
    ) -> None:
        self.completed += 1
        self._latencies.append(latency_s)
        self.latency_sum_s += latency_s
        self._last_completion_at = self._clock()
        if traffic_class is not None:
            window = self._class_latencies.get(traffic_class)
            if window is None:
                window = deque(maxlen=self._latencies.maxlen)
                self._class_latencies[traffic_class] = window
            window.append(latency_s)
            self._class_completed[traffic_class] = (
                self._class_completed.get(traffic_class, 0) + 1
            )
        if deadline_missed:
            self.deadline_misses += 1

    def record_drop(self) -> None:
        self.dropped += 1

    def record_shed(self) -> None:
        """One request shed by admission control (rate limit / overload)."""
        self.shed += 1

    def record_session_eviction(self) -> None:
        self.session_evictions += 1

    def record_param_cache(self, hit: bool) -> None:
        if hit:
            self.param_cache_hits += 1
        else:
            self.param_cache_misses += 1

    def record_adaptation(self, users: int) -> None:
        self.adaptation_runs += 1
        self.adapted_users += users

    def record_adapter_access(self, tier: str) -> None:
        """One adapter lookup, by the lifecycle tier that answered it.

        ``"hot"`` — served from memory; ``"warm"`` — promoted from the spill
        directory; ``"cold"`` — the user's state was dropped and must be
        re-onboarded (a miss).
        """
        if tier == "hot":
            self.adapter_hot_hits += 1
        elif tier == "warm":
            self.adapter_warm_hits += 1
        elif tier == "cold":
            self.adapter_cold_misses += 1
        else:
            raise ValueError(f"unknown adapter tier '{tier}'")

    def record_adapter_demotion(self, tier: str) -> None:
        """One adapter demotion into ``tier`` (``"warm"`` or ``"cold"``)."""
        if tier == "warm":
            self.adapter_demotions_warm += 1
        elif tier == "cold":
            self.adapter_demotions_cold += 1
        else:
            raise ValueError(f"unknown demotion tier '{tier}'")

    def record_restart(self) -> None:
        """One shard worker process restarted by its supervisor."""
        self.restarts += 1

    def record_spill_quarantined(self) -> None:
        """One adapter spill archive failed verification and was set aside."""
        self.spill_quarantined += 1

    def record_request_timeout(self) -> None:
        """One remote call exceeded its per-request timeout (brownout signal)."""
        self.request_timeouts += 1

    def record_retry(self) -> None:
        """One request re-attempted under the retry policy."""
        self.retries += 1

    def record_deadline_shed(self) -> None:
        """One request shed because its deadline budget was already spent."""
        self.deadline_shed += 1

    def set_shards_degraded(self, count: int) -> None:
        """Gauge: shards whose restart budget is exhausted (degraded)."""
        if count < 0:
            raise ValueError("shards_degraded must be non-negative")
        self.shards_degraded = count

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def latency_p50_ms(self) -> float:
        return percentile(self._latencies, 0.50) * 1000.0

    @property
    def latency_p95_ms(self) -> float:
        return percentile(self._latencies, 0.95) * 1000.0

    @property
    def mean_batch_size(self) -> float:
        return self.batched_frames / self.flushes if self.flushes else 0.0

    @property
    def throughput_fps(self) -> float:
        """Completed predictions per second of serving wall time."""
        if self._first_submit_at is None or self._last_completion_at is None:
            return 0.0
        elapsed = self._last_completion_at - self._first_submit_at
        return self.completed / elapsed if elapsed > 0 else 0.0

    @property
    def param_cache_hit_rate(self) -> float:
        requests = self.param_cache_hits + self.param_cache_misses
        return self.param_cache_hits / requests if requests else 0.0

    @property
    def adapter_tier_hit_rate(self) -> float:
        """Fraction of adapter lookups answered without re-onboarding."""
        accesses = self.adapter_hot_hits + self.adapter_warm_hits + self.adapter_cold_misses
        return (
            (self.adapter_hot_hits + self.adapter_warm_hits) / accesses if accesses else 0.0
        )

    def snapshot(self, queue_depth: Optional[int] = None) -> Dict[str, float]:
        """One flat dictionary of every counter and derived statistic."""
        report: Dict[str, float] = {
            "submitted": self.submitted,
            "completed": self.completed,
            "dropped": self.dropped,
            "shed": self.shed,
            "deadline_misses": self.deadline_misses,
            "flushes": self.flushes,
            "mean_batch_size": self.mean_batch_size,
            "max_batch_seen": self.max_batch_seen,
            "max_queue_depth_seen": self.max_queue_depth_seen,
            "session_evictions": self.session_evictions,
            "latency_p50_ms": self.latency_p50_ms,
            "latency_p95_ms": self.latency_p95_ms,
            "throughput_fps": self.throughput_fps,
            "param_cache_hits": self.param_cache_hits,
            "param_cache_misses": self.param_cache_misses,
            "param_cache_hit_rate": self.param_cache_hit_rate,
            "adaptation_runs": self.adaptation_runs,
            "adapted_users": self.adapted_users,
            "adapter_hot_hits": self.adapter_hot_hits,
            "adapter_warm_hits": self.adapter_warm_hits,
            "adapter_cold_misses": self.adapter_cold_misses,
            "adapter_demotions_warm": self.adapter_demotions_warm,
            "adapter_demotions_cold": self.adapter_demotions_cold,
            "adapter_tier_hit_rate": self.adapter_tier_hit_rate,
            "restarts": self.restarts,
            "spill_quarantined": self.spill_quarantined,
            "request_timeouts": self.request_timeouts,
            "retries": self.retries,
            "deadline_shed": self.deadline_shed,
            "shards_degraded": self.shards_degraded,
        }
        for name in sorted(self._class_completed):
            report[f"class_{name}_completed"] = self._class_completed[name]
            report[f"class_{name}_latency_p95_ms"] = (
                percentile(self._class_latencies.get(name, ()), 0.95) * 1000.0
            )
        if queue_depth is not None:
            report["queue_depth"] = queue_depth
        return report

    # ------------------------------------------------------------------
    # Cross-process state transfer
    # ------------------------------------------------------------------
    #: plain integer/float counters carried verbatim by the state dict.
    _STATE_COUNTERS = (
        "submitted",
        "completed",
        "dropped",
        "shed",
        "deadline_misses",
        "flushes",
        "batched_frames",
        "max_batch_seen",
        "max_queue_depth_seen",
        "session_evictions",
        "param_cache_hits",
        "param_cache_misses",
        "adaptation_runs",
        "adapted_users",
        "adapter_hot_hits",
        "adapter_warm_hits",
        "adapter_cold_misses",
        "adapter_demotions_warm",
        "adapter_demotions_cold",
        "restarts",
        "spill_quarantined",
        "request_timeouts",
        "retries",
        "deadline_shed",
        "shards_degraded",
        "latency_sum_s",
    )

    def state_dict(self) -> Dict[str, object]:
        """Full picklable state, exact enough to rebuild this instance.

        Unlike :meth:`snapshot` (a flat report of *derived* figures), the
        state dict carries the raw latency window and wall-clock anchors, so
        a :class:`ServeMetrics` rebuilt with :meth:`from_state` in another
        process aggregates (:meth:`aggregate`) and renders Prometheus output
        identically to the original.  This is how process-per-shard serving
        ships each worker's metrics over the transport.
        """
        state: Dict[str, object] = {key: getattr(self, key) for key in self._STATE_COUNTERS}
        state["latency_window"] = self._latencies.maxlen
        state["latencies"] = list(self._latencies)
        state["class_latencies"] = {
            name: list(window) for name, window in self._class_latencies.items()
        }
        state["class_completed"] = dict(self._class_completed)
        state["first_submit_at"] = self._first_submit_at
        state["last_completion_at"] = self._last_completion_at
        return state

    @classmethod
    def from_state(
        cls, state: Mapping[str, object], clock: Callable[[], float] = time.perf_counter
    ) -> "ServeMetrics":
        """Rebuild an instance from a :meth:`state_dict` payload."""
        metrics = cls(latency_window=int(state["latency_window"]), clock=clock)
        for key in cls._STATE_COUNTERS:
            # .get keeps older-release payloads (without newer counters) valid.
            setattr(metrics, key, state.get(key, 0))
        metrics._latencies.extend(state["latencies"])
        for name, values in state.get("class_latencies", {}).items():
            window = deque(maxlen=metrics._latencies.maxlen)
            window.extend(values)
            metrics._class_latencies[name] = window
        metrics._class_completed.update(state.get("class_completed", {}))
        metrics._first_submit_at = state["first_submit_at"]
        metrics._last_completion_at = state["last_completion_at"]
        return metrics

    # ------------------------------------------------------------------
    # Cross-shard aggregation
    # ------------------------------------------------------------------
    #: snapshot keys that are high-water marks (merged with max, not sum).
    _AGGREGATE_MAX_KEYS = ("max_batch_seen", "max_queue_depth_seen")
    #: snapshot keys that are ratios/derived figures, recomputed from the
    #: merged raw numbers rather than combined per-shard.
    _AGGREGATE_DERIVED_KEYS = (
        "mean_batch_size",
        "latency_p50_ms",
        "latency_p95_ms",
        "throughput_fps",
        "param_cache_hit_rate",
        "adapter_tier_hit_rate",
    )

    @staticmethod
    def _is_class_latency_key(key: str) -> bool:
        """Per-class percentile keys (``class_<name>_latency_p95_ms``) are
        derived figures, recomputed on merge rather than summed."""
        return key.startswith("class_") and key.endswith("_latency_p95_ms")

    @classmethod
    def aggregate(
        cls, metrics: Sequence[Union["ServeMetrics", Mapping[str, float]]]
    ) -> Dict[str, float]:
        """Merge several shards or backends into one snapshot dict.

        The schema is :meth:`snapshot`'s: plain counters sum (so a counter
        added to the snapshot aggregates correctly with no change here),
        high-water marks take the per-shard maximum, latency percentiles
        are computed over the pooled windows, and throughput spans the
        earliest submission to the latest completion across all shards
        (shards serve concurrently interleaved traffic, so their wall
        clocks overlap rather than add).

        Inputs may be live instances *or* plain snapshot mappings — a
        cluster router only holds each backend's ``metrics_snapshot()``
        dict, never the instance.  Heterogeneous snapshots are fine: a key
        absent from one backend (an older release without a newer counter)
        aggregates as zero instead of raising.  Two figures are necessarily
        approximate once any input is snapshot-only: latency percentiles
        become a completion-weighted average of per-backend percentiles
        (the raw windows are not in the snapshot), and throughput sums
        across backends (they serve concurrently).
        """
        if not metrics:
            raise ValueError("at least one ServeMetrics instance is required")
        instances = [m for m in metrics if isinstance(m, ServeMetrics)]
        exact = len(instances) == len(metrics)
        snapshots = [
            m.snapshot() if isinstance(m, ServeMetrics) else dict(m) for m in metrics
        ]
        keys: list = []
        for snapshot in snapshots:
            for key in snapshot:
                if key not in keys:
                    keys.append(key)
        report: Dict[str, float] = {}
        for key in keys:
            if key in cls._AGGREGATE_DERIVED_KEYS or cls._is_class_latency_key(key):
                continue
            values = [snapshot.get(key, 0) for snapshot in snapshots]
            report[key] = max(values) if key in cls._AGGREGATE_MAX_KEYS else sum(values)

        if exact:
            flushes = sum(m.flushes for m in instances)
            batched_frames = sum(m.batched_frames for m in instances)
            report["mean_batch_size"] = batched_frames / flushes if flushes else 0.0

            pooled_latencies = [value for m in instances for value in m._latencies]
            report["latency_p50_ms"] = percentile(pooled_latencies, 0.50) * 1000.0
            report["latency_p95_ms"] = percentile(pooled_latencies, 0.95) * 1000.0

            class_names = sorted(
                {name for m in instances for name in m._class_latencies}
            )
            for name in class_names:
                pooled = [
                    value
                    for m in instances
                    for value in m._class_latencies.get(name, ())
                ]
                report[f"class_{name}_latency_p95_ms"] = percentile(pooled, 0.95) * 1000.0

            first_submits = [
                m._first_submit_at for m in instances if m._first_submit_at is not None
            ]
            last_completions = [
                m._last_completion_at for m in instances if m._last_completion_at is not None
            ]
            report["throughput_fps"] = 0.0
            if first_submits and last_completions:
                elapsed = max(last_completions) - min(first_submits)
                if elapsed > 0:
                    report["throughput_fps"] = report["completed"] / elapsed
        else:
            flushes = sum(snapshot.get("flushes", 0) for snapshot in snapshots)
            batched_frames = 0.0
            for source, snapshot in zip(metrics, snapshots):
                if isinstance(source, ServeMetrics):
                    batched_frames += source.batched_frames
                else:
                    batched_frames += snapshot.get("mean_batch_size", 0.0) * snapshot.get(
                        "flushes", 0
                    )
            report["mean_batch_size"] = batched_frames / flushes if flushes else 0.0

            completed = sum(snapshot.get("completed", 0) for snapshot in snapshots)
            for key in ("latency_p50_ms", "latency_p95_ms"):
                report[key] = (
                    sum(
                        snapshot.get(key, 0.0) * snapshot.get("completed", 0)
                        for snapshot in snapshots
                    )
                    / completed
                    if completed
                    else 0.0
                )
            report["throughput_fps"] = sum(
                snapshot.get("throughput_fps", 0.0) for snapshot in snapshots
            )
            for key in keys:
                if not cls._is_class_latency_key(key):
                    continue
                weight_key = key[: -len("latency_p95_ms")] + "completed"
                weight = sum(snapshot.get(weight_key, 0) for snapshot in snapshots)
                report[key] = (
                    sum(
                        snapshot.get(key, 0.0) * snapshot.get(weight_key, 0)
                        for snapshot in snapshots
                    )
                    / weight
                    if weight
                    else 0.0
                )

        cache_hits = report.get("param_cache_hits", 0)
        cache_requests = cache_hits + report.get("param_cache_misses", 0)
        report["param_cache_hit_rate"] = (
            cache_hits / cache_requests if cache_requests else 0.0
        )
        tier_hits = report.get("adapter_hot_hits", 0) + report.get("adapter_warm_hits", 0)
        tier_accesses = tier_hits + report.get("adapter_cold_misses", 0)
        report["adapter_tier_hit_rate"] = (
            tier_hits / tier_accesses if tier_accesses else 0.0
        )
        return report

    # ------------------------------------------------------------------
    # Prometheus text exposition
    # ------------------------------------------------------------------
    #: metric name -> (attribute, type, help text)
    _PROMETHEUS_COUNTERS = (
        ("fuse_serve_requests_submitted_total", "submitted", "Requests accepted for serving."),
        ("fuse_serve_requests_completed_total", "completed", "Predictions returned to callers."),
        ("fuse_serve_requests_dropped_total", "dropped", "Requests dropped under backpressure."),
        ("fuse_serve_requests_shed_total", "shed", "Requests shed by admission control."),
        (
            "fuse_serve_deadline_misses_total",
            "deadline_misses",
            "Completions delivered after their class deadline.",
        ),
        ("fuse_serve_flushes_total", "flushes", "Micro-batch flushes executed."),
        ("fuse_serve_batched_frames_total", "batched_frames", "Frames served through micro-batches."),
        ("fuse_serve_session_evictions_total", "session_evictions", "LRU session evictions."),
        ("fuse_serve_param_cache_hits_total", "param_cache_hits", "Parameter-stack cache hits."),
        ("fuse_serve_param_cache_misses_total", "param_cache_misses", "Parameter-stack cache misses."),
        ("fuse_serve_adaptation_runs_total", "adaptation_runs", "Grouped adaptation calls."),
        ("fuse_serve_adapted_users_total", "adapted_users", "Users adapted across all runs."),
        ("fuse_serve_adapter_hot_hits_total", "adapter_hot_hits", "Adapter lookups served from memory."),
        (
            "fuse_serve_adapter_warm_hits_total",
            "adapter_warm_hits",
            "Adapter lookups promoted from the warm spill tier.",
        ),
        (
            "fuse_serve_adapter_cold_misses_total",
            "adapter_cold_misses",
            "Adapter lookups for dropped users requiring re-onboarding.",
        ),
        (
            "fuse_serve_adapter_demotions_warm_total",
            "adapter_demotions_warm",
            "Adapter demotions from the hot tier to the warm spill tier.",
        ),
        (
            "fuse_serve_adapter_demotions_cold_total",
            "adapter_demotions_cold",
            "Adapter state drops to the cold tier.",
        ),
        ("fuse_serve_restarts_total", "restarts", "Shard worker processes restarted."),
        (
            "fuse_serve_spill_quarantined_total",
            "spill_quarantined",
            "Adapter spill archives that failed verification and were quarantined.",
        ),
        (
            "fuse_serve_request_timeouts_total",
            "request_timeouts",
            "Remote calls that exceeded their per-request timeout.",
        ),
        ("fuse_serve_retries_total", "retries", "Requests re-attempted under the retry policy."),
        (
            "fuse_serve_deadline_shed_total",
            "deadline_shed",
            "Requests shed because their deadline budget was already spent.",
        ),
    )
    _PROMETHEUS_GAUGES = (
        ("fuse_serve_mean_batch_size", "mean_batch_size", "Mean frames per micro-batch flush."),
        ("fuse_serve_max_batch_seen", "max_batch_seen", "Largest micro-batch observed."),
        (
            "fuse_serve_max_queue_depth_seen",
            "max_queue_depth_seen",
            "Deepest pending queue observed.",
        ),
        ("fuse_serve_throughput_fps", "throughput_fps", "Completed predictions per second."),
        (
            "fuse_serve_adapter_tier_hit_rate",
            "adapter_tier_hit_rate",
            "Fraction of adapter lookups answered from the hot or warm tier.",
        ),
        (
            "fuse_serve_shards_degraded",
            "shards_degraded",
            "Shards whose restart budget is exhausted (degraded).",
        ),
    )
    _PROMETHEUS_QUANTILES = (0.5, 0.9, 0.95, 0.99)

    def to_prometheus(
        self,
        labels: Optional[Mapping[str, str]] = None,
        queue_depth: Optional[int] = None,
    ) -> str:
        """Render this instance in the Prometheus text exposition format.

        ``labels`` is attached to every sample (e.g. ``{"shard": "0"}``).
        To expose several instances — one per serving shard — in one valid
        exposition, use :func:`prometheus_exposition`, which groups every
        metric's samples under a single ``# HELP`` / ``# TYPE`` header.
        """
        return prometheus_exposition([(labels, self, queue_depth)])


def _escape_label_value(value: str) -> str:
    """Escape a label value per the text exposition format (\\\\, \\", \\n)."""
    return str(value).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(labels: Optional[Mapping[str, str]]) -> str:
    if not labels:
        return ""
    rendered = ",".join(
        f'{key}="{_escape_label_value(value)}"' for key, value in labels.items()
    )
    return "{" + rendered + "}"


def prometheus_exposition(
    instances: Sequence[
        tuple[Optional[Mapping[str, str]], ServeMetrics, Optional[int]]
    ],
) -> str:
    """Render labelled :class:`ServeMetrics` instances as one text exposition.

    ``instances`` is a sequence of ``(labels, metrics, queue_depth)`` tuples
    (``labels`` and ``queue_depth`` may be ``None``).  The output groups all
    label sets of each metric under one ``# HELP`` / ``# TYPE`` header, as
    the exposition format requires, so a sharded server can expose every
    shard with a ``shard="<i>"`` label in a single scrape body.
    """
    if not instances:
        raise ValueError("at least one metrics instance is required")
    lines: list[str] = []

    def emit_family(name: str, kind: str, help_text: str, values) -> None:
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        lines.extend(values)

    for name, attribute, help_text in ServeMetrics._PROMETHEUS_COUNTERS:
        emit_family(
            name,
            "counter",
            help_text,
            [
                f"{name}{_format_labels(labels)} {float(getattr(metrics, attribute)):.10g}"
                for labels, metrics, _ in instances
            ],
        )
    for name, attribute, help_text in ServeMetrics._PROMETHEUS_GAUGES:
        emit_family(
            name,
            "gauge",
            help_text,
            [
                f"{name}{_format_labels(labels)} {float(getattr(metrics, attribute)):.10g}"
                for labels, metrics, _ in instances
            ],
        )
    if any(queue_depth is not None for _, _, queue_depth in instances):
        emit_family(
            "fuse_serve_queue_depth",
            "gauge",
            "Requests pending in the queue.",
            [
                f"fuse_serve_queue_depth{_format_labels(labels)} {queue_depth}"
                for labels, _, queue_depth in instances
                if queue_depth is not None
            ],
        )

    name = "fuse_serve_request_latency_seconds"
    summary_lines = []
    for labels, metrics, _ in instances:
        for quantile in ServeMetrics._PROMETHEUS_QUANTILES:
            quantile_labels = dict(labels or {})
            quantile_labels["quantile"] = f"{quantile:g}"
            summary_lines.append(
                f"{name}{_format_labels(quantile_labels)} "
                f"{percentile(metrics._latencies, quantile):.10g}"
            )
        summary_lines.append(f"{name}_sum{_format_labels(labels)} {metrics.latency_sum_s:.10g}")
        summary_lines.append(f"{name}_count{_format_labels(labels)} {metrics.completed}")
    emit_family(name, "summary", "Request latency from submission to completion.", summary_lines)
    return "\n".join(lines) + "\n"


def _inject_labels(sample: str, rendered: str) -> str:
    """Add pre-rendered ``key="value"`` pairs to one sample line's label set."""
    if not rendered:
        return sample
    metric, _, value = sample.rpartition(" ")
    brace = metric.find("{")
    if brace < 0:
        return f"{metric}{{{rendered}}} {value}"
    existing = metric[brace + 1 : -1]
    merged = f"{rendered},{existing}" if existing else rendered
    return f"{metric[:brace]}{{{merged}}} {value}"


def _sample_family(metric_name: str, families: Mapping[str, object]) -> str:
    """Map a sample's metric name to its family (summaries emit suffixes)."""
    if metric_name in families:
        return metric_name
    for suffix in ("_sum", "_count", "_bucket"):
        if metric_name.endswith(suffix) and metric_name[: -len(suffix)] in families:
            return metric_name[: -len(suffix)]
    return metric_name


def merge_expositions(
    parts: Sequence[Tuple[str, Optional[Mapping[str, str]]]],
) -> str:
    """Merge per-backend exposition texts into one valid cluster exposition.

    ``parts`` is a sequence of ``(text, labels)`` pairs; each ``text`` is a
    complete Prometheus text exposition (as returned by a backend's
    ``prometheus`` frame) and ``labels`` — typically ``{"instance": name}``
    — is injected into every sample of that part.  Samples of the same
    metric from different backends are regrouped under a single ``# HELP``
    / ``# TYPE`` header, which the exposition format requires and naive
    concatenation violates.

    This works on the *text* because a router only ever holds the rendered
    exposition from each backend's wire snapshot, never live
    :class:`ServeMetrics` instances.
    """
    if not parts:
        raise ValueError("at least one exposition part is required")
    families: Dict[str, Dict[str, object]] = {}
    order: list = []

    def family(name: str) -> Dict[str, object]:
        if name not in families:
            families[name] = {"help": None, "type": None, "samples": []}
            order.append(name)
        return families[name]

    for text, labels in parts:
        rendered = _format_labels(labels)[1:-1] if labels else ""
        for line in text.splitlines():
            if not line.strip():
                continue
            if line.startswith("# HELP "):
                name, _, help_text = line[len("# HELP ") :].partition(" ")
                entry = family(name)
                if entry["help"] is None:
                    entry["help"] = help_text
            elif line.startswith("# TYPE "):
                name, _, kind = line[len("# TYPE ") :].partition(" ")
                entry = family(name)
                if entry["type"] is None:
                    entry["type"] = kind
            elif line.startswith("#"):
                continue
            else:
                metric = line.partition("{")[0].partition(" ")[0]
                entry = family(_sample_family(metric, families))
                entry["samples"].append(_inject_labels(line, rendered))

    lines: list = []
    for name in order:
        entry = families[name]
        if entry["help"] is not None:
            lines.append(f"# HELP {name} {entry['help']}")
        if entry["type"] is not None:
            lines.append(f"# TYPE {name} {entry['type']}")
        lines.extend(entry["samples"])
    return "\n".join(lines) + "\n"

"""Serving observability: latency percentiles, throughput and queue health.

:class:`ServeMetrics` is the single metrics surface of the serving subsystem.
Every component reports into it — the server records submissions, flushes and
completion latencies, the micro-batcher records drops and queue depth, the
adapter registry records parameter-stack cache hits — and
:meth:`ServeMetrics.snapshot` renders one flat dictionary suitable for
logging, the benchmark JSONs and the replay driver's report.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable, Dict, Optional

__all__ = ["ServeMetrics", "percentile"]


def percentile(values, fraction: float) -> float:
    """Nearest-rank percentile of a sequence (0.0 for an empty one)."""
    ordered = sorted(values)
    if not ordered:
        return 0.0
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    rank = min(len(ordered) - 1, max(0, int(round(fraction * (len(ordered) - 1)))))
    return float(ordered[rank])


class ServeMetrics:
    """Counters and latency window describing a :class:`PoseServer`'s health.

    Parameters
    ----------
    latency_window:
        Number of most recent per-request latencies retained for the
        percentile estimates (bounded so long-running servers do not grow).
    clock:
        Monotonic time source; injectable so tests can drive virtual time.
    """

    def __init__(
        self, latency_window: int = 2048, clock: Callable[[], float] = time.perf_counter
    ) -> None:
        if latency_window < 1:
            raise ValueError("latency_window must be >= 1")
        self._clock = clock
        self._latencies: "deque[float]" = deque(maxlen=latency_window)
        self.submitted = 0
        self.completed = 0
        self.dropped = 0
        self.flushes = 0
        self.batched_frames = 0
        self.max_batch_seen = 0
        self.max_queue_depth_seen = 0
        self.session_evictions = 0
        self.param_cache_hits = 0
        self.param_cache_misses = 0
        self.adaptation_runs = 0
        self.adapted_users = 0
        self._first_submit_at: Optional[float] = None
        self._last_completion_at: Optional[float] = None

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_submit(self, queue_depth: int) -> None:
        self.submitted += 1
        if self._first_submit_at is None:
            self._first_submit_at = self._clock()
        if queue_depth > self.max_queue_depth_seen:
            self.max_queue_depth_seen = queue_depth

    def record_flush(self, batch_size: int) -> None:
        self.flushes += 1
        self.batched_frames += batch_size
        if batch_size > self.max_batch_seen:
            self.max_batch_seen = batch_size

    def record_completion(self, latency_s: float) -> None:
        self.completed += 1
        self._latencies.append(latency_s)
        self._last_completion_at = self._clock()

    def record_drop(self) -> None:
        self.dropped += 1

    def record_session_eviction(self) -> None:
        self.session_evictions += 1

    def record_param_cache(self, hit: bool) -> None:
        if hit:
            self.param_cache_hits += 1
        else:
            self.param_cache_misses += 1

    def record_adaptation(self, users: int) -> None:
        self.adaptation_runs += 1
        self.adapted_users += users

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def latency_p50_ms(self) -> float:
        return percentile(self._latencies, 0.50) * 1000.0

    @property
    def latency_p95_ms(self) -> float:
        return percentile(self._latencies, 0.95) * 1000.0

    @property
    def mean_batch_size(self) -> float:
        return self.batched_frames / self.flushes if self.flushes else 0.0

    @property
    def throughput_fps(self) -> float:
        """Completed predictions per second of serving wall time."""
        if self._first_submit_at is None or self._last_completion_at is None:
            return 0.0
        elapsed = self._last_completion_at - self._first_submit_at
        return self.completed / elapsed if elapsed > 0 else 0.0

    @property
    def param_cache_hit_rate(self) -> float:
        requests = self.param_cache_hits + self.param_cache_misses
        return self.param_cache_hits / requests if requests else 0.0

    def snapshot(self, queue_depth: Optional[int] = None) -> Dict[str, float]:
        """One flat dictionary of every counter and derived statistic."""
        report: Dict[str, float] = {
            "submitted": self.submitted,
            "completed": self.completed,
            "dropped": self.dropped,
            "flushes": self.flushes,
            "mean_batch_size": self.mean_batch_size,
            "max_batch_seen": self.max_batch_seen,
            "max_queue_depth_seen": self.max_queue_depth_seen,
            "session_evictions": self.session_evictions,
            "latency_p50_ms": self.latency_p50_ms,
            "latency_p95_ms": self.latency_p95_ms,
            "throughput_fps": self.throughput_fps,
            "param_cache_hits": self.param_cache_hits,
            "param_cache_misses": self.param_cache_misses,
            "param_cache_hit_rate": self.param_cache_hit_rate,
            "adaptation_runs": self.adaptation_runs,
            "adapted_users": self.adapted_users,
        }
        if queue_depth is not None:
            report["queue_depth"] = queue_depth
        return report

"""Configuration of the streaming pose-serving subsystem.

One frozen :class:`ServeConfig` object describes how a :class:`PoseServer`
schedules work: how many cross-user requests a micro-batch may coalesce, how
long a request may wait for co-riders before the batch is forced out, how
deep the pending queue may grow before backpressure kicks in, and how much
per-user frame history each session retains for streaming fusion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .faults import FaultPlan
from .policy import AdapterPolicy
from .scheduling import SchedulingPolicy

__all__ = ["ServeConfig"]


@dataclass(frozen=True)
class ServeConfig:
    """Scheduling and capacity knobs of the serving layer.

    Attributes
    ----------
    max_batch_size:
        Upper bound on the number of pending requests one micro-batch may
        coalesce across users.  Enqueueing the ``max_batch_size``-th request
        triggers an immediate flush.
    max_delay_ms:
        Default latency budget of a request that names no traffic class:
        its deadline is its arrival time plus this delay, and
        :meth:`PoseServer.poll` flushes a partial batch once its earliest
        deadline arrives (micro-batching trades at most this much latency
        for throughput).  With an explicit ``scheduling`` policy, per-class
        budgets replace this single knob.
    max_queue_depth:
        Bound of the pending-request queue.  Requests beyond this depth are
        subject to the ``overflow`` policy — serving never buffers without
        limit.
    overflow:
        Backpressure policy when the queue is full: ``"drop_oldest"``
        (default) drops the oldest pending request (its
        :class:`PendingPrediction` resolves to the dropped state) so fresh
        frames stay relevant, ``"reject"`` raises on the incoming request
        instead.
    ring_capacity:
        Number of frames of per-user history each session retains for the
        streaming fusion window.  ``None`` derives ``2M + 1`` from the
        estimator's fusion setting.
    max_sessions:
        Bound on concurrently tracked user sessions; the least recently
        active session is evicted beyond it.
    gemm_block:
        Width of the fixed-shape GEMM blocks of the batch-invariant shared
        parameter kernel (:class:`repro.serve.SharedParameterKernel`).
        ``None`` uses ``max_batch_size``.  Every micro-batch — including a
        single-request one — is computed with GEMMs of exactly this width,
        so within one server any batch composition yields the same bits.
        Comparing *different* servers bitwise (e.g. the unbatched reference
        in ``tests/serve``) additionally requires pinning both to the same
        ``gemm_block``: different block widths use differently shaped GEMMs
        and may differ in the last bits.
    adapter:
        The per-user adaptation policy (:class:`repro.serve.AdapterPolicy`):
        scope, rank, training hyper-parameters, and hot/warm/cold tier
        budgets.  ``None`` falls back to the server's legacy ``adaptation``
        kwarg (or the default all-scope policy) — existing call sites keep
        working unchanged.
    kernel_backend:
        Optional kernel-backend name from the :mod:`repro.nn.backend`
        registry used by the server's shared-parameter kernels.  ``None``
        defers to the process default (``REPRO_KERNEL_BACKEND`` environment
        variable or ``reference``).  Because :class:`ServeConfig` crosses
        the worker pickle boundary inside :class:`repro.serve.ShardFactory`,
        shard processes inherit the parent's selection automatically.
    scheduling:
        The deadline-scheduling and admission-control policy
        (:class:`repro.serve.SchedulingPolicy`): the traffic-class table
        with per-class latency budgets, per-user token-bucket rate limits
        enforced at the front-end, and the ``retry_after`` shed hint.
        ``None`` derives the policy from ``max_delay_ms``
        (``interactive`` = exactly that budget, so un-classed traffic
        schedules identically to the legacy arrival-order batcher;
        ``bulk`` = 10x it).  Like every other field it crosses the worker
        pickle boundary, so shard processes schedule identically.
    fault_plan:
        Optional deterministic fault-injection schedule
        (:class:`repro.serve.FaultPlan`) for chaos testing and manual
        chaos runs (``--fault-plan``).  Like ``kernel_backend`` it crosses
        the worker pickle boundary inside :class:`repro.serve.ShardFactory`,
        which is how ``worker_crash`` rules reach shard worker processes.
        ``None`` (the default) injects nothing and costs nothing.
    """

    max_batch_size: int = 32
    max_delay_ms: float = 5.0
    max_queue_depth: int = 256
    overflow: str = "drop_oldest"
    ring_capacity: Optional[int] = None
    max_sessions: int = 1024
    gemm_block: Optional[int] = None
    adapter: Optional[AdapterPolicy] = None
    kernel_backend: Optional[str] = None
    scheduling: Optional[SchedulingPolicy] = None
    fault_plan: Optional[FaultPlan] = None

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.max_delay_ms < 0:
            raise ValueError("max_delay_ms must be non-negative")
        if self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        if self.overflow not in ("drop_oldest", "reject"):
            raise ValueError(f"unknown overflow policy '{self.overflow}'")
        if self.ring_capacity is not None and self.ring_capacity < 1:
            raise ValueError("ring_capacity must be >= 1")
        if self.max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        if self.gemm_block is not None and self.gemm_block < 2:
            raise ValueError("gemm_block must be >= 2 (width-1 GEMMs hit the gemv kernel)")
        if self.kernel_backend is not None:
            from repro.nn import backend as _kernel_backends

            if self.kernel_backend not in _kernel_backends.available_backends():
                raise ValueError(
                    f"unknown kernel backend '{self.kernel_backend}'; registered "
                    f"backends: {', '.join(sorted(_kernel_backends.available_backends()))}"
                )

    @property
    def max_delay_s(self) -> float:
        """The flush deadline in seconds."""
        return self.max_delay_ms / 1000.0

    @property
    def scheduler(self) -> SchedulingPolicy:
        """The effective scheduling policy (derived from ``max_delay_ms``
        when no explicit ``scheduling`` policy is set)."""
        if self.scheduling is not None:
            return self.scheduling
        return SchedulingPolicy.from_delay(self.max_delay_ms)

    @property
    def block_width(self) -> int:
        """Effective GEMM block width of the shared-parameter kernel."""
        return self.gemm_block if self.gemm_block is not None else max(2, self.max_batch_size)

"""Liveness monitoring for routed backends.

:class:`HealthMonitor` periodically probes a set of named targets with an
async callable — the router probes each backend with the protocol-v2
``ping`` frame — and declares a target *down* only after
``failure_threshold`` consecutive failures (one lost ping must not trigger
a failover that throws away the backend's adapters).  A down target that
answers again is declared *up*; what to do with it (the router does **not**
automatically re-add it to the ring — its state is stale) is the
callback's decision.

The monitor is policy-free: it never touches the ring or the backends, it
only calls ``on_down`` / ``on_up``.  Callbacks may be plain functions or
coroutine functions.
"""

from __future__ import annotations

import asyncio
import contextlib
import inspect
from typing import Awaitable, Callable, Dict, List, Optional, Set

__all__ = ["HealthMonitor"]


class HealthMonitor:
    """Periodic liveness probing with consecutive-failure debouncing.

    Parameters
    ----------
    probe:
        ``async (name) -> truthy`` — one liveness check of one target.  A
        raise, a falsy return, or exceeding ``timeout_s`` counts as one
        failure.
    interval_s:
        Delay between probe rounds.
    timeout_s:
        Per-probe deadline (a hung backend must not stall the round).
    failure_threshold:
        Consecutive failures before a target is declared down.
    on_down / on_up:
        Callbacks invoked with the target name on a state transition.
    """

    def __init__(
        self,
        probe: Callable[[str], Awaitable],
        interval_s: float = 1.0,
        timeout_s: float = 1.0,
        failure_threshold: int = 3,
        on_down: Optional[Callable[[str], object]] = None,
        on_up: Optional[Callable[[str], object]] = None,
    ) -> None:
        if interval_s <= 0 or timeout_s <= 0:
            raise ValueError("interval_s and timeout_s must be positive")
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self._probe = probe
        self.interval_s = interval_s
        self.timeout_s = timeout_s
        self.failure_threshold = failure_threshold
        self._on_down = on_down
        self._on_up = on_up
        self._failures: Dict[str, int] = {}
        self._down: Set[str] = set()
        self._task: Optional[asyncio.Task] = None
        self.rounds = 0

    # ------------------------------------------------------------------
    # Target set
    # ------------------------------------------------------------------
    def watch(self, name: str) -> None:
        """Start probing ``name`` (idempotent)."""
        self._failures.setdefault(name, 0)

    def unwatch(self, name: str) -> None:
        """Stop probing ``name`` and forget its state."""
        self._failures.pop(name, None)
        self._down.discard(name)

    @property
    def targets(self) -> List[str]:
        return sorted(self._failures)

    @property
    def down(self) -> List[str]:
        """Targets currently declared down, sorted by name."""
        return sorted(self._down)

    def is_down(self, name: str) -> bool:
        return name in self._down

    # ------------------------------------------------------------------
    # Probing
    # ------------------------------------------------------------------
    async def check_now(self) -> Dict[str, bool]:
        """Probe every watched target once, concurrently.

        Returns ``{name: probe_ok}`` for this round (not the debounced
        up/down state — that is :meth:`is_down`).
        """
        names = list(self._failures)
        outcomes = await asyncio.gather(
            *(self._probe_one(name) for name in names)
        )
        self.rounds += 1
        results: Dict[str, bool] = {}
        for name, ok in zip(names, outcomes):
            if name not in self._failures:
                continue  # unwatched while the probe was in flight
            results[name] = ok
            if ok:
                self._failures[name] = 0
                if name in self._down:
                    self._down.discard(name)
                    await self._notify(self._on_up, name)
            else:
                self._failures[name] += 1
                if (
                    self._failures[name] >= self.failure_threshold
                    and name not in self._down
                ):
                    self._down.add(name)
                    await self._notify(self._on_down, name)
        return results

    # ------------------------------------------------------------------
    # External failure feed (brownout detection)
    # ------------------------------------------------------------------
    async def record_failure(self, name: str) -> bool:
        """Count one externally observed failure against ``name``'s streak.

        Request-path signals — a per-request timeout at the router, a
        connection reset mid-call — feed the *same* consecutive-failure
        streak the probe loop maintains, so a browned-out backend (alive
        enough to answer pings, too slow to answer requests) is marked down
        by the same debounced threshold instead of stalling every pinned
        user forever.  Unwatched names are ignored.  Returns ``True`` when
        this failure crossed the threshold and ``on_down`` fired.
        """
        if name not in self._failures:
            return False
        self._failures[name] += 1
        if self._failures[name] >= self.failure_threshold and name not in self._down:
            self._down.add(name)
            await self._notify(self._on_down, name)
            return True
        return False

    def record_success(self, name: str) -> None:
        """Reset ``name``'s failure streak after a successful request.

        Only the streak is reset — a target already declared down stays
        down until a *probe* succeeds (the probe loop owns up-transitions,
        because a single lucky request must not re-admit a stale backend).
        """
        if name in self._failures and name not in self._down:
            self._failures[name] = 0

    async def _probe_one(self, name: str) -> bool:
        try:
            return bool(
                await asyncio.wait_for(self._probe(name), timeout=self.timeout_s)
            )
        except Exception:
            return False

    @staticmethod
    async def _notify(callback, name: str) -> None:
        if callback is None:
            return
        result = callback(name)
        if inspect.isawaitable(result):
            await result

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the background probing loop (requires a running loop)."""
        if self._task is not None:
            raise RuntimeError("monitor is already running")
        self._task = asyncio.ensure_future(self._run())

    async def stop(self) -> None:
        if self._task is None:
            return
        self._task.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await self._task
        self._task = None

    async def _run(self) -> None:
        while True:
            await asyncio.sleep(self.interval_s)
            await self.check_now()

"""Deterministic fault injection and the unified retry policy.

The serving tier has many places to die — shard worker processes, the
pipelined socket protocol, adapter spill files, a routed fleet with failover
— and robustness claims are only worth something if every failure mode can
be scripted and replayed exactly.  This module is that script:

* :class:`FaultPlan` — a frozen, picklable schedule of :class:`FaultRule`
  entries ("crash shard 0 at its 5th enqueued frame", "blackhole the 3rd
  submit reply").  Schedules are keyed off **monotonic occurrence counters**
  (frames enqueued, replies written, spill files saved), never wall time, so
  a plan replays identically on any machine at any speed.  Plans load from
  JSON for the ``fuse-serve``/``fuse-router`` ``--fault-plan`` flags and
  cross the shard-worker pickle boundary inside :class:`ServeConfig`.
* :class:`FaultInjector` — the runtime seam.  Components ask
  :meth:`FaultInjector.check` at each injection point; the injector counts
  the occurrence, matches it against the plan, and records every fired
  fault in a ledger so tests can assert that metrics counters exactly match
  the schedule.  With no plan the check is a cheap no-op.
* :class:`RetryPolicy` — the single description of "how to retry": bounded
  exponential backoff with deterministic seeded jitter and an attempt
  budget.  It replaces the ad-hoc connect backoff in
  :class:`AsyncPoseClient`, governs router→backend request retries, and
  paces :class:`ShardProcess` restart backoff — one dataclass, one set of
  semantics, everywhere.

Fault operations (``FaultRule.op``):

``worker_crash``
    Hard-kill the shard worker process (``os._exit``) when its monotonic
    enqueued-frame counter reaches the rule.  Target: ``shard<index>``.
``blackhole``
    Swallow a matched request at the socket front-end — no reply is ever
    written, as if the network partitioned after delivery.  Target: the
    wire message ``kind`` (e.g. ``submit``, ``ping``).
``reply_latency``
    Delay a matched reply by ``delay_s`` before writing it (brownout: the
    backend is alive but slow).  Target: the wire message ``kind``.
``corrupt_frame``
    Flip bytes inside a matched outgoing reply frame's payload, so the peer
    decodes garbage and surfaces a :class:`WireError`.  Target: the reply
    message ``type``.
``truncate_frame``
    Cut a matched outgoing reply frame short and hang up mid-frame, so the
    peer sees :class:`TruncatedFrame`.  Target: the reply message ``type``.
``corrupt_spill``
    Flip a byte inside a just-written adapter spill archive, so the next
    load fails checksum verification and exercises the quarantine path.
    Target: ``spill``.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

__all__ = [
    "FAULT_OPS",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "RetryPolicy",
    "maybe_injector",
]

#: every fault operation a :class:`FaultRule` may name.
FAULT_OPS = (
    "worker_crash",
    "blackhole",
    "reply_latency",
    "corrupt_frame",
    "truncate_frame",
    "corrupt_spill",
)


# ----------------------------------------------------------------------
# Retry policy
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with deterministic seeded jitter.

    Attributes
    ----------
    max_attempts:
        Total attempt budget, *including* the first try.  ``1`` means no
        retries at all.
    base_delay_s:
        Backoff before the first retry (i.e. between attempt 0 and 1).
    max_delay_s:
        Cap on any single backoff delay.
    multiplier:
        Exponential growth factor between consecutive retries.
    jitter:
        Fraction of the computed delay (``0.0``–``1.0``) replaced by a
        seeded pseudo-random draw.  Jitter decorrelates a thundering herd
        without sacrificing reproducibility: the draw is keyed on
        ``(seed, salt, attempt)``, so the same caller retrying the same
        attempt always waits the same time.
    seed:
        Base seed of the jitter stream.
    """

    max_attempts: int = 4
    base_delay_s: float = 0.05
    max_delay_s: float = 1.0
    multiplier: float = 2.0
    jitter: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1 (it includes the first try)")
        if self.base_delay_s < 0:
            raise ValueError("base_delay_s must be non-negative")
        if self.max_delay_s < self.base_delay_s:
            raise ValueError("max_delay_s must be >= base_delay_s")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1.0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def delay(self, attempt: int, salt: str = "") -> float:
        """Backoff in seconds after failed attempt number ``attempt`` (0-based).

        Deterministic: the jittered fraction is drawn from a PRNG seeded on
        ``(seed, salt, attempt)``, so replays and tests see identical
        schedules.  ``salt`` distinguishes independent retry streams (one
        per user, per shard, per endpoint) so they do not march in lockstep.
        """
        if attempt < 0:
            raise ValueError("attempt must be non-negative")
        base = min(self.base_delay_s * (self.multiplier ** attempt), self.max_delay_s)
        if not self.jitter:
            return base
        draw = random.Random(f"{self.seed}:{salt}:{attempt}").random()
        return base * (1.0 - self.jitter) + base * self.jitter * draw

    def delays(self, salt: str = "") -> List[float]:
        """Every backoff delay of a full attempt budget, in order."""
        return [self.delay(attempt, salt) for attempt in range(self.max_attempts - 1)]

    def to_dict(self) -> Dict[str, float]:
        return {
            "max_attempts": self.max_attempts,
            "base_delay_s": self.base_delay_s,
            "max_delay_s": self.max_delay_s,
            "multiplier": self.multiplier,
            "jitter": self.jitter,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, float]) -> "RetryPolicy":
        known = {key: payload[key] for key in cls.__dataclass_fields__ if key in payload}
        unknown = set(payload) - set(known)
        if unknown:
            raise ValueError(f"unknown RetryPolicy fields: {sorted(unknown)}")
        return cls(**known)

    @classmethod
    def none(cls) -> "RetryPolicy":
        """No retries: a single attempt, no backoff."""
        return cls(max_attempts=1, base_delay_s=0.0, max_delay_s=0.0)


# ----------------------------------------------------------------------
# Fault plans
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FaultRule:
    """One scheduled fault: ``op`` on ``target`` at occurrence ``at``.

    ``at`` indexes the monotonic per-``(op, target)`` occurrence counter
    (0-based): ``at=4`` fires on the fifth matching event.  ``count`` fires
    the rule on that many *consecutive* occurrences (a blackhole lasting
    three replies); ``None`` means every occurrence from ``at`` on.
    ``target`` matches the concrete injection-site name, with ``"*"``
    matching any site of the op.
    """

    op: str
    target: str = "*"
    at: int = 0
    count: Optional[int] = 1
    delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.op not in FAULT_OPS:
            raise ValueError(f"unknown fault op '{self.op}'; known ops: {', '.join(FAULT_OPS)}")
        if self.at < 0:
            raise ValueError("at must be non-negative")
        if self.count is not None and self.count < 1:
            raise ValueError("count must be >= 1 (or None for 'from at on')")
        if self.delay_s < 0:
            raise ValueError("delay_s must be non-negative")
        if self.op == "reply_latency" and self.delay_s == 0.0:
            raise ValueError("reply_latency rules need delay_s > 0")

    def matches(self, target: str, occurrence: int) -> bool:
        """Does this rule fire for ``target`` at occurrence ``occurrence``?"""
        if self.target != "*" and self.target != target:
            return False
        if occurrence < self.at:
            return False
        return self.count is None or occurrence < self.at + self.count

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {"op": self.op, "target": self.target, "at": self.at}
        payload["count"] = self.count
        if self.delay_s:
            payload["delay_s"] = self.delay_s
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "FaultRule":
        known = {key: payload[key] for key in cls.__dataclass_fields__ if key in payload}
        unknown = set(payload) - set(known)
        if unknown:
            raise ValueError(f"unknown FaultRule fields: {sorted(unknown)}")
        return cls(**known)  # type: ignore[arg-type]


@dataclass(frozen=True)
class FaultPlan:
    """A frozen, picklable schedule of fault rules.

    The plan travels wherever configuration travels: through
    :class:`ServeConfig` across the shard-worker pickle boundary, and as a
    JSON file behind the CLI ``--fault-plan`` flag.  An empty plan is the
    (cheap) default everywhere.
    """

    rules: Tuple[FaultRule, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))

    def __bool__(self) -> bool:
        return bool(self.rules)

    def for_op(self, op: str) -> Tuple[FaultRule, ...]:
        """Every rule of one fault operation."""
        return tuple(rule for rule in self.rules if rule.op == op)

    def with_rule(self, rule: FaultRule) -> "FaultPlan":
        return replace(self, rules=self.rules + (rule,))

    def to_dict(self) -> Dict[str, object]:
        return {"rules": [rule.to_dict() for rule in self.rules]}

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "FaultPlan":
        rules = payload.get("rules", [])
        if not isinstance(rules, Sequence) or isinstance(rules, (str, bytes)):
            raise ValueError("FaultPlan 'rules' must be a list of rule objects")
        unknown = set(payload) - {"rules"}
        if unknown:
            raise ValueError(f"unknown FaultPlan fields: {sorted(unknown)}")
        return cls(rules=tuple(FaultRule.from_dict(rule) for rule in rules))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "FaultPlan":
        """Load a plan from a JSON file (the ``--fault-plan`` format)."""
        with open(Path(path), "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n", encoding="utf-8")
        return path

    @classmethod
    def none(cls) -> "FaultPlan":
        return cls()


# ----------------------------------------------------------------------
# Runtime injector
# ----------------------------------------------------------------------
class FaultInjector:
    """Counts injection-site occurrences and fires the plan's rules.

    One injector instance owns one set of monotonic occurrence counters, so
    components that must count independently (each shard worker process,
    the front-end, the router) each build their own injector from the same
    shared plan.  Every fired fault is appended to :attr:`fired`, giving
    chaos tests an exact ledger to reconcile metrics counters against.
    """

    def __init__(self, plan: Optional[FaultPlan] = None) -> None:
        self.plan = plan if plan is not None else FaultPlan.none()
        self._counts: Dict[Tuple[str, str], int] = {}
        #: ledger of fired faults: ``(op, target, occurrence)`` in fire order.
        self.fired: List[Tuple[str, str, int]] = []

    def __bool__(self) -> bool:
        return bool(self.plan)

    def occurrences(self, op: str, target: str) -> int:
        """How many occurrences of ``(op, target)`` have been counted."""
        return self._counts.get((op, target), 0)

    def fired_count(self, op: str, target: Optional[str] = None) -> int:
        """How many faults of ``op`` (optionally on ``target``) have fired."""
        return sum(
            1
            for fired_op, fired_target, _ in self.fired
            if fired_op == op and (target is None or fired_target == target)
        )

    def check(self, op: str, target: str) -> Optional[FaultRule]:
        """Count one occurrence of ``(op, target)``; return the rule if it fires.

        The occurrence counter advances on *every* call, fired or not —
        schedules stay aligned with the component's own monotonic counters
        (frames enqueued, replies written) rather than with fault history.
        """
        if op not in FAULT_OPS:
            raise ValueError(f"unknown fault op '{op}'")
        if not self.plan:
            return None
        key = (op, target)
        occurrence = self._counts.get(key, 0)
        self._counts[key] = occurrence + 1
        for rule in self.plan.rules:
            if rule.op == op and rule.matches(target, occurrence):
                self.fired.append((op, target, occurrence))
                return rule
        return None

    # ------------------------------------------------------------------
    # Byte-mangling helpers for the wire/spill corruption ops
    # ------------------------------------------------------------------
    @staticmethod
    def corrupt_bytes(data: bytes, seed: int = 0) -> bytes:
        """Deterministically flip a handful of bytes inside ``data``.

        Used by the ``corrupt_frame`` and ``corrupt_spill`` ops.  Offsets
        are drawn from a seeded PRNG over the second half of the buffer, so
        a wire frame's header survives (the peer reads a full frame and
        fails *decoding* it) while the payload does not.
        """
        if len(data) < 2:
            return bytes(byte ^ 0xFF for byte in data)
        mangled = bytearray(data)
        rng = random.Random(seed)
        start = len(mangled) // 2
        for _ in range(max(1, min(8, len(mangled) - start))):
            offset = rng.randrange(start, len(mangled))
            mangled[offset] ^= 0xFF
        return bytes(mangled)

    @staticmethod
    def truncate_bytes(data: bytes) -> bytes:
        """Cut an encoded frame short (half its length, at least one byte)."""
        return data[: max(1, len(data) // 2)]

    def corrupt_file(self, path: Union[str, Path], seed: int = 0) -> None:
        """Flip bytes inside a file on disk (the ``corrupt_spill`` op)."""
        path = Path(path)
        path.write_bytes(self.corrupt_bytes(path.read_bytes(), seed=seed))


def maybe_injector(
    plan: Optional[FaultPlan],
    injector: Optional[FaultInjector] = None,
) -> Optional[FaultInjector]:
    """Build an injector from a plan unless one was passed explicitly.

    The standard constructor-kwarg pattern: components accept either a
    ready-made :class:`FaultInjector` (tests share one ledger) or just the
    plan (production builds a private injector), and ``None``/empty plans
    cost nothing on the hot path.
    """
    if injector is not None:
        return injector
    if plan:
        return FaultInjector(plan)
    return None

"""Per-user sessions: sliding frame history feeding streaming fusion.

Offline, FUSE fuses the ``2M + 1`` frames *around* each centre frame
(Eq. 3); a live stream has no future frames, so serving fuses the causal
variant: for the newest frame ``k`` the window ``k - M .. k + M`` is clamped
into the available history ``.. k`` — exactly :class:`FrameFusion`'s
``"clamp"`` boundary rule applied to a sequence that currently ends at ``k``.
Every submitted frame therefore yields one zero-added-latency prediction
whose fusion window matches the offline path wherever the offline window was
available.

:class:`UserSession` owns one user's bounded frame ring and produces the
fused cloud per submission; :class:`SessionManager` tracks many sessions with
LRU eviction so a server exposed to millions of user ids stays bounded.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Callable, Hashable, List, Optional, Sequence

from ..radar.pointcloud import PointCloudFrame, merge_frames

__all__ = ["UserSession", "SessionManager", "streaming_window"]


def streaming_window(history: Sequence[PointCloudFrame], m: int) -> List[PointCloudFrame]:
    """The causal fusion window around the newest frame of ``history``.

    Offsets ``-m .. +m`` relative to the newest frame are clamped into the
    retained history, so future offsets repeat the newest frame and early
    frames repeat the oldest retained one — the streaming twin of
    :meth:`repro.core.FrameFusion.fuse_sequence` with ``boundary="clamp"``.
    """
    if not history:
        raise ValueError("cannot build a fusion window from an empty history")
    last = len(history) - 1
    return [history[min(max(last + offset, 0), last)] for offset in range(-m, m + 1)]


@dataclass
class UserSession:
    """One user's streaming state: frame ring, counters and adapter flag.

    Parameters
    ----------
    user_id:
        Opaque hashable identity of the user.
    num_context_frames:
        The fusion meta-parameter ``M`` of the serving estimator.
    ring_capacity:
        Frames of history retained; defaults to the fusion window ``2M + 1``.
    """

    user_id: Hashable
    num_context_frames: int = 1
    ring_capacity: Optional[int] = None
    frames_seen: int = 0
    _ring: "deque[PointCloudFrame]" = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.num_context_frames < 0:
            raise ValueError("num_context_frames must be non-negative")
        capacity = (
            self.ring_capacity
            if self.ring_capacity is not None
            else 2 * self.num_context_frames + 1
        )
        if capacity < 1:
            raise ValueError("ring_capacity must be >= 1")
        self.ring_capacity = capacity
        self._ring = deque(maxlen=capacity)

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def history(self) -> List[PointCloudFrame]:
        """The retained frames, oldest first."""
        return list(self._ring)

    def observe(self, frame: PointCloudFrame) -> PointCloudFrame:
        """Push one frame and return the fused cloud for its prediction.

        The fused cloud carries the submitted frame's timestamp and frame
        index (it is the centre of the streaming window).
        """
        self._ring.append(frame)
        self.frames_seen += 1
        if self.num_context_frames == 0:
            return frame
        window = streaming_window(self._ring, self.num_context_frames)
        fused = merge_frames(window)
        fused.timestamp = frame.timestamp
        fused.frame_index = frame.frame_index
        return fused

    def reset(self) -> None:
        """Drop the frame history (e.g. on a detected recording gap)."""
        self._ring.clear()

    def restore(self, frames: Sequence[PointCloudFrame], frames_seen: int) -> None:
        """Replace the ring contents without fusing (live-migration import).

        ``frames`` must fit the ring — a migration source with a larger ring
        than the destination would silently change future fusion windows, so
        that mismatch raises instead.
        """
        if len(frames) > self.ring_capacity:
            raise ValueError(
                f"cannot restore {len(frames)} frames into a ring of "
                f"capacity {self.ring_capacity}"
            )
        if frames_seen < len(frames):
            raise ValueError("frames_seen cannot be below the restored ring length")
        self._ring.clear()
        self._ring.extend(frames)
        self.frames_seen = int(frames_seen)


class SessionManager:
    """Bounded LRU registry of :class:`UserSession` objects."""

    def __init__(
        self,
        num_context_frames: int = 1,
        ring_capacity: Optional[int] = None,
        max_sessions: int = 1024,
        on_evict: Optional[Callable[[UserSession], None]] = None,
    ) -> None:
        if max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        self.num_context_frames = num_context_frames
        self.ring_capacity = ring_capacity
        self.max_sessions = max_sessions
        self._on_evict = on_evict
        self._sessions: "OrderedDict[Hashable, UserSession]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._sessions)

    def __contains__(self, user_id: Hashable) -> bool:
        return user_id in self._sessions

    @property
    def user_ids(self) -> List[Hashable]:
        """Tracked users, least recently active first."""
        return list(self._sessions)

    def get(self, user_id: Hashable) -> Optional[UserSession]:
        """Return the user's session without creating one (no LRU touch)."""
        return self._sessions.get(user_id)

    def get_or_create(self, user_id: Hashable) -> UserSession:
        """Return the user's session, creating (and possibly evicting) as needed."""
        session = self._sessions.get(user_id)
        if session is None:
            session = UserSession(
                user_id=user_id,
                num_context_frames=self.num_context_frames,
                ring_capacity=self.ring_capacity,
            )
            self._sessions[user_id] = session
        self._sessions.move_to_end(user_id)
        while len(self._sessions) > self.max_sessions:
            _, evicted = self._sessions.popitem(last=False)
            if self._on_evict is not None:
                self._on_evict(evicted)
        return session

    def close(self, user_id: Hashable) -> bool:
        """Forget one user's session; returns whether it existed."""
        return self._sessions.pop(user_id, None) is not None

    def clear(self) -> None:
        self._sessions.clear()

"""Per-user adapted parameter sets, fine-tuned in grouped calls.

The FUSE deployment story is per-user adaptation: a handful of labelled
frames from a new user fine-tune the meta-learned initialization into a
personal parameter set.  Doing that one user at a time wastes the batched
substrate, so :class:`AdapterRegistry` adapts *populations*: every user in an
:meth:`AdapterRegistry.adapt_many` call becomes one slice of a
``(users, ...)`` parameter tensor and all users share a single grouped
forward/backward per mini-batch through :func:`repro.engine.batched_forward`
(the same task-batched kernels as the meta-learning inner loop).

Because task slices are mathematically and bitwise independent, a user
adapted inside a group ends up with exactly the parameters a solo
:meth:`adapt_user` call would have produced — ``tests/serve`` pins this.

Three adaptation scopes, selected by :class:`repro.serve.AdapterPolicy`:

* ``scope="all"`` personalises every layer as full per-user tensors.
  Maximum capacity, but serving must read ~1.1 M parameters per user per
  batch — adapted traffic becomes memory-bound (the throughput benchmark
  documents the cost).
* ``scope="last"`` personalises only the final FC layer (the paper's
  low-cost online regime): the convolutional/FC trunk stays shared — so
  serving runs it once per micro-batch through the batch-invariant kernel —
  and each user owns just a ``(57, 512)`` head.
* ``scope="lora"`` personalises *every* layer through rank-``r`` low-rank
  deltas: the shared base weights are frozen and each user owns per-layer
  ``(A, B)`` factor pairs with ``delta = B @ A``, trained through the
  grouped low-rank kernels (:func:`repro.engine.lowrank_forward`) so the
  dense delta is never materialized.  Per-user memory drops from
  ``O(in * out)`` to ``O(r * (in + out))`` — full-network personalization at
  close to last-layer cost, the route to millions of resident users.

Around the parameter store sits the **adapter lifecycle**: the in-memory
store is the *hot* tier, bounded by ``policy.hot_capacity`` with
least-recently-served demotion.  With ``policy.spill_dir`` set, every
adaptation is written through to a per-user ``.npz`` spill file, so a
demoted user lands in the *warm* tier (on disk, promoted back transparently
on the next access) instead of vanishing; ``policy.warm_capacity`` bounds
the spill files before the coldest users are dropped entirely (*cold* —
re-onboard on demand).  Because spill files are written through at
adaptation time, they double as crash persistence: a restarted process
pointed at the same spill directory re-attaches every warm user.

The registry also answers the serving hot path: :meth:`gather` stacks the
parameter sets of the users in one micro-batch into ``(tasks, ...)`` tensors.
Two cache levels back it: a full-registry ``(all_users, ...)`` stack built
once per registry version (each gather is then one vectorized row-index into
it, never a per-user Python-level restack), and a small LRU of recently
served batch compositions that skips even the row copy for exact repeats.
Steady-state traffic therefore hits on every micro-batch regardless of how
batch boundaries drift across the user cohort — the ``param_cache`` hit rate
in :class:`repro.serve.ServeMetrics` counts a rebuild of the registry stack
as the only miss.
"""

from __future__ import annotations

import hashlib
import warnings
from collections import OrderedDict
from pathlib import Path
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Set, Tuple, Union

import numpy as np

from .. import nn
from ..core.finetune import FineTuneConfig
from ..core.models import PoseCNN
from ..dataset.loader import ArrayDataset
from ..engine.functional import (
    batched_forward,
    gradient_step,
    lowrank_forward,
    lowrank_parameters,
    lowrank_shapes,
    replicate_parameters,
    supports_batched_execution,
)
from ..nn.serialization import (
    load_state,
    load_state_bytes,
    read_metadata,
    save_state,
    save_state_bytes,
    state_checksum,
)
from ..runtime.seeding import seed_for_key
from .faults import FaultInjector
from .kernel import SharedParameterKernel
from .metrics import ServeMetrics
from .policy import AdapterPolicy

__all__ = ["AdapterRegistry"]

#: current on-disk schema of :meth:`AdapterRegistry.save` and the spill files.
#: Format 1 (PR-3 era) stored full parameter tensors with no rank metadata;
#: format 2 adds the ``rank`` field so low-rank factor archives are
#: self-describing.  :meth:`AdapterRegistry.load` reads both.
SAVE_FORMAT = 2

_SPILL_PREFIX = "user-"


def _readonly(array: np.ndarray) -> np.ndarray:
    view = array.view()
    view.setflags(write=False)
    return view


class AdapterRegistry:
    """Stores per-user adapted parameter sets and produces them in bulk.

    Parameters
    ----------
    model:
        The shared base model whose parameters seed every adaptation.  The
        registry never mutates it.
    policy:
        The :class:`repro.serve.AdapterPolicy` governing everything here:
        adaptation scope and hyper-parameters, the low-rank ``rank``, and the
        hot/warm/cold tier budgets.  ``None`` uses the default policy
        (``scope="all"``, the paper's ~5-epoch online regime).  Passing a
        legacy :class:`FineTuneConfig` (positionally or via the deprecated
        ``config=`` keyword) still works — it is translated through
        :meth:`AdapterPolicy.from_finetune`, bitwise-equivalent — but emits a
        :class:`DeprecationWarning`.
    gather_cache_size:
        Number of recently used ``(tasks, ...)`` parameter stacks memoized
        for the serving hot path.
    metrics:
        Optional :class:`ServeMetrics` receiving cache, adaptation and
        tier-lifecycle events.
    gemm_block:
        Block width of the trunk-embedding kernel under ``scope="last"``
        (matched to the server's ``gemm_block`` so embeddings agree bitwise
        with the serving path).
    kernel_backend:
        Kernel backend of the trunk-embedding kernel (registry name,
        instance, or ``None`` for the active backend) — matched to the
        server's backend so embeddings and serving use the same kernels.
    fault_injector:
        Optional :class:`repro.serve.FaultInjector` for deterministic
        chaos testing; its ``corrupt_spill`` rules mangle just-written
        spill archives so the checksum/quarantine path can be exercised on
        a schedule.  ``None`` (the default) injects nothing.
    """

    def __init__(
        self,
        model: PoseCNN,
        policy: Optional[Union[AdapterPolicy, FineTuneConfig]] = None,
        gather_cache_size: int = 8,
        metrics: Optional[ServeMetrics] = None,
        gemm_block: int = 32,
        config: Optional[FineTuneConfig] = None,
        kernel_backend=None,
        fault_injector: Optional[FaultInjector] = None,
    ) -> None:
        self.model = model
        if config is not None:
            if policy is not None:
                raise TypeError("pass either policy= or the legacy config=, not both")
            warnings.warn(
                "AdapterRegistry(config=FineTuneConfig(...)) is deprecated; "
                "pass policy=AdapterPolicy(...) instead",
                DeprecationWarning,
                stacklevel=2,
            )
            policy = AdapterPolicy.from_finetune(config)
        elif isinstance(policy, FineTuneConfig):
            warnings.warn(
                "passing a FineTuneConfig to AdapterRegistry is deprecated; "
                "pass an AdapterPolicy instead",
                DeprecationWarning,
                stacklevel=2,
            )
            policy = AdapterPolicy.from_finetune(policy)
        self.policy: AdapterPolicy = policy if policy is not None else AdapterPolicy()
        if gather_cache_size < 1:
            raise ValueError("gather_cache_size must be >= 1")
        if self.policy.scope == "last":
            head = model.last_layer
            if not isinstance(head, nn.Linear):
                raise ValueError("scope='last' requires the final layer to be Linear")
            trunk = nn.Sequential(*list(model.network)[:-1])
            self._trunk_kernel: Optional[SharedParameterKernel] = SharedParameterKernel(
                trunk, block=gemm_block, backend=kernel_backend
            )
            self._head_init = [head.weight.data.copy()]
            if head.bias is not None:
                self._head_init.append(head.bias.data.copy())
            self._lora_base: List[nn.Tensor] = []
        elif self.policy.scope == "lora":
            # The adaptable-layer census doubles as the architecture check;
            # the base snapshot is what lowrank_forward serves against and
            # deliberately does not require gradients — adaptation trains
            # only the rank-r factors.
            lowrank_shapes(model)
            self._trunk_kernel = None
            self._head_init = []
            self._lora_base = [nn.Tensor(p.data.copy()) for p in model.parameters()]
        else:
            # The task-batched training kernels are only required once
            # adaptation actually runs (checked in _adapt_group), so a model
            # they cannot handle — e.g. with active dropout — still serves
            # base traffic through a registry-less route.
            self._trunk_kernel = None
            self._head_init = []
            self._lora_base = []
        self.metrics = metrics
        self.fault_injector = fault_injector
        self.version = 0
        # Hot tier: in-memory parameter sets, LRU-ordered by last access.
        self._params: "OrderedDict[Hashable, List[np.ndarray]]" = OrderedDict()
        # Warm tier: users whose parameters live only in their spill file,
        # LRU-ordered by demotion time.  `_spill_paths` tracks the current
        # spill file of *every* spilled user, hot or warm (write-through
        # keeps the file in sync with memory, so demotion is a pure drop).
        self._warm: "OrderedDict[Hashable, Path]" = OrderedDict()
        self._spill_paths: Dict[Hashable, Path] = {}
        # Cold: users whose state was dropped entirely — only their ids are
        # remembered, so the registry can report a cold miss distinct from
        # "never adapted".
        self._cold: Set[Hashable] = set()
        self._gather_cache: "OrderedDict[Tuple, List[nn.Tensor]]" = OrderedDict()
        self._gather_cache_size = gather_cache_size
        # Full-registry (all_users, ...) stack, rebuilt lazily when `version`
        # moves; the steady-state gather path row-indexes into it instead of
        # restacking per-user arrays batch by batch.
        self._stack: Optional[List[np.ndarray]] = None
        self._stack_rows: Dict[Hashable, int] = {}
        self._stack_version = -1
        self._spill_dir = self.policy.spill_path()
        if self._spill_dir is not None:
            self._spill_dir.mkdir(parents=True, exist_ok=True)
            self._attach_spill_dir()

    @property
    def scope(self) -> str:
        """Which layers are personalised: ``"all"``, ``"last"`` or ``"lora"``."""
        return self.policy.scope

    @property
    def config(self) -> FineTuneConfig:
        """Legacy accessor: the policy as a :class:`FineTuneConfig`.

        Pre-policy call sites read ``registry.config`` for the adaptation
        hyper-parameters; they keep working for the scopes a
        :class:`FineTuneConfig` can express (``all``/``last``).
        """
        return self.policy.finetune_config()

    def trunk_embed(self, features: np.ndarray) -> np.ndarray:
        """The shared-trunk embedding under ``scope="last"`` (batch-invariant)."""
        if self._trunk_kernel is None:
            raise ValueError("trunk_embed is only available with scope='last'")
        return self._trunk_kernel.predict(features)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of resident (hot + warm) users."""
        return len(self._params) + len(self._warm)

    def __contains__(self, user_id: Hashable) -> bool:
        """Whether the user is resident (hot or warm) — cold users are not."""
        return user_id in self._params or user_id in self._warm

    @property
    def user_ids(self) -> List[Hashable]:
        return list(self._params) + list(self._warm)

    def tier_sizes(self) -> Dict[str, int]:
        """Current population of each lifecycle tier."""
        return {"hot": len(self._params), "warm": len(self._warm), "cold": len(self._cold)}

    def resident_bytes(self, user_id: Hashable) -> int:
        """Bytes of in-memory (hot-tier) parameter state the user would occupy.

        This is the per-user cost the lifecycle budgets govern: for
        ``scope="all"`` the full parameter set, for ``scope="lora"`` just the
        rank-r factors.  Warm users are promoted to answer (their hot-tier
        footprint is the question being asked).
        """
        params = self._lookup(user_id, record=False)
        if params is None:
            raise KeyError(f"no adapted parameters for user {user_id!r}")
        return sum(int(array.nbytes) for array in params)

    def parameters_for(self, user_id: Hashable) -> Optional[List[np.ndarray]]:
        """The user's adapted parameters as read-only views, or ``None``.

        Under ``scope="all"`` these follow ``model.parameters()`` order;
        under ``scope="last"`` they are the personal head's
        ``[weight, bias]``; under ``scope="lora"`` the per-layer factors
        ``[a0, b0, a1, b1, ...]``.  A warm user is transparently promoted.
        """
        params = self._lookup(user_id, record=False)
        if params is None:
            return None
        return [_readonly(p) for p in params]

    # ------------------------------------------------------------------
    # Adaptation
    # ------------------------------------------------------------------
    def adapt_user(
        self, user_id: Hashable, dataset: ArrayDataset, epochs: Optional[int] = None
    ) -> List[np.ndarray]:
        """Fine-tune one user's parameter set from the shared base model."""
        return self.adapt_many({user_id: dataset}, epochs=epochs)[user_id]

    def adapt_many(
        self,
        datasets: Mapping[Hashable, ArrayDataset],
        epochs: Optional[int] = None,
    ) -> Dict[Hashable, List[np.ndarray]]:
        """Fine-tune many users at once through the task-batched kernels.

        Users whose adaptation sets have equal sizes share one grouped
        forward/backward per mini-batch (one ``(users, ...)`` parameter
        tensor); unequal sizes are grouped by size so every set still runs
        grouped with its peers.  Each user's slice starts from the shared
        base parameters and follows exactly the update sequence a solo
        adaptation would — results are bitwise identical to
        :meth:`adapt_user` per user.  (Under ``scope="lora"`` the factor
        initialization is seeded per user, so a user's trajectory is also
        independent of which peers share the grouped call.)
        """
        if not datasets:
            raise ValueError("at least one adaptation set is required")
        by_size: Dict[int, List[Hashable]] = {}
        for user_id, dataset in datasets.items():
            if len(dataset) == 0:
                raise ValueError(f"adaptation set of user {user_id!r} is empty")
            by_size.setdefault(len(dataset), []).append(user_id)

        adapted: Dict[Hashable, List[np.ndarray]] = {}
        for size in sorted(by_size):
            users = by_size[size]
            group = self._adapt_group(
                users, [datasets[user] for user in users], size, epochs
            )
            adapted.update(group)

        for user_id, params in adapted.items():
            self._params[user_id] = params
            self._params.move_to_end(user_id)
            self._warm.pop(user_id, None)
            self._cold.discard(user_id)
            self._write_spill(user_id, params)
        self._absorb_adaptation(adapted)
        self._enforce_budgets()
        if self.metrics is not None:
            self.metrics.record_adaptation(len(adapted))
        return adapted

    def _adapt_group(
        self,
        users: Sequence[Hashable],
        datasets: Sequence[ArrayDataset],
        size: int,
        epochs: Optional[int],
    ) -> Dict[Hashable, List[np.ndarray]]:
        """One grouped adaptation over equally sized sets."""
        policy = self.policy
        epochs = epochs if epochs is not None else policy.epochs
        num_users = len(users)
        batch_size = min(policy.batch_size, size)
        labels = np.stack([dataset.labels for dataset in datasets])

        if policy.scope == "last":
            # The trunk is shared and frozen: embed every calibration frame
            # in one batch-invariant kernel pass (per-frame results are
            # independent of the concatenation), then the personal head is a
            # tiny grouped linear problem.
            stacked = self.trunk_embed(
                np.concatenate([dataset.features for dataset in datasets])
            )
            features = stacked.reshape(num_users, size, -1)
            params = [
                nn.Tensor(
                    np.broadcast_to(p, (num_users, *p.shape)).copy(), requires_grad=True
                )
                for p in self._head_init
            ]

            def forward(p: List[nn.Tensor], x: nn.Tensor) -> nn.Tensor:
                return nn.linear_batched(x, p[0], p[1] if len(p) > 1 else None)
        elif policy.scope == "lora":
            # The base stays frozen; each user trains only per-layer rank-r
            # factors.  Factor initialization is seeded by the user id, not
            # the group slot, so the trajectory is bitwise independent of
            # which peers (if any) share the grouped call.
            features = np.stack([dataset.features for dataset in datasets])
            seeds = [
                seed_for_key("lora-init", policy.seed, repr(user)) for user in users
            ]
            params = lowrank_parameters(self.model, policy.rank, seeds)
            base = self._lora_base

            def forward(p: List[nn.Tensor], x: nn.Tensor) -> nn.Tensor:
                return lowrank_forward(self.model, base, p, x)
        else:
            if not supports_batched_execution(self.model):
                raise ValueError(
                    "model architecture has no task-batched kernels; "
                    "scope='all' adaptation is unavailable (scope='last' may still work)"
                )
            features = np.stack([dataset.features for dataset in datasets])
            params = replicate_parameters(self.model, num_users)

            def forward(p: List[nn.Tensor], x: nn.Tensor) -> nn.Tensor:
                return batched_forward(self.model, p, x)

        for epoch in range(epochs):
            # Mirror BatchLoader's shuffling so grouped and solo adaptation
            # consume mini-batches in the same order.
            indices = np.arange(size)
            if policy.shuffle:
                indices = np.random.default_rng(policy.seed + epoch).permutation(size)
            for start in range(0, size, batch_size):
                batch = indices[start : start + batch_size]
                x = nn.Tensor(features[:, batch])
                y = nn.Tensor(labels[:, batch])
                predictions = forward(params, x)
                losses = nn.per_task_loss(predictions, y, policy.loss)
                losses.sum().backward()
                params = gradient_step(params, policy.learning_rate)

        return {
            user: [stacked.data[slot].copy() for stacked in params]
            for slot, user in enumerate(users)
        }

    # ------------------------------------------------------------------
    # Lifecycle tiers
    # ------------------------------------------------------------------
    def _lookup(
        self, user_id: Hashable, record: bool = True
    ) -> Optional[List[np.ndarray]]:
        """Resolve a user's parameters across tiers, promoting warm users.

        Hot users are touched (LRU refresh); warm users are promoted into the
        hot tier; cold and unknown users return ``None`` (a known-cold miss
        is recorded distinctly from never-adapted traffic).
        """
        params = self._params.get(user_id)
        if params is not None:
            self._params.move_to_end(user_id)
            if record and self.metrics is not None:
                self.metrics.record_adapter_access("hot")
            return params
        if user_id in self._warm:
            params = self._promote(user_id)
            if params is not None:
                if record and self.metrics is not None:
                    self.metrics.record_adapter_access("warm")
                return params
            # Quarantined on promotion: the user is now cold and serves
            # from the base model until re-onboarded.
            if record and self.metrics is not None:
                self.metrics.record_adapter_access("cold")
            return None
        if record and self.metrics is not None and user_id in self._cold:
            self.metrics.record_adapter_access("cold")
        return None

    def _promote(
        self, user_id: Hashable, protect: Set[Hashable] = frozenset()
    ) -> Optional[List[np.ndarray]]:
        """Load a warm user's spill file back into the hot tier.

        A spill file that fails to load or verify — truncated archive,
        checksum mismatch, wrong schema — is *quarantined*: renamed aside
        (preserved for forensics, out of the attach scan), the user demoted
        to cold, and ``None`` returned so the caller serves the base model
        instead of crashing the whole flush.  Graceful degradation, visible
        only in the ``spill_quarantined`` counter.
        """
        path = self._warm.pop(user_id)
        try:
            state, metadata = load_state(path)
            self._validate_archive(metadata, path, spill=True)
            self._verify_checksum(state, metadata, path)
        except Exception:
            self._quarantine_spill(path, user_id)
            return None
        params = [state[key] for key in sorted(state)]
        self._params[user_id] = params
        self._params.move_to_end(user_id)
        # The spill file stays current (write-through), so a later demotion
        # of this user is again a pure in-memory drop.
        self._invalidate_gather_state()
        self._enforce_budgets(protect={user_id} | set(protect))
        return params

    @staticmethod
    def _verify_checksum(
        state: Mapping[str, np.ndarray], metadata: Optional[Dict], path
    ) -> None:
        """Verify an archive's recorded CRC32 against its loaded tensors.

        Archives written before checksums existed carry no ``checksum``
        field and load unverified — the format stays backward compatible.
        """
        expected = (metadata or {}).get("checksum")
        if expected is None:
            return
        actual = state_checksum(dict(state))
        if int(expected) != actual:
            raise ValueError(
                f"{path} failed checksum verification "
                f"(stored {expected}, computed {actual})"
            )

    def _quarantine_spill(self, path: Path, user_id: Optional[Hashable] = None) -> None:
        """Set a bad spill file aside and demote its user to cold."""
        quarantined = path.with_name(path.name + ".quarantined")
        try:
            path.replace(quarantined)
        except OSError:
            pass
        if user_id is not None:
            self._spill_paths.pop(user_id, None)
            self._warm.pop(user_id, None)
            self._cold.add(user_id)
        if self.metrics is not None:
            self.metrics.record_spill_quarantined()

    def _enforce_budgets(self, protect: Set[Hashable] = frozenset()) -> None:
        """Demote past-budget users: hot → warm (or cold), warm → cold."""
        hot_capacity = self.policy.hot_capacity
        if hot_capacity is not None and len(self._params) > hot_capacity:
            evictable = [user for user in self._params if user not in protect]
            evicted = False
            while len(self._params) > hot_capacity and evictable:
                user = evictable.pop(0)
                del self._params[user]
                evicted = True
                if user in self._spill_paths:
                    self._warm[user] = self._spill_paths[user]
                    if self.metrics is not None:
                        self.metrics.record_adapter_demotion("warm")
                else:
                    self._cold.add(user)
                    if self.metrics is not None:
                        self.metrics.record_adapter_demotion("cold")
            if evicted:
                self._invalidate_gather_state()
        warm_capacity = self.policy.warm_capacity
        if warm_capacity is not None:
            while len(self._warm) > warm_capacity:
                user, path = self._warm.popitem(last=False)
                path.unlink(missing_ok=True)
                del self._spill_paths[user]
                self._cold.add(user)
                if self.metrics is not None:
                    self.metrics.record_adapter_demotion("cold")

    def _attach_spill_dir(self) -> None:
        """Register existing spill files as warm users (restart re-attach).

        This is what lets adapter state survive a worker-process crash: the
        restarted process scans ``policy.spill_dir`` and every previously
        spilled user comes back warm, promoted on their next request.
        """
        for path in sorted(self._spill_dir.glob(f"{_SPILL_PREFIX}*.npz")):
            try:
                metadata = read_metadata(path)
            except Exception:
                # An unreadable (truncated, corrupted) file must not block
                # the restart — quarantine it and keep scanning; its user
                # re-onboards from the base model.  Policy mismatches below
                # still raise: a wrong-rank archive is an operator error,
                # not data corruption.
                self._quarantine_spill(path)
                continue
            if not metadata or "user" not in metadata:
                continue
            self._validate_archive(metadata, path, spill=True)
            user_id = self._decode_user(metadata["user"])
            if user_id not in self._params:
                self._warm[user_id] = path
            self._spill_paths[user_id] = path

    def _write_spill(self, user_id: Hashable, params: Sequence[np.ndarray]) -> None:
        """Write-through one user's parameters to their spill file."""
        if self._spill_dir is None:
            return
        encoded = self._encode_user(user_id)
        digest = hashlib.sha1(repr(encoded).encode("utf-8")).hexdigest()[:16]
        path = self._spill_dir / f"{_SPILL_PREFIX}{digest}.npz"
        state = {f"p{slot:03d}": array for slot, array in enumerate(params)}
        save_state(
            state,
            path,
            metadata=self._archive_metadata(
                user=encoded, checksum=state_checksum(state)
            ),
        )
        self._spill_paths[user_id] = path
        if (
            self.fault_injector is not None
            and self.fault_injector.check("corrupt_spill", "spill") is not None
        ):
            self.fault_injector.corrupt_file(path)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    @staticmethod
    def _encode_user(user_id: Hashable) -> List:
        if isinstance(user_id, bool) or not isinstance(user_id, (str, int)):
            raise TypeError(
                f"only str/int user ids are persistable, got {type(user_id).__name__}"
            )
        return ["str" if isinstance(user_id, str) else "int", user_id]

    @staticmethod
    def _decode_user(encoded: Sequence) -> Hashable:
        kind, value = encoded
        return str(value) if kind == "str" else int(value)

    def _archive_metadata(self, **extra) -> Dict:
        metadata = {"format": SAVE_FORMAT, "scope": self.scope}
        if self.scope == "lora":
            metadata["rank"] = self.policy.rank
        metadata.update(extra)
        return metadata

    def _validate_archive(self, metadata: Optional[Dict], path, spill: bool = False) -> None:
        """Check an archive's schema against this registry's policy.

        Raises a readable error on any mismatch instead of letting a wrong
        archive surface later as a shape crash inside a gather.
        """
        kind = "spill file" if spill else "checkpoint"
        if not metadata or metadata.get("format") not in (1, SAVE_FORMAT):
            raise ValueError(f"{path} is not an adapter-registry {kind}")
        archive_scope = metadata.get("scope")
        if archive_scope != self.scope:
            raise ValueError(
                f"{kind} {path} was saved with scope='{archive_scope}', "
                f"registry policy has scope='{self.scope}'"
            )
        if metadata["format"] == 1 and self.scope == "lora":
            raise ValueError(
                f"{kind} {path} is a legacy format-1 archive (full parameter "
                "tensors); it cannot load into a scope='lora' policy"
            )
        if self.scope == "lora":
            archive_rank = metadata.get("rank")
            if archive_rank != self.policy.rank:
                raise ValueError(
                    f"{kind} {path} holds rank-{archive_rank} factors, "
                    f"registry policy has rank={self.policy.rank}"
                )

    def save(self, path: Union[str, Path]) -> Path:
        """Persist every resident user's parameter set to an ``.npz`` archive.

        Built on :mod:`repro.nn.serialization`: pure-NumPy arrays plus a JSON
        metadata block (format version, adaptation scope, low-rank rank, user
        ids), no pickled code objects.  Both hot and warm users are included
        (warm users are read from their spill files without promotion).  User
        ids must be strings or integers — the hashables a JSON round trip
        preserves.
        """
        state: Dict[str, np.ndarray] = {}
        users: List[List] = []
        entries = [(user, params) for user, params in self._params.items()]
        for user in self._warm:
            warm_state, _ = load_state(self._warm[user])
            entries.append((user, [warm_state[key] for key in sorted(warm_state)]))
        for index, (user_id, params) in enumerate(entries):
            users.append(self._encode_user(user_id))
            for slot, array in enumerate(params):
                # Zero-padded slots keep the lexicographic key order equal to
                # the parameter order on reload.
                state[f"user{index:06d}.p{slot:03d}"] = array
        return save_state(
            state,
            path,
            metadata=self._archive_metadata(users=users, checksum=state_checksum(state)),
        )

    def load(self, path: Union[str, Path], replace: bool = True) -> List[Hashable]:
        """Restore adapted parameter sets saved by :meth:`save`.

        Reads both the current format-2 schema and legacy PR-3-era format-1
        archives (full parameter tensors, scopes ``all``/``last``) — a legacy
        archive loads into a registry whose policy matches its scope exactly
        as it always did.  Mismatched scope or rank raises a readable error.

        ``replace=True`` (default) makes the registry contents equal the
        archive's — current users (including warm spill files) are dropped
        first; ``replace=False`` merges, with loaded users overwriting any
        existing parameter set of the same id.  Loaded users enter the hot
        tier and are written through to the spill directory when one is
        configured.  Returns the loaded user ids.
        """
        state, metadata = load_state(path)
        self._validate_archive(metadata, path)
        self._verify_checksum(state, metadata, path)
        # One pass over the (sorted-once) keys; zero-padded user and slot
        # indices make lexicographic order equal to parameter order.
        by_user: Dict[str, List[np.ndarray]] = {}
        for key in sorted(state):
            prefix, _, _ = key.partition(".")
            by_user.setdefault(prefix, []).append(state[key])
        loaded: "OrderedDict[Hashable, List[np.ndarray]]" = OrderedDict()
        for index, encoded in enumerate(metadata["users"]):
            params = by_user.get(f"user{index:06d}")
            if not params:
                raise ValueError(f"checkpoint is missing parameters for user #{index}")
            loaded[self._decode_user(encoded)] = params
        if replace:
            for stale in set(self._spill_paths) - set(loaded):
                self._spill_paths.pop(stale).unlink(missing_ok=True)
            self._params = loaded
            self._warm.clear()
            self._cold.clear()
        else:
            for user_id, params in loaded.items():
                self._params[user_id] = params
                self._params.move_to_end(user_id)
                self._warm.pop(user_id, None)
                self._cold.discard(user_id)
        for user_id, params in loaded.items():
            self._write_spill(user_id, params)
        self._invalidate_gather_state()
        self._enforce_budgets()
        return list(loaded)

    def export_user_bytes(self, user_id: Hashable) -> Optional[bytes]:
        """One user's parameter set as portable ``.npz`` bytes, or ``None``.

        The archive carries the same format-2 metadata as a spill file
        (format/scope/rank plus the encoded user id), so the importing
        registry validates schema compatibility before accepting it.  Warm
        users are read without promotion; cold/unknown users return ``None``.
        This is the unit of adapter state that live user migration moves over
        the wire.
        """
        params = self._params.get(user_id)
        if params is None and user_id in self._warm:
            warm_state, _ = load_state(self._warm[user_id])
            params = [warm_state[key] for key in sorted(warm_state)]
        if params is None:
            return None
        state = {f"p{slot:03d}": array for slot, array in enumerate(params)}
        return save_state_bytes(
            state,
            metadata=self._archive_metadata(
                user=self._encode_user(user_id), checksum=state_checksum(state)
            ),
        )

    def import_user_bytes(self, user_id: Hashable, data: bytes) -> None:
        """Install one user's parameter set from :meth:`export_user_bytes` output.

        Scope/rank/format mismatches raise the same readable errors as spill
        and checkpoint loads.  The user enters the hot tier (their adapted
        predictions are about to be served here) and is written through to
        the spill directory when one is configured.
        """
        state, metadata = load_state_bytes(data)
        self._validate_archive(metadata, "<migrated archive>")
        self._verify_checksum(state, metadata, "<migrated archive>")
        encoded = metadata.get("user") if metadata else None
        if encoded is not None and self._decode_user(encoded) != user_id:
            raise ValueError(
                f"migrated archive belongs to user "
                f"{self._decode_user(encoded)!r}, not {user_id!r}"
            )
        params = [state[key] for key in sorted(state)]
        if not params:
            raise ValueError("migrated archive holds no parameter tensors")
        self._params[user_id] = params
        self._params.move_to_end(user_id)
        self._warm.pop(user_id, None)
        self._cold.discard(user_id)
        self._write_spill(user_id, params)
        self._invalidate_gather_state()
        self._enforce_budgets()

    def remove(self, user_id: Hashable) -> bool:
        """Forget one user entirely (all tiers); returns whether they existed."""
        existed = self._params.pop(user_id, None) is not None
        existed = self._warm.pop(user_id, None) is not None or existed
        spill = self._spill_paths.pop(user_id, None)
        if spill is not None:
            spill.unlink(missing_ok=True)
        self._cold.discard(user_id)
        if existed:
            self._invalidate_gather_state()
        return existed

    def _invalidate_gather_state(self) -> None:
        """Registry contents changed: bump the version, drop both caches."""
        self.version += 1
        self._gather_cache.clear()
        self._stack = None
        self._stack_rows = {}

    def _absorb_adaptation(self, adapted: Mapping[Hashable, List[np.ndarray]]) -> None:
        """Fold fresh adaptations into the gather state without a rebuild.

        Composition memos always die (the values changed), but the
        full-registry stack survives a re-adaptation of *existing* users:
        their rows are overwritten in place, so a deployment that adapts
        users while serving pays O(adapted) per call instead of restacking
        the whole cohort on the next gather.  New users still invalidate
        the stack (their rows do not exist yet).
        """
        if self._stack is None or any(user not in self._stack_rows for user in adapted):
            self._invalidate_gather_state()
            return
        self.version += 1
        self._gather_cache.clear()
        for user, params in adapted.items():
            row = self._stack_rows[user]
            for block, array in zip(self._stack, params):
                block[row] = array
        self._stack_version = self.version

    # ------------------------------------------------------------------
    # Serving hot path
    # ------------------------------------------------------------------
    def gather(self, user_ids: Sequence[Hashable]) -> List[nn.Tensor]:
        """Stack the users' parameter sets into ``(tasks, ...)`` tensors.

        The result feeds :func:`repro.engine.batched_forward` (or the
        low-rank kernels, for ``scope="lora"`` factor stacks) directly.  Warm
        users are transparently promoted to the hot tier first; requesting a
        cold or unknown user raises :class:`KeyError` (the caller re-onboards
        on demand).  An exact composition repeat returns the memoized
        tensors; any other composition row-indexes the full-registry stack
        (one vectorized copy per parameter tensor).  The only cache *miss* is
        a registry-stack rebuild, which happens only when the hot cohort's
        membership changes (re-adapting existing users overwrites their rows
        in place) — steady-state serving hits on every micro-batch even when
        batch boundaries drift across the user cohort (the bug the old
        composition-keyed cache had: with 50 users and 64-wide batches no
        composition ever repeated inside the LRU window, so the hit rate
        pinned at 0).
        """
        if not user_ids:
            raise ValueError("at least one user is required")
        missing = []
        composition = set(user_ids)
        for user in dict.fromkeys(user_ids):
            if user in self._params:
                self._params.move_to_end(user)
                if self.metrics is not None:
                    self.metrics.record_adapter_access("hot")
            elif user in self._warm:
                promoted = self._promote(user, protect=composition)
                if promoted is not None:
                    if self.metrics is not None:
                        self.metrics.record_adapter_access("warm")
                else:
                    # Spill file quarantined during promotion: the user is
                    # now cold and must re-onboard from the base model.
                    if self.metrics is not None:
                        self.metrics.record_adapter_access("cold")
                    missing.append(user)
            else:
                if self.metrics is not None and user in self._cold:
                    self.metrics.record_adapter_access("cold")
                missing.append(user)
        if missing:
            raise KeyError(f"no adapted parameters for users {missing!r}")
        key = (self.version, tuple(user_ids))
        cached = self._gather_cache.get(key)
        if cached is not None:
            self._gather_cache.move_to_end(key)
            if self.metrics is not None:
                self.metrics.record_param_cache(hit=True)
            return cached
        hit = self._stack is not None and self._stack_version == self.version
        if not hit:
            users = list(self._params)
            per_param = zip(*(self._params[user] for user in users))
            self._stack = [np.stack(arrays) for arrays in per_param]
            self._stack_rows = {user: row for row, user in enumerate(users)}
            self._stack_version = self.version
        if self.metrics is not None:
            self.metrics.record_param_cache(hit=hit)
        rows = [self._stack_rows[user] for user in user_ids]
        stacked = [nn.Tensor(block[rows]) for block in self._stack]
        self._gather_cache[key] = stacked
        while len(self._gather_cache) > self._gather_cache_size:
            self._gather_cache.popitem(last=False)
        return stacked

"""Per-user adapted parameter sets, fine-tuned in grouped calls.

The FUSE deployment story is per-user adaptation: a handful of labelled
frames from a new user fine-tune the meta-learned initialization into a
personal parameter set.  Doing that one user at a time wastes the batched
substrate, so :class:`AdapterRegistry` adapts *populations*: every user in an
:meth:`AdapterRegistry.adapt_many` call becomes one slice of a
``(users, ...)`` parameter tensor and all users share a single grouped
forward/backward per mini-batch through :func:`repro.engine.batched_forward`
(the same task-batched kernels as the meta-learning inner loop).

Because task slices are mathematically and bitwise independent, a user
adapted inside a group ends up with exactly the parameters a solo
:meth:`adapt_user` call would have produced — ``tests/serve`` pins this.

Two adaptation scopes mirror the paper's Figures 3 and 4:

* ``scope="all"`` personalises every layer.  Maximum capacity, but serving
  must read ~1.1 M parameters per user per batch — adapted traffic becomes
  memory-bound (the throughput benchmark documents the cost).
* ``scope="last"`` personalises only the final FC layer (the paper's
  low-cost online regime): the convolutional/FC trunk stays shared — so
  serving runs it once per micro-batch through the batch-invariant kernel —
  and each user owns just a ``(57, 512)`` head.  Adaptation precomputes the
  trunk embedding of the calibration frames once and fine-tunes the head as
  a tiny grouped linear problem; both adaptation and serving scale to far
  more concurrent personalised users.

The registry also answers the serving hot path: :meth:`gather` stacks the
parameter sets of the users in one micro-batch into ``(tasks, ...)`` tensors.
Two cache levels back it: a full-registry ``(all_users, ...)`` stack built
once per registry version (each gather is then one vectorized row-index into
it, never a per-user Python-level restack), and a small LRU of recently
served batch compositions that skips even the row copy for exact repeats.
Steady-state traffic therefore hits on every micro-batch regardless of how
batch boundaries drift across the user cohort — the ``param_cache`` hit rate
in :class:`repro.serve.ServeMetrics` counts a rebuild of the registry stack
as the only miss.
"""

from __future__ import annotations

from collections import OrderedDict
from pathlib import Path
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from .. import nn
from ..core.finetune import FineTuneConfig
from ..core.models import PoseCNN
from ..dataset.loader import ArrayDataset
from ..engine.functional import (
    batched_forward,
    gradient_step,
    replicate_parameters,
    supports_batched_execution,
)
from ..nn.serialization import load_state, save_state
from .kernel import SharedParameterKernel
from .metrics import ServeMetrics

__all__ = ["AdapterRegistry"]


def _readonly(array: np.ndarray) -> np.ndarray:
    view = array.view()
    view.setflags(write=False)
    return view


class AdapterRegistry:
    """Stores per-user adapted parameter sets and produces them in bulk.

    Parameters
    ----------
    model:
        The shared base model whose parameters seed every adaptation.  The
        registry never mutates it.
    config:
        Fine-tuning hyper-parameters.  Grouped adaptation requires the plain
        SGD update (``optimizer="sgd"``) — the rule the FUSE initialization
        was optimized for — with either scope.  The default is the paper's
        ~5-epoch online regime rather than the offline 50-epoch sweep.
    gather_cache_size:
        Number of recently used ``(tasks, ...)`` parameter stacks memoized
        for the serving hot path.
    metrics:
        Optional :class:`ServeMetrics` receiving cache and adaptation events.
    gemm_block:
        Block width of the trunk-embedding kernel under ``scope="last"``
        (matched to the server's ``gemm_block`` so embeddings agree bitwise
        with the serving path).
    """

    def __init__(
        self,
        model: PoseCNN,
        config: Optional[FineTuneConfig] = None,
        gather_cache_size: int = 8,
        metrics: Optional[ServeMetrics] = None,
        gemm_block: int = 32,
    ) -> None:
        self.model = model
        self.config = config if config is not None else FineTuneConfig(epochs=5)
        if self.config.optimizer != "sgd":
            raise ValueError("grouped adaptation only supports the sgd optimizer")
        if gather_cache_size < 1:
            raise ValueError("gather_cache_size must be >= 1")
        if self.config.scope == "last":
            head = model.last_layer
            if not isinstance(head, nn.Linear):
                raise ValueError("scope='last' requires the final layer to be Linear")
            trunk = nn.Sequential(*list(model.network)[:-1])
            self._trunk_kernel: Optional[SharedParameterKernel] = SharedParameterKernel(
                trunk, block=gemm_block
            )
            self._head_init = [head.weight.data.copy()]
            if head.bias is not None:
                self._head_init.append(head.bias.data.copy())
        else:
            # The task-batched training kernels are only required once
            # adaptation actually runs (checked in _adapt_group), so a model
            # they cannot handle — e.g. with active dropout — still serves
            # base traffic through a registry-less route.
            self._trunk_kernel = None
            self._head_init = []
        self.metrics = metrics
        self.version = 0
        self._params: "OrderedDict[Hashable, List[np.ndarray]]" = OrderedDict()
        self._gather_cache: "OrderedDict[Tuple, List[nn.Tensor]]" = OrderedDict()
        self._gather_cache_size = gather_cache_size
        # Full-registry (all_users, ...) stack, rebuilt lazily when `version`
        # moves; the steady-state gather path row-indexes into it instead of
        # restacking per-user arrays batch by batch.
        self._stack: Optional[List[np.ndarray]] = None
        self._stack_rows: Dict[Hashable, int] = {}
        self._stack_version = -1

    @property
    def scope(self) -> str:
        """Which layers are personalised: ``"all"`` or ``"last"``."""
        return self.config.scope

    def trunk_embed(self, features: np.ndarray) -> np.ndarray:
        """The shared-trunk embedding under ``scope="last"`` (batch-invariant)."""
        if self._trunk_kernel is None:
            raise ValueError("trunk_embed is only available with scope='last'")
        return self._trunk_kernel.predict(features)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._params)

    def __contains__(self, user_id: Hashable) -> bool:
        return user_id in self._params

    @property
    def user_ids(self) -> List[Hashable]:
        return list(self._params)

    def parameters_for(self, user_id: Hashable) -> Optional[List[np.ndarray]]:
        """The user's adapted parameters as read-only views, or ``None``.

        Under ``scope="all"`` these follow ``model.parameters()`` order;
        under ``scope="last"`` they are the personal head's
        ``[weight, bias]``.
        """
        params = self._params.get(user_id)
        if params is None:
            return None
        return [_readonly(p) for p in params]

    # ------------------------------------------------------------------
    # Adaptation
    # ------------------------------------------------------------------
    def adapt_user(
        self, user_id: Hashable, dataset: ArrayDataset, epochs: Optional[int] = None
    ) -> List[np.ndarray]:
        """Fine-tune one user's parameter set from the shared base model."""
        return self.adapt_many({user_id: dataset}, epochs=epochs)[user_id]

    def adapt_many(
        self,
        datasets: Mapping[Hashable, ArrayDataset],
        epochs: Optional[int] = None,
    ) -> Dict[Hashable, List[np.ndarray]]:
        """Fine-tune many users at once through the task-batched kernels.

        Users whose adaptation sets have equal sizes share one grouped
        forward/backward per mini-batch (one ``(users, ...)`` parameter
        tensor); unequal sizes are grouped by size so every set still runs
        grouped with its peers.  Each user's slice starts from the shared
        base parameters and follows exactly the update sequence a solo
        adaptation would — results are bitwise identical to
        :meth:`adapt_user` per user.
        """
        if not datasets:
            raise ValueError("at least one adaptation set is required")
        by_size: Dict[int, List[Hashable]] = {}
        for user_id, dataset in datasets.items():
            if len(dataset) == 0:
                raise ValueError(f"adaptation set of user {user_id!r} is empty")
            by_size.setdefault(len(dataset), []).append(user_id)

        adapted: Dict[Hashable, List[np.ndarray]] = {}
        for size in sorted(by_size):
            users = by_size[size]
            group = self._adapt_group(
                users, [datasets[user] for user in users], size, epochs
            )
            adapted.update(group)

        for user_id, params in adapted.items():
            self._params[user_id] = params
        self._absorb_adaptation(adapted)
        if self.metrics is not None:
            self.metrics.record_adaptation(len(adapted))
        return adapted

    def _adapt_group(
        self,
        users: Sequence[Hashable],
        datasets: Sequence[ArrayDataset],
        size: int,
        epochs: Optional[int],
    ) -> Dict[Hashable, List[np.ndarray]]:
        """One grouped adaptation over equally sized sets."""
        cfg = self.config
        epochs = epochs if epochs is not None else cfg.epochs
        num_users = len(users)
        batch_size = min(cfg.batch_size, size)
        labels = np.stack([dataset.labels for dataset in datasets])

        if cfg.scope == "last":
            # The trunk is shared and frozen: embed every calibration frame
            # in one batch-invariant kernel pass (per-frame results are
            # independent of the concatenation), then the personal head is a
            # tiny grouped linear problem.
            stacked = self.trunk_embed(
                np.concatenate([dataset.features for dataset in datasets])
            )
            features = stacked.reshape(num_users, size, -1)
            params = [
                nn.Tensor(
                    np.broadcast_to(p, (num_users, *p.shape)).copy(), requires_grad=True
                )
                for p in self._head_init
            ]

            def forward(p: List[nn.Tensor], x: nn.Tensor) -> nn.Tensor:
                return nn.linear_batched(x, p[0], p[1] if len(p) > 1 else None)
        else:
            if not supports_batched_execution(self.model):
                raise ValueError(
                    "model architecture has no task-batched kernels; "
                    "scope='all' adaptation is unavailable (scope='last' may still work)"
                )
            features = np.stack([dataset.features for dataset in datasets])
            params = replicate_parameters(self.model, num_users)

            def forward(p: List[nn.Tensor], x: nn.Tensor) -> nn.Tensor:
                return batched_forward(self.model, p, x)

        for epoch in range(epochs):
            # Mirror BatchLoader's shuffling so grouped and solo adaptation
            # consume mini-batches in the same order.
            indices = np.arange(size)
            if cfg.shuffle:
                indices = np.random.default_rng(cfg.seed + epoch).permutation(size)
            for start in range(0, size, batch_size):
                batch = indices[start : start + batch_size]
                x = nn.Tensor(features[:, batch])
                y = nn.Tensor(labels[:, batch])
                predictions = forward(params, x)
                losses = nn.per_task_loss(predictions, y, cfg.loss)
                losses.sum().backward()
                params = gradient_step(params, cfg.learning_rate)

        return {
            user: [stacked.data[slot].copy() for stacked in params]
            for slot, user in enumerate(users)
        }

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    @staticmethod
    def _encode_user(user_id: Hashable) -> List:
        if isinstance(user_id, bool) or not isinstance(user_id, (str, int)):
            raise TypeError(
                f"only str/int user ids are persistable, got {type(user_id).__name__}"
            )
        return ["str" if isinstance(user_id, str) else "int", user_id]

    @staticmethod
    def _decode_user(encoded: Sequence) -> Hashable:
        kind, value = encoded
        return str(value) if kind == "str" else int(value)

    def save(self, path: Union[str, Path]) -> Path:
        """Persist every user's adapted parameter set to an ``.npz`` archive.

        Built on :mod:`repro.nn.serialization`: pure-NumPy arrays plus a JSON
        metadata block (format version, adaptation scope, user ids), no
        pickled code objects.  User ids must be strings or integers — the
        hashables a JSON round trip preserves.
        """
        state: Dict[str, np.ndarray] = {}
        users: List[List] = []
        for index, (user_id, params) in enumerate(self._params.items()):
            users.append(self._encode_user(user_id))
            for slot, array in enumerate(params):
                # Zero-padded slots keep the lexicographic key order equal to
                # the parameter order on reload.
                state[f"user{index:06d}.p{slot:03d}"] = array
        metadata = {"format": 1, "scope": self.scope, "users": users}
        return save_state(state, path, metadata=metadata)

    def load(self, path: Union[str, Path], replace: bool = True) -> List[Hashable]:
        """Restore adapted parameter sets saved by :meth:`save`.

        ``replace=True`` (default) drops the current registry contents
        first; ``replace=False`` merges, with loaded users overwriting any
        existing parameter set of the same id.  The archive's adaptation
        scope must match this registry's (the parameter layout differs
        between scopes).  Returns the loaded user ids.
        """
        state, metadata = load_state(path)
        if not metadata or metadata.get("format") != 1:
            raise ValueError(f"{path} is not an adapter-registry checkpoint")
        if metadata["scope"] != self.scope:
            raise ValueError(
                f"checkpoint was saved with scope='{metadata['scope']}', "
                f"registry has scope='{self.scope}'"
            )
        # One pass over the (sorted-once) keys; zero-padded user and slot
        # indices make lexicographic order equal to parameter order.
        by_user: Dict[str, List[np.ndarray]] = {}
        for key in sorted(state):
            prefix, _, _ = key.partition(".")
            by_user.setdefault(prefix, []).append(state[key])
        loaded: "OrderedDict[Hashable, List[np.ndarray]]" = OrderedDict()
        for index, encoded in enumerate(metadata["users"]):
            params = by_user.get(f"user{index:06d}")
            if not params:
                raise ValueError(f"checkpoint is missing parameters for user #{index}")
            loaded[self._decode_user(encoded)] = params
        if replace:
            self._params = loaded
        else:
            self._params.update(loaded)
        self._invalidate_gather_state()
        return list(loaded)

    def remove(self, user_id: Hashable) -> bool:
        """Forget one user's adapted parameters; returns whether they existed."""
        existed = self._params.pop(user_id, None) is not None
        if existed:
            self._invalidate_gather_state()
        return existed

    def _invalidate_gather_state(self) -> None:
        """Registry contents changed: bump the version, drop both caches."""
        self.version += 1
        self._gather_cache.clear()
        self._stack = None
        self._stack_rows = {}

    def _absorb_adaptation(self, adapted: Mapping[Hashable, List[np.ndarray]]) -> None:
        """Fold fresh adaptations into the gather state without a rebuild.

        Composition memos always die (the values changed), but the
        full-registry stack survives a re-adaptation of *existing* users:
        their rows are overwritten in place, so a deployment that adapts
        users while serving pays O(adapted) per call instead of restacking
        the whole cohort on the next gather.  New users still invalidate
        the stack (their rows do not exist yet).
        """
        if self._stack is None or any(user not in self._stack_rows for user in adapted):
            self._invalidate_gather_state()
            return
        self.version += 1
        self._gather_cache.clear()
        for user, params in adapted.items():
            row = self._stack_rows[user]
            for block, array in zip(self._stack, params):
                block[row] = array
        self._stack_version = self.version

    # ------------------------------------------------------------------
    # Serving hot path
    # ------------------------------------------------------------------
    def gather(self, user_ids: Sequence[Hashable]) -> List[nn.Tensor]:
        """Stack the users' parameter sets into ``(tasks, ...)`` tensors.

        The result feeds :func:`repro.engine.batched_forward` directly.  An
        exact composition repeat returns the memoized tensors; any other
        composition row-indexes the full-registry stack (one vectorized copy
        per parameter tensor).  The only cache *miss* is a registry-stack
        rebuild, which happens only when the cohort's membership changes
        (re-adapting existing users overwrites their rows in place) —
        steady-state serving hits on every micro-batch even when batch
        boundaries drift across the cohort (the bug the old
        composition-keyed cache had: with 50 users and 64-wide batches no
        composition ever repeated inside the LRU window, so the hit rate
        pinned at 0).
        """
        if not user_ids:
            raise ValueError("at least one user is required")
        missing = [user for user in user_ids if user not in self._params]
        if missing:
            raise KeyError(f"no adapted parameters for users {missing!r}")
        key = (self.version, tuple(user_ids))
        cached = self._gather_cache.get(key)
        if cached is not None:
            self._gather_cache.move_to_end(key)
            if self.metrics is not None:
                self.metrics.record_param_cache(hit=True)
            return cached
        hit = self._stack is not None and self._stack_version == self.version
        if not hit:
            users = list(self._params)
            per_param = zip(*(self._params[user] for user in users))
            self._stack = [np.stack(arrays) for arrays in per_param]
            self._stack_rows = {user: row for row, user in enumerate(users)}
            self._stack_version = self.version
        if self.metrics is not None:
            self.metrics.record_param_cache(hit=hit)
        rows = [self._stack_rows[user] for user in user_ids]
        stacked = [nn.Tensor(block[rows]) for block in self._stack]
        self._gather_cache[key] = stacked
        while len(self._gather_cache) > self._gather_cache_size:
            self._gather_cache.popitem(last=False)
        return stacked

"""Shared helpers for the serving CLIs' parseable stdout handshake.

``fuse-serve`` (and now ``fuse-router``) announce their bound address by
printing a single machine-parseable line::

    [fuse-serve] ready tcp=127.0.0.1:8771
    [fuse-router] ready unix=/tmp/fuse.sock

Everything that launches a server as a subprocess — examples, tests, the
router spawning its backends — needs to wait for and parse that line, so
the format lives here exactly once.  The CLI formats through
:func:`format_ready_line`, consumers parse with :func:`parse_ready_line`
or block on a pipe with :func:`wait_for_ready`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import IO, Optional

__all__ = ["ReadyAddress", "format_ready_line", "parse_ready_line", "wait_for_ready"]

_READY_RE = re.compile(
    r"\[(?P<prog>[\w.-]+)\] ready "
    r"(?:tcp=(?P<host>[^:\s]+):(?P<port>\d+)|unix=(?P<path>\S+))\s*$"
)


@dataclass(frozen=True)
class ReadyAddress:
    """A parsed readiness announcement from a serving CLI."""

    prog: str
    kind: str  # "tcp" | "unix"
    host: Optional[str] = None
    port: Optional[int] = None
    path: Optional[str] = None

    @property
    def endpoint(self) -> str:
        """The address in CLI-argument form (``host:port`` or the path)."""
        if self.kind == "tcp":
            return f"{self.host}:{self.port}"
        return str(self.path)


def format_ready_line(prog: str, *, host: Optional[str] = None,
                      port: Optional[int] = None, path: Optional[str] = None) -> str:
    """The one canonical ready line (TCP when ``host`` given, else Unix)."""
    if path is not None:
        return f"[{prog}] ready unix={path}"
    if host is None or port is None:
        raise ValueError("either path or host and port are required")
    return f"[{prog}] ready tcp={host}:{port}"


def parse_ready_line(line: str) -> Optional[ReadyAddress]:
    """Parse one stdout line; ``None`` when it is not a ready announcement."""
    match = _READY_RE.match(line.strip())
    if match is None:
        return None
    if match.group("path") is not None:
        return ReadyAddress(prog=match.group("prog"), kind="unix", path=match.group("path"))
    return ReadyAddress(
        prog=match.group("prog"),
        kind="tcp",
        host=match.group("host"),
        port=int(match.group("port")),
    )


def wait_for_ready(stream: IO[str], max_lines: int = 100) -> ReadyAddress:
    """Read ``stream`` line by line until the ready announcement appears.

    Raises ``RuntimeError`` when the stream ends (the subprocess died) or
    ``max_lines`` go by without an announcement, echoing what was read so
    the failure is debuggable.
    """
    seen: list = []
    for _ in range(max_lines):
        line = stream.readline()
        if not line:
            break
        seen.append(line)
        address = parse_ready_line(line)
        if address is not None:
            return address
    raise RuntimeError(
        "server did not announce readiness; output was:\n" + "".join(seen)
    )

"""Multi-shard serving: hash users onto N independent :class:`PoseServer`\\ s.

One :class:`PoseServer` is single-threaded by design; scaling past one core
(or one process, with a process-per-shard deployment in front) means running
several of them side by side.  :class:`ShardedPoseServer` owns that layout:

* every user hashes onto a fixed shard (:func:`repro.runtime.shard_for`,
  stable across processes), so the user's session ring, adapted parameters
  and micro-batch co-riders all live on one shard — no cross-shard state;
* each shard has its own :class:`MicroBatcher`, :class:`SessionManager` and
  :class:`AdapterRegistry`, sharing only the read-only estimator (weights
  and feature builder);
* metrics aggregate across shards (:meth:`ServeMetrics.aggregate`), and the
  Prometheus exposition labels each shard's samples with ``shard="<i>"``.

Because every serving route is batch-composition invariant, splitting users
over shards never changes a prediction: a replay through N shards is bitwise
identical to the same replay through one server with the same scheduling
config — ``tests/serve/test_sharded_server.py`` pins this user for user.

The façade mirrors the :class:`PoseServer` surface (``enqueue`` / ``submit``
/ ``poll`` / ``flush`` / ``adapt_users`` / ``metrics_snapshot``), so the
replay driver and the examples run unchanged against either.

:class:`ProcessShardedPoseServer` keeps the same façade and the same
bitwise-replay guarantee but runs every shard in its own worker process
(:class:`repro.serve.worker.ShardProcess`): identical shard placement,
identical per-shard scheduling, so the only difference is *where* each
shard's flush executes.  That is the layer at which shard parallelism
finally buys wall-clock throughput on a multi-core host.
"""

from __future__ import annotations

import threading
import time
import warnings
from typing import Callable, Dict, Hashable, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.finetune import FineTuneConfig
from ..core.pipeline import FusePoseEstimator
from ..dataset.loader import ArrayDataset
from ..dataset.sample import PoseDataset
from ..radar.pointcloud import PointCloudFrame
from ..runtime import shard_for
from .batcher import FrameDropped, PendingPrediction, QueueFull
from .config import ServeConfig
from .metrics import ServeMetrics, prometheus_exposition
from .policy import AdapterPolicy
from .server import PoseServer, enqueue_each
from .faults import RetryPolicy
from .worker import (
    DEFAULT_CHANNEL_DEPTH,
    DEFAULT_MAX_RESTARTS,
    AdaptUsers,
    Enqueue,
    EnqueueBatch,
    ExportUser,
    Flush,
    ForgetUser,
    ImportUser,
    MetricsRequest,
    Poll,
    ShardCrashed,
    ShardEvents,
    ShardFactory,
    ShardProcess,
)

__all__ = ["ProcessShardedPoseServer", "ShardedPoseServer"]


def _resolve_policy(
    config: ServeConfig,
    adaptation: Optional[FineTuneConfig],
    policy: Optional[AdapterPolicy],
    owner: str,
) -> Optional[AdapterPolicy]:
    """Shared kwarg resolution of the sharded façades.

    Explicit ``policy`` wins; the legacy ``adaptation`` kwarg is translated
    (with a :class:`DeprecationWarning`, bitwise-equivalent); otherwise
    ``config.adapter`` applies, and ``None`` leaves each shard on the
    default policy.
    """
    if adaptation is not None:
        if policy is not None:
            raise TypeError("pass either policy= or the legacy adaptation=, not both")
        warnings.warn(
            f"{owner}(adaptation=FineTuneConfig(...)) is deprecated; "
            "pass policy=AdapterPolicy(...) or set ServeConfig.adapter instead",
            DeprecationWarning,
            stacklevel=3,
        )
        policy = AdapterPolicy.from_finetune(adaptation)
    return policy if policy is not None else config.adapter


class ShardedPoseServer:
    """N :class:`PoseServer` shards behind one server-shaped façade.

    Parameters
    ----------
    estimator:
        The shared (read-only) estimator; every shard serves the same base
        weights and feature builder.
    num_shards:
        Number of independent shards.  Users are assigned by a stable hash
        of their id, so the mapping survives restarts and is identical in
        every process of a multi-process deployment.
    config / adaptation / clock / policy:
        Forwarded to every shard (see :class:`PoseServer`; ``adaptation``
        is the deprecated legacy spelling of ``policy``).  Using one
        scheduling config everywhere keeps the shared-parameter kernel's
        GEMM block width identical across shards, which is what makes the
        sharded replay bitwise equal to a single-server replay.  A policy
        with a spill directory is split into per-shard subdirectories
        (``shard000/…``) so shards never share spill files.
    """

    def __init__(
        self,
        estimator: FusePoseEstimator,
        num_shards: int = 2,
        config: Optional[ServeConfig] = None,
        adaptation: Optional[FineTuneConfig] = None,
        clock: Callable[[], float] = time.perf_counter,
        policy: Optional[AdapterPolicy] = None,
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.estimator = estimator
        self.config = config if config is not None else ServeConfig()
        resolved = _resolve_policy(self.config, adaptation, policy, "ShardedPoseServer")
        self.policy = resolved if resolved is not None else AdapterPolicy()
        self.shards: List[PoseServer] = [
            PoseServer(
                estimator,
                self.config,
                clock=clock,
                policy=self.policy.with_spill_subdir(f"shard{index:03d}"),
            )
            for index in range(num_shards)
        ]

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def shard_index(self, user_id: Hashable) -> int:
        """The shard a user's traffic and state live on (stable hash)."""
        return shard_for(user_id, len(self.shards))

    def shard_of(self, user_id: Hashable) -> PoseServer:
        return self.shards[self.shard_index(user_id)]

    # ------------------------------------------------------------------
    # Request path (PoseServer façade)
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Requests waiting for the next micro-batch, across all shards."""
        return sum(shard.pending for shard in self.shards)

    def enqueue(
        self,
        user_id: Hashable,
        frame: PointCloudFrame,
        priority: Optional[str] = None,
        deadline_ms: Optional[float] = None,
    ) -> PendingPrediction:
        """Route one frame to the user's shard (may flush that shard)."""
        return self.shard_of(user_id).enqueue(
            user_id, frame, priority=priority, deadline_ms=deadline_ms
        )

    def enqueue_many(
        self,
        items: Sequence[Tuple[Hashable, PointCloudFrame]],
        priority: Optional[str] = None,
    ) -> List[Union[PendingPrediction, Exception]]:
        """Enqueue many ``(user_id, frame)`` pairs in order, one outcome
        per slot — the shared :func:`repro.serve.server.enqueue_each`
        contract."""
        return enqueue_each(self, items, priority=priority)

    def submit(
        self,
        user_id: Hashable,
        frame: PointCloudFrame,
        priority: Optional[str] = None,
        deadline_ms: Optional[float] = None,
    ) -> np.ndarray:
        """Synchronous prediction through the user's shard."""
        return self.shard_of(user_id).submit(
            user_id, frame, priority=priority, deadline_ms=deadline_ms
        )

    def poll(self, now: Optional[float] = None) -> int:
        """Apply every shard's latency deadline; returns predictions produced."""
        return sum(shard.poll(now) for shard in self.shards)

    def flush(self) -> int:
        """Flush every shard's pending micro-batch now."""
        return sum(shard.flush() for shard in self.shards)

    # ------------------------------------------------------------------
    # Per-user adaptation
    # ------------------------------------------------------------------
    def adapt_user(
        self,
        user_id: Hashable,
        dataset: Union[PoseDataset, ArrayDataset],
        epochs: Optional[int] = None,
    ) -> None:
        """Fine-tune one user's personal parameters on their shard."""
        self.shard_of(user_id).adapt_user(user_id, dataset, epochs=epochs)

    def adapt_users(
        self,
        datasets: Mapping[Hashable, Union[PoseDataset, ArrayDataset]],
        epochs: Optional[int] = None,
    ) -> None:
        """Adapt many users, grouped per shard so each shard's registry
        still runs one grouped task-batched call for its cohort."""
        by_shard: Dict[int, Dict[Hashable, Union[PoseDataset, ArrayDataset]]] = {}
        for user_id, dataset in datasets.items():
            by_shard.setdefault(self.shard_index(user_id), {})[user_id] = dataset
        for index, group in sorted(by_shard.items()):
            self.shards[index].adapt_users(group, epochs=epochs)

    def forget_user(self, user_id: Hashable) -> None:
        """Drop a user's session history and adapted parameters."""
        self.shard_of(user_id).forget_user(user_id)

    # ------------------------------------------------------------------
    # Live migration
    # ------------------------------------------------------------------
    def export_user(self, user_id: Hashable, forget: bool = False) -> Optional[Dict]:
        """Snapshot one user's state from their shard (see :class:`PoseServer`)."""
        return self.shard_of(user_id).export_user(user_id, forget=forget)

    def import_user(self, state: Mapping) -> Hashable:
        """Install an exported user state onto the user's shard."""
        user_id = state["user"] if isinstance(state, Mapping) else None
        if user_id is None:
            raise ValueError("user state requires a 'user' id")
        return self.shard_of(user_id).import_user(state)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def metrics_snapshot(self) -> Dict[str, float]:
        """One aggregated snapshot across shards, plus shard-level gauges."""
        report = ServeMetrics.aggregate([shard.metrics for shard in self.shards])
        report["queue_depth"] = self.pending
        report["shards"] = len(self.shards)
        report["sessions"] = sum(len(shard.sessions) for shard in self.shards)
        report["adapted_parameter_sets"] = sum(len(shard.registry) for shard in self.shards)
        cache = self.estimator.feature_cache
        if cache is not None:
            for key, value in cache.stats.as_dict().items():
                report[f"feature_cache_{key}"] = value
        return report

    def to_prometheus(self) -> str:
        """One valid text exposition with every shard labelled ``shard="i"``."""
        return prometheus_exposition(
            [
                ({"shard": str(index)}, shard.metrics, shard.pending)
                for index, shard in enumerate(self.shards)
            ]
        )


class ProcessPendingPrediction:
    """Parent-side handle to a prediction computed in a shard worker.

    Mirrors the :class:`repro.serve.PendingPrediction` surface (``done`` /
    ``dropped`` / ``result``) so the replay driver treats in-process and
    process-backed serving identically.  Resolution arrives through the
    shard's event ledger rather than a direct callback.
    """

    __slots__ = (
        "user_id",
        "sequence",
        "shard_index",
        "_value",
        "_dropped",
        "_drop_reason",
        "_flush",
    )

    def __init__(self, user_id: Hashable, sequence: int, shard_index: int, flush) -> None:
        self.user_id = user_id
        self.sequence = sequence
        self.shard_index = shard_index
        self._value: Optional[np.ndarray] = None
        self._dropped = False
        self._drop_reason: Optional[str] = None
        self._flush = flush

    @property
    def done(self) -> bool:
        return self._value is not None

    @property
    def dropped(self) -> bool:
        return self._dropped

    @property
    def drop_reason(self) -> Optional[str]:
        """Why the shard dropped this request (``None`` while not dropped)."""
        return self._drop_reason

    def _resolve(self, value: np.ndarray) -> None:
        self._value = value

    def _drop(self, reason: Optional[str] = None) -> None:
        self._dropped = True
        self._drop_reason = reason

    def result(self, flush: bool = True) -> np.ndarray:
        """The ``(joints, 3)`` prediction, forcing shard flushes if pending."""
        while self._value is None and not self._dropped and flush:
            if self._flush(self.shard_index) == 0:
                break
        if self._dropped:
            detail = self._drop_reason or "backpressure or shard restart"
            raise FrameDropped(
                f"request {self.sequence} of user {self.user_id!r} was dropped "
                f"({detail})"
            )
        if self._value is None:
            raise RuntimeError(
                f"request {self.sequence} of user {self.user_id!r} is still pending"
            )
        return self._value


class ProcessShardedPoseServer:
    """N :class:`PoseServer` shards, each in its own worker process.

    Same placement (:func:`repro.runtime.shard_for`), same per-shard
    scheduling config and the same replay guarantee as
    :class:`ShardedPoseServer` — a replay through N shard *processes* is
    bitwise identical to the same replay through the in-process sharded
    server, and therefore to a single server.  What changes is execution:
    every shard's micro-batch flush runs on its own core, so on a
    multi-core host shard parallelism becomes real throughput.

    Lifecycle
    ---------
    Workers start in the constructor and stop in :meth:`close` (the class is
    a context manager).  A worker that dies mid-call is restarted with the
    same factory when ``auto_restart`` is on; the crashed shard's
    outstanding predictions resolve as dropped, its session rings and
    adapted parameters are rebuilt from scratch (sessions re-warm on the
    next frames; call :meth:`adapt_users` again to restore personal
    parameters), and the in-flight call raises
    :class:`repro.serve.worker.ShardCrashed` so the caller sees the fault.

    With a spill directory configured on the adapter policy, a restarted
    worker re-attaches its shard's warm spill files, so previously adapted
    users keep their personal parameters across the crash (they come back
    warm and promote on their next request).

    Parameters
    ----------
    estimator / num_shards / config / adaptation / policy:
        As for :class:`ShardedPoseServer`.
    channel_depth:
        Bound of each shard's request queue (see
        :class:`repro.serve.worker.ShardProcess`).
    start_method:
        Multiprocessing start method override (default: ``fork`` where the
        platform has it, else ``spawn``).
    auto_restart:
        Restart a crashed shard worker automatically (default ``True``).
        Restarts are paced by ``restart_backoff`` and bounded by
        ``max_restarts`` — past the budget the shard stays down and is
        reported degraded (``shards_degraded`` gauge) instead of
        crash-looping.
    max_restarts / restart_backoff:
        Per-shard restart budget and capped-backoff pacing (see
        :class:`repro.serve.worker.ShardProcess`).  ``max_restarts=None``
        restores the old unbounded behaviour.
    """

    def __init__(
        self,
        estimator: FusePoseEstimator,
        num_shards: int = 2,
        config: Optional[ServeConfig] = None,
        adaptation: Optional[FineTuneConfig] = None,
        channel_depth: int = DEFAULT_CHANNEL_DEPTH,
        start_method: Optional[str] = None,
        auto_restart: bool = True,
        policy: Optional[AdapterPolicy] = None,
        max_restarts: Optional[int] = DEFAULT_MAX_RESTARTS,
        restart_backoff: Optional[RetryPolicy] = None,
        restart_sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.estimator = estimator
        self.config = config if config is not None else ServeConfig()
        resolved = _resolve_policy(
            self.config, adaptation, policy, "ProcessShardedPoseServer"
        )
        self.policy = resolved if resolved is not None else AdapterPolicy()
        self.auto_restart = auto_restart
        # Supervisor-side observability: restarts and the degraded gauge
        # happen in the parent (a dead worker cannot report its own death),
        # so they live on a parent ServeMetrics aggregated with the shards'.
        self.supervisor_metrics = ServeMetrics()
        factory = ShardFactory(estimator, self.config, policy=self.policy)
        self.workers: List[ShardProcess] = [
            ShardProcess(
                factory,
                index,
                channel_depth=channel_depth,
                start_method=start_method,
                max_restarts=max_restarts,
                restart_backoff=restart_backoff,
                sleep=restart_sleep,
            )
            for index in range(num_shards)
        ]
        self._outstanding: List[Dict[int, ProcessPendingPrediction]] = [
            {} for _ in range(num_shards)
        ]
        # Parent-side per-shard locks: the worker round-trip is serialized
        # inside ShardProcess, but the handle bookkeeping around it
        # (_outstanding registration + event application) must be atomic
        # with the round-trip too, or a concurrent caller's reply events
        # could resolve a sequence before its handle is registered.  The
        # asyncio front-end calls this class from multiple executor threads.
        self._shard_locks = [threading.Lock() for _ in range(num_shards)]
        #: thread-safe across shards: each shard's commands serialize on its
        #: own lock, so the front-end may dispatch shards in parallel.
        self.parallel_safe = True
        self._closed = False
        for worker in self.workers:
            worker.start()

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return len(self.workers)

    def shard_index(self, user_id: Hashable) -> int:
        """The shard a user's traffic and state live on (stable hash)."""
        return shard_for(user_id, len(self.workers))

    # ------------------------------------------------------------------
    # Worker plumbing
    # ------------------------------------------------------------------
    def _apply_events(self, shard_index: int, events: ShardEvents) -> None:
        outstanding = self._outstanding[shard_index]
        for sequence, value in events.resolved:
            handle = outstanding.pop(sequence, None)
            if handle is not None:
                handle._resolve(value)
        for sequence, reason in events.dropped:
            handle = outstanding.pop(sequence, None)
            if handle is not None:
                handle._drop(reason)

    def _call(self, shard_index: int, command, register=None):
        """One command round-trip, with crash recovery, atomically.

        The shard's parent-side lock covers the round-trip *and* the handle
        bookkeeping: ``register(reply)`` (when given) runs after the reply
        arrives but before its event ledger is applied — the window in
        which an enqueue's own resolution may already sit in the ledger.
        On a worker crash every outstanding handle of the shard resolves as
        dropped, the worker restarts (when ``auto_restart``), and the crash
        propagates to the caller.
        """
        if self._closed:
            raise RuntimeError("server is closed")
        worker = self.workers[shard_index]
        with self._shard_locks[shard_index]:
            try:
                reply = worker.call(command)
            except ShardCrashed:
                outstanding = self._outstanding[shard_index]
                for handle in outstanding.values():
                    handle._drop("shard worker crashed")
                outstanding.clear()
                # A shard past its restart budget stays down (degraded)
                # instead of crash-looping; callers keep getting
                # ShardDegraded and a router drains its users to replicas.
                if self.auto_restart and not worker.restart_budget_exhausted:
                    worker.restart()
                raise
            if register is not None:
                register(reply)
            self._apply_events(shard_index, reply.events)
        return reply

    def _flush_shard(self, shard_index: int) -> int:
        return self._call(shard_index, Flush()).produced

    # ------------------------------------------------------------------
    # Request path (PoseServer façade)
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Requests awaiting resolution across all shard processes."""
        return sum(len(outstanding) for outstanding in self._outstanding)

    def enqueue(
        self,
        user_id: Hashable,
        frame: PointCloudFrame,
        priority: Optional[str] = None,
        deadline_ms: Optional[float] = None,
    ) -> ProcessPendingPrediction:
        """Route one frame to the user's shard process (may flush there)."""
        index = self.shard_index(user_id)
        command = Enqueue(
            user_id=user_id,
            points=frame.points,
            timestamp=frame.timestamp,
            frame_index=frame.frame_index,
            priority=priority,
            deadline_ms=deadline_ms,
        )
        handle_box: List[ProcessPendingPrediction] = []

        def register(reply) -> None:
            # Register before the ledger is applied: the enqueue may have
            # completed a batch inside the worker, in which case this very
            # request's resolution already sits in the reply's events.
            handle = ProcessPendingPrediction(
                user_id, reply.sequence, index, flush=self._flush_shard
            )
            self._outstanding[index][reply.sequence] = handle
            handle_box.append(handle)

        self._call(index, command, register=register)
        return handle_box[0]

    def enqueue_many(
        self,
        items: Sequence[Tuple[Hashable, PointCloudFrame]],
        priority: Optional[str] = None,
    ) -> List[Union[ProcessPendingPrediction, Exception]]:
        """Enqueue many ``(user_id, frame)`` pairs with one IPC hop per shard.

        Items are grouped by shard with their relative order preserved, so
        per-user frame order — what streaming fusion depends on — is exactly
        the caller's order; each shard sees a single :class:`EnqueueBatch`
        command instead of N :class:`Enqueue` round-trips.  Returns one
        outcome per item, in the original order: the handle, or the
        exception its enqueue raised inside the worker (``QueueFull``
        under the ``reject`` policy).  A mid-batch failure never orphans
        the admitted prefix — those handles stay registered and resolve
        normally.
        """
        outcomes: List[Union[ProcessPendingPrediction, Exception, None]] = [None] * len(items)
        by_shard: Dict[int, List[int]] = {}
        for position, (user_id, _) in enumerate(items):
            by_shard.setdefault(self.shard_index(user_id), []).append(position)
        for index, positions in sorted(by_shard.items()):
            command = EnqueueBatch(
                user_ids=tuple(items[p][0] for p in positions),
                points=tuple(items[p][1].points for p in positions),
                timestamps=tuple(float(items[p][1].timestamp) for p in positions),
                frame_indices=tuple(int(items[p][1].frame_index) for p in positions),
                priority=priority,
            )

            def register(reply, index=index, positions=positions) -> None:
                # Same window as Enqueue's register: handles must exist
                # before the reply's event ledger is applied, because frames
                # that completed a batch inside the worker already sit
                # resolved in that ledger.
                for position, sequence, error in zip(
                    positions, reply.sequences, reply.errors
                ):
                    if sequence is None:
                        name, detail = error
                        outcomes[position] = (
                            QueueFull(detail) if name == "QueueFull" else RuntimeError(
                                f"{name}: {detail}"
                            )
                        )
                        continue
                    handle = ProcessPendingPrediction(
                        items[position][0], sequence, index, flush=self._flush_shard
                    )
                    self._outstanding[index][sequence] = handle
                    outcomes[position] = handle

            self._call(index, command, register=register)
        return outcomes

    def submit(
        self,
        user_id: Hashable,
        frame: PointCloudFrame,
        priority: Optional[str] = None,
        deadline_ms: Optional[float] = None,
    ) -> np.ndarray:
        """Synchronous prediction through the user's shard process."""
        return self.enqueue(
            user_id, frame, priority=priority, deadline_ms=deadline_ms
        ).result(flush=True)

    def poll(self, now: Optional[float] = None) -> int:
        """Apply every shard's latency deadline (on the worker's clock).

        ``now`` is accepted for façade compatibility but ignored: deadlines
        are evaluated against each worker process's own monotonic clock.
        """
        return sum(self._call(index, Poll()).produced for index in range(self.num_shards))

    def flush(self) -> int:
        """Flush every shard's pending micro-batch now."""
        return sum(self._flush_shard(index) for index in range(self.num_shards))

    # ------------------------------------------------------------------
    # Per-user adaptation
    # ------------------------------------------------------------------
    def adapt_user(
        self,
        user_id: Hashable,
        dataset: Union[PoseDataset, ArrayDataset],
        epochs: Optional[int] = None,
    ) -> None:
        """Fine-tune one user's personal parameters on their shard process."""
        self.adapt_users({user_id: dataset}, epochs=epochs)

    def adapt_users(
        self,
        datasets: Mapping[Hashable, Union[PoseDataset, ArrayDataset]],
        epochs: Optional[int] = None,
    ) -> None:
        """Adapt many users, grouped per shard (one grouped call per shard)."""
        by_shard: Dict[int, Dict[Hashable, Union[PoseDataset, ArrayDataset]]] = {}
        for user_id, dataset in datasets.items():
            by_shard.setdefault(self.shard_index(user_id), {})[user_id] = dataset
        for index, group in sorted(by_shard.items()):
            self._call(index, AdaptUsers(datasets=group, epochs=epochs))

    def forget_user(self, user_id: Hashable) -> None:
        """Drop a user's session history and adapted parameters."""
        self._call(self.shard_index(user_id), ForgetUser(user_id=user_id))

    # ------------------------------------------------------------------
    # Live migration
    # ------------------------------------------------------------------
    def export_user(self, user_id: Hashable, forget: bool = False) -> Optional[Dict]:
        """Snapshot one user's state from their shard process.

        The state dict is plain arrays/scalars, so it crosses the worker
        pickle boundary unchanged (see :mod:`repro.serve.migration`).
        """
        index = self.shard_index(user_id)
        return self._call(index, ExportUser(user_id=user_id, forget=forget)).state

    def import_user(self, state: Mapping) -> Hashable:
        """Install an exported user state onto the user's shard process."""
        if not isinstance(state, Mapping) or "user" not in state:
            raise ValueError("user state requires a 'user' id")
        user_id = state["user"]
        self._call(self.shard_index(user_id), ImportUser(state=dict(state)))
        return user_id

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def _shard_reports(self):
        """Fresh ``(metrics, reply)`` per shard, rebuilt from worker state.

        A degraded shard (dead, budget exhausted) contributes an empty
        metrics instance instead of failing the whole report — degraded
        service must stay observable, that is the point of the gauge.
        """
        reports = []
        for index in range(self.num_shards):
            if self.workers[index].degraded:
                reports.append((ServeMetrics(), None))
                continue
            reply = self._call(index, MetricsRequest())
            reports.append((ServeMetrics.from_state(reply.state), reply))
        return reports

    def _sync_supervisor_metrics(self) -> ServeMetrics:
        """Refresh the parent-side restart/degraded figures from the workers."""
        self.supervisor_metrics.restarts = self.restarts
        self.supervisor_metrics.set_shards_degraded(len(self.degraded_shards))
        return self.supervisor_metrics

    def metrics_snapshot(self) -> Dict[str, float]:
        """One aggregated snapshot across shard processes, plus gauges."""
        reports = self._shard_reports()
        supervisor = self._sync_supervisor_metrics()
        report = ServeMetrics.aggregate(
            [metrics for metrics, _ in reports] + [supervisor]
        )
        report["queue_depth"] = sum(
            reply.pending for _, reply in reports if reply is not None
        )
        report["shards"] = self.num_shards
        report["sessions"] = sum(
            reply.sessions for _, reply in reports if reply is not None
        )
        report["adapted_parameter_sets"] = sum(
            reply.adapted_parameter_sets for _, reply in reports if reply is not None
        )
        report["shard_restarts"] = self.restarts
        return report

    def to_prometheus(self) -> str:
        """One valid text exposition with every shard labelled ``shard="i"``.

        The parent's restart/degraded counters ride along under
        ``shard="supervisor"`` — they are facts about the fleet the workers
        themselves cannot report.
        """
        reports = self._shard_reports()
        supervisor = self._sync_supervisor_metrics()
        instances = [
            ({"shard": str(index)}, metrics, reply.pending if reply is not None else None)
            for index, (metrics, reply) in enumerate(reports)
        ]
        instances.append(({"shard": "supervisor"}, supervisor, None))
        return prometheus_exposition(instances)

    @property
    def restarts(self) -> int:
        """Total shard-worker restarts since construction."""
        return sum(worker.restarts for worker in self.workers)

    @property
    def degraded_shards(self) -> List[int]:
        """Indices of shards that are down with their restart budget spent."""
        return [worker.index for worker in self.workers if worker.degraded]

    @property
    def degraded(self) -> bool:
        """Is any shard out of service (dead, restart budget exhausted)?

        Surfaced through the front-end's ``ping`` reply so a router's
        health probe can mark the whole backend down and drain its users
        to replicas — a partially dead backend serves some users and hangs
        others, which is worse than a cleanly dead one.
        """
        return any(worker.degraded for worker in self.workers)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self, timeout: float = 5.0) -> None:
        """Gracefully stop every shard worker (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for index, worker in enumerate(self.workers):
            final = worker.stop(timeout=timeout)
            if final is not None:
                self._apply_events(index, final.events)
            for handle in self._outstanding[index].values():
                handle._drop("server shutdown")
            self._outstanding[index].clear()

    def __enter__(self) -> "ProcessShardedPoseServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __del__(self) -> None:  # best effort: don't leak worker processes
        try:
            self.close(timeout=0.5)
        except Exception:
            pass

"""Multi-shard serving: hash users onto N independent :class:`PoseServer`\\ s.

One :class:`PoseServer` is single-threaded by design; scaling past one core
(or one process, with a process-per-shard deployment in front) means running
several of them side by side.  :class:`ShardedPoseServer` owns that layout:

* every user hashes onto a fixed shard (:func:`repro.runtime.shard_for`,
  stable across processes), so the user's session ring, adapted parameters
  and micro-batch co-riders all live on one shard — no cross-shard state;
* each shard has its own :class:`MicroBatcher`, :class:`SessionManager` and
  :class:`AdapterRegistry`, sharing only the read-only estimator (weights
  and feature builder);
* metrics aggregate across shards (:meth:`ServeMetrics.aggregate`), and the
  Prometheus exposition labels each shard's samples with ``shard="<i>"``.

Because every serving route is batch-composition invariant, splitting users
over shards never changes a prediction: a replay through N shards is bitwise
identical to the same replay through one server with the same scheduling
config — ``tests/serve/test_sharded_server.py`` pins this user for user.

The façade mirrors the :class:`PoseServer` surface (``enqueue`` / ``submit``
/ ``poll`` / ``flush`` / ``adapt_users`` / ``metrics_snapshot``), so the
replay driver and the examples run unchanged against either.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Hashable, List, Mapping, Optional, Union

import numpy as np

from ..core.finetune import FineTuneConfig
from ..core.pipeline import FusePoseEstimator
from ..dataset.loader import ArrayDataset
from ..dataset.sample import PoseDataset
from ..radar.pointcloud import PointCloudFrame
from ..runtime import shard_for
from .batcher import PendingPrediction
from .config import ServeConfig
from .metrics import ServeMetrics, prometheus_exposition
from .server import PoseServer

__all__ = ["ShardedPoseServer"]


class ShardedPoseServer:
    """N :class:`PoseServer` shards behind one server-shaped façade.

    Parameters
    ----------
    estimator:
        The shared (read-only) estimator; every shard serves the same base
        weights and feature builder.
    num_shards:
        Number of independent shards.  Users are assigned by a stable hash
        of their id, so the mapping survives restarts and is identical in
        every process of a multi-process deployment.
    config / adaptation / clock:
        Forwarded to every shard (see :class:`PoseServer`).  Using one
        scheduling config everywhere keeps the shared-parameter kernel's
        GEMM block width identical across shards, which is what makes the
        sharded replay bitwise equal to a single-server replay.
    """

    def __init__(
        self,
        estimator: FusePoseEstimator,
        num_shards: int = 2,
        config: Optional[ServeConfig] = None,
        adaptation: Optional[FineTuneConfig] = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.estimator = estimator
        self.config = config if config is not None else ServeConfig()
        self.shards: List[PoseServer] = [
            PoseServer(estimator, self.config, adaptation=adaptation, clock=clock)
            for _ in range(num_shards)
        ]

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def shard_index(self, user_id: Hashable) -> int:
        """The shard a user's traffic and state live on (stable hash)."""
        return shard_for(user_id, len(self.shards))

    def shard_of(self, user_id: Hashable) -> PoseServer:
        return self.shards[self.shard_index(user_id)]

    # ------------------------------------------------------------------
    # Request path (PoseServer façade)
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Requests waiting for the next micro-batch, across all shards."""
        return sum(shard.pending for shard in self.shards)

    def enqueue(self, user_id: Hashable, frame: PointCloudFrame) -> PendingPrediction:
        """Route one frame to the user's shard (may flush that shard)."""
        return self.shard_of(user_id).enqueue(user_id, frame)

    def submit(self, user_id: Hashable, frame: PointCloudFrame) -> np.ndarray:
        """Synchronous prediction through the user's shard."""
        return self.shard_of(user_id).submit(user_id, frame)

    def poll(self, now: Optional[float] = None) -> int:
        """Apply every shard's latency deadline; returns predictions produced."""
        return sum(shard.poll(now) for shard in self.shards)

    def flush(self) -> int:
        """Flush every shard's pending micro-batch now."""
        return sum(shard.flush() for shard in self.shards)

    # ------------------------------------------------------------------
    # Per-user adaptation
    # ------------------------------------------------------------------
    def adapt_user(
        self,
        user_id: Hashable,
        dataset: Union[PoseDataset, ArrayDataset],
        epochs: Optional[int] = None,
    ) -> None:
        """Fine-tune one user's personal parameters on their shard."""
        self.shard_of(user_id).adapt_user(user_id, dataset, epochs=epochs)

    def adapt_users(
        self,
        datasets: Mapping[Hashable, Union[PoseDataset, ArrayDataset]],
        epochs: Optional[int] = None,
    ) -> None:
        """Adapt many users, grouped per shard so each shard's registry
        still runs one grouped task-batched call for its cohort."""
        by_shard: Dict[int, Dict[Hashable, Union[PoseDataset, ArrayDataset]]] = {}
        for user_id, dataset in datasets.items():
            by_shard.setdefault(self.shard_index(user_id), {})[user_id] = dataset
        for index, group in sorted(by_shard.items()):
            self.shards[index].adapt_users(group, epochs=epochs)

    def forget_user(self, user_id: Hashable) -> None:
        """Drop a user's session history and adapted parameters."""
        self.shard_of(user_id).forget_user(user_id)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def metrics_snapshot(self) -> Dict[str, float]:
        """One aggregated snapshot across shards, plus shard-level gauges."""
        report = ServeMetrics.aggregate([shard.metrics for shard in self.shards])
        report["queue_depth"] = self.pending
        report["shards"] = len(self.shards)
        report["sessions"] = sum(len(shard.sessions) for shard in self.shards)
        report["adapted_parameter_sets"] = sum(len(shard.registry) for shard in self.shards)
        cache = self.estimator.feature_cache
        if cache is not None:
            for key, value in cache.stats.as_dict().items():
                report[f"feature_cache_{key}"] = value
        return report

    def to_prometheus(self) -> str:
        """One valid text exposition with every shard labelled ``shard="i"``."""
        return prometheus_exposition(
            [
                ({"shard": str(index)}, shard.metrics, shard.pending)
                for index, shard in enumerate(self.shards)
            ]
        )

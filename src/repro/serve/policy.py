"""The unified per-user adaptation policy of the serving subsystem.

Historically the adapter surface was a string ``scope`` on
:class:`repro.core.finetune.FineTuneConfig` plus scattered constructor
kwargs (``adaptation=...``, ``gemm_block=...``) threaded hand to hand
through :class:`AdapterRegistry`, the servers and the CLI.
:class:`AdapterPolicy` replaces that with one frozen configuration object
describing *everything* about per-user adaptation:

* **what is personalised** — ``scope``: ``"all"`` (full per-user parameter
  tensors), ``"last"`` (shared trunk + personal final layer), or ``"lora"``
  (full-network personalization through rank-``rank`` low-rank deltas on
  every layer: ``O(rank * (fan_in + fan_out))`` resident memory per user
  instead of ``O(fan_in * fan_out)``);
* **how adaptation trains** — ``epochs`` / ``learning_rate`` /
  ``batch_size`` / ``loss`` / ``shuffle`` / ``seed``, mirroring the
  fine-tuning hyper-parameters the registry always used (plain SGD, the
  rule the FUSE initialization was optimized for);
* **where adapter state lives** — the hot/warm/cold lifecycle:
  ``hot_capacity`` bounds the users resident in the in-memory gather stack,
  ``spill_dir`` enables the warm tier (per-user ``.npz`` spill files,
  written through on adaptation so they double as crash persistence), and
  ``warm_capacity`` bounds the spill files before the coldest users are
  dropped entirely (cold: re-onboard on demand).

One policy object travels through :class:`repro.serve.ServeConfig`, every
server constructor, the :class:`repro.serve.worker.ShardFactory` pickle
boundary, the wire protocol's ``hello`` handshake and the ``fuse-serve``
CLI.  The legacy ``adaptation=FineTuneConfig(...)`` kwargs keep working
through :meth:`AdapterPolicy.from_finetune` (with a
``DeprecationWarning``), bitwise-equivalent to the old path.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from pathlib import Path
from typing import Optional

from ..core.finetune import FineTuneConfig

__all__ = ["AdapterPolicy"]

#: adaptation scopes the serving subsystem understands
ADAPTER_SCOPES = ("all", "last", "lora")


@dataclass(frozen=True)
class AdapterPolicy:
    """Everything about per-user adaptation, in one frozen object.

    Attributes
    ----------
    scope:
        ``"all"`` | ``"last"`` | ``"lora"`` — which parameters each user
        personalises (see the module docstring).
    rank:
        Rank of the per-layer low-rank deltas under ``scope="lora"``
        (ignored by the other scopes).
    epochs:
        Passes over the calibration frames per adaptation (the paper's
        ~5-epoch online regime by default).
    learning_rate / batch_size / loss / shuffle / seed:
        Optimization settings of the grouped SGD adaptation, identical in
        meaning to :class:`repro.core.finetune.FineTuneConfig`.
    hot_capacity:
        Bound on users resident in the in-memory (hot) tier; the least
        recently served user beyond it is demoted.  ``None`` = unbounded.
    warm_capacity:
        Bound on users in the warm tier (spill files on disk); beyond it
        the least recently demoted user's file is deleted (cold).
        ``None`` = unbounded.
    spill_dir:
        Directory of the warm tier's per-user ``.npz`` files.  ``None``
        disables the warm tier: demoted users drop straight to cold, and
        adapter state does not survive a process restart.
    """

    scope: str = "all"
    rank: int = 4
    epochs: int = 5
    learning_rate: float = 1e-2
    batch_size: int = 32
    loss: str = "l1"
    shuffle: bool = True
    seed: int = 0
    hot_capacity: Optional[int] = None
    warm_capacity: Optional[int] = None
    spill_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.scope not in ADAPTER_SCOPES:
            raise ValueError(
                f"unknown adaptation scope '{self.scope}' "
                f"(expected one of {', '.join(ADAPTER_SCOPES)})"
            )
        if self.rank < 1:
            raise ValueError("rank must be >= 1")
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.loss not in ("l1", "l2", "mse", "huber"):
            raise ValueError(f"unknown loss '{self.loss}'")
        if self.hot_capacity is not None and self.hot_capacity < 1:
            raise ValueError("hot_capacity must be >= 1")
        if self.warm_capacity is not None and self.warm_capacity < 1:
            raise ValueError("warm_capacity must be >= 1")
        if self.spill_dir is not None and not isinstance(self.spill_dir, str):
            # Frozen dataclass: normalise Path and friends through the
            # object.__setattr__ escape hatch the dataclass itself uses.
            object.__setattr__(self, "spill_dir", str(self.spill_dir))

    # ------------------------------------------------------------------
    # Legacy interop
    # ------------------------------------------------------------------
    @classmethod
    def from_finetune(cls, config: FineTuneConfig, **overrides) -> "AdapterPolicy":
        """Translate a legacy :class:`FineTuneConfig` into a policy.

        The translation is exact — every adaptation hyper-parameter carries
        over verbatim, so an old ``adaptation=FineTuneConfig(...)`` call
        site behaves bitwise identically under the policy API.  Grouped
        adaptation requires plain SGD, as it always has.
        """
        if config.optimizer != "sgd":
            raise ValueError("grouped adaptation only supports the sgd optimizer")
        return cls(
            scope=config.scope,
            epochs=config.epochs,
            learning_rate=config.learning_rate,
            batch_size=config.batch_size,
            loss=config.loss,
            shuffle=config.shuffle,
            seed=config.seed,
            **overrides,
        )

    def finetune_config(self) -> FineTuneConfig:
        """The equivalent :class:`FineTuneConfig` (scopes ``all``/``last``).

        ``scope="lora"`` has no fine-tune-config equivalent — the low-rank
        trajectory trains factors, not parameter tensors.
        """
        if self.scope == "lora":
            raise ValueError("scope='lora' has no FineTuneConfig equivalent")
        return FineTuneConfig(
            epochs=self.epochs,
            scope=self.scope,
            optimizer="sgd",
            learning_rate=self.learning_rate,
            batch_size=self.batch_size,
            loss=self.loss,
            shuffle=self.shuffle,
            seed=self.seed,
        )

    # ------------------------------------------------------------------
    # Derived forms
    # ------------------------------------------------------------------
    def with_spill_subdir(self, name: str) -> "AdapterPolicy":
        """The same policy with ``spill_dir`` pushed one directory down.

        Sharded deployments give every shard its own subdirectory so two
        shards never race on one user file; a policy without a spill
        directory is returned unchanged.
        """
        if self.spill_dir is None:
            return self
        return replace(self, spill_dir=str(Path(self.spill_dir) / name))

    def spill_path(self) -> Optional[Path]:
        return None if self.spill_dir is None else Path(self.spill_dir)

    # ------------------------------------------------------------------
    # Wire transport (the serve-config handshake)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """A JSON-serializable description for the wire handshake."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, payload: dict) -> "AdapterPolicy":
        """Rebuild a policy from :meth:`to_dict` output (unknown keys ignored)."""
        known = {f.name for f in fields(cls)}
        return cls(**{key: value for key, value in payload.items() if key in known})

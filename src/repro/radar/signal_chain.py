"""FMCW signal synthesis and range/Doppler processing.

This module implements the middle of the radar pipeline described in
Section 3.1.1 of the paper: the radar transmits linear chirps, mixes the
received echoes down to beat signals, and applies a range FFT (fast time),
a Doppler FFT (slow time across chirps) and — later, in :mod:`repro.radar.doa`
— angle estimation across the virtual antenna array.

The simulator synthesizes the complex radar data cube directly from point
targets using the standard FMCW beat-signal model::

    s(n, m, k, l) = sum_t A_t * exp(j 2 pi f_b,t n T_s)
                        * exp(j 4 pi v_t m T_c / lambda)
                        * exp(j pi k sin(az_t) cos(el_t))
                        * exp(j pi l sin(el_t))

with ``n`` the fast-time sample, ``m`` the chirp index, ``k``/``l`` the
azimuth/elevation virtual antenna indices, and amplitude ``A_t`` derived from
the target's radar cross-section and range (radar equation, R^-2 one-way
amplitude roll-off on each leg).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .config import SPEED_OF_LIGHT, RadarConfig
from .scene import Scene, SceneBatch

__all__ = [
    "RadarDataCube",
    "RangeDopplerMap",
    "synthesize_data_cube",
    "synthesize_data_cube_batch",
    "range_doppler_processing",
    "range_doppler_processing_batch",
]


@dataclass
class RadarDataCube:
    """Raw complex beat-signal samples for one frame.

    Attributes
    ----------
    samples:
        Complex array of shape
        ``(num_samples, num_chirps, num_azimuth_antennas, num_elevation_antennas)``.
    config:
        The radar configuration that produced the cube.
    """

    samples: np.ndarray
    config: RadarConfig

    def __post_init__(self) -> None:
        expected = (
            self.config.num_samples,
            self.config.num_chirps,
            self.config.num_azimuth_antennas,
            self.config.num_elevation_antennas,
        )
        if self.samples.shape != expected:
            raise ValueError(
                f"data cube has shape {self.samples.shape}, expected {expected}"
            )


@dataclass
class RangeDopplerMap:
    """Range-Doppler spectrum with per-antenna phase information retained.

    Attributes
    ----------
    spectrum:
        Complex array of shape ``(num_range_bins, num_doppler_bins, n_az, n_el)``
        after range FFT, Doppler FFT and Doppler fftshift.
    power:
        Real array of shape ``(num_range_bins, num_doppler_bins)`` obtained by
        non-coherently summing power across antennas; the CFAR detector
        operates on this map.
    config:
        Radar configuration (needed to map bins back to metres and m/s).
    """

    spectrum: np.ndarray
    power: np.ndarray
    config: RadarConfig

    @property
    def num_range_bins(self) -> int:
        return self.power.shape[0]

    @property
    def num_doppler_bins(self) -> int:
        return self.power.shape[1]

    def range_of_bin(self, range_bin: int) -> float:
        """Convert a range-bin index into metres."""
        return float(range_bin * self.config.range_resolution)

    def velocity_of_bin(self, doppler_bin: int) -> float:
        """Convert a (fftshifted) Doppler-bin index into m/s."""
        centre = self.num_doppler_bins // 2
        return float((doppler_bin - centre) * self.config.velocity_resolution)


def synthesize_data_cube(
    scene: Scene,
    config: RadarConfig,
    rng: np.random.Generator | None = None,
    add_noise: bool = True,
) -> RadarDataCube:
    """Generate the complex beat-signal cube for a scene of point targets."""
    rng = rng if rng is not None else np.random.default_rng()
    shape = (
        config.num_samples,
        config.num_chirps,
        config.num_azimuth_antennas,
        config.num_elevation_antennas,
    )
    cube = np.zeros(shape, dtype=np.complex128)

    if len(scene) > 0:
        ranges, velocities, azimuths, elevations = scene.spherical()
        rcs = scene.rcs()

        # Keep only physically meaningful targets.
        valid = (ranges > 0.1) & (ranges < config.max_range)
        ranges, velocities = ranges[valid], velocities[valid]
        azimuths, elevations, rcs = azimuths[valid], elevations[valid], rcs[valid]

        if ranges.size:
            sample_times = np.arange(config.num_samples) / config.sample_rate
            chirp_indices = np.arange(config.num_chirps)
            az_indices = np.arange(config.num_azimuth_antennas)
            el_indices = np.arange(config.num_elevation_antennas)

            beat_frequencies = 2.0 * config.chirp_slope * ranges / SPEED_OF_LIGHT
            doppler_phase_per_chirp = (
                4.0 * np.pi * velocities * config.chirp_repetition / config.wavelength
            )
            azimuth_phase = np.pi * np.sin(azimuths) * np.cos(elevations)
            elevation_phase = np.pi * np.sin(elevations)
            # Radar-equation amplitude: sqrt(RCS) with R^2 spreading loss,
            # normalized to the subject standoff scale so intensities stay O(1).
            amplitudes = np.sqrt(rcs) / np.maximum(ranges, 0.5) ** 2

            fast = np.exp(1j * 2.0 * np.pi * np.outer(beat_frequencies, sample_times))
            slow = np.exp(1j * np.outer(doppler_phase_per_chirp, chirp_indices))
            az = np.exp(1j * np.outer(azimuth_phase, az_indices))
            el = np.exp(1j * np.outer(elevation_phase, el_indices))

            cube = np.einsum(
                "t,tn,tm,tk,tl->nmkl", amplitudes, fast, slow, az, el, optimize=True
            )

    if add_noise:
        noise_sigma = np.sqrt(config.noise_power / 2.0)
        cube = cube + noise_sigma * (
            rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
        )
    return RadarDataCube(samples=cube, config=config)


def synthesize_data_cube_batch(
    batch: SceneBatch,
    config: RadarConfig,
    rng: np.random.Generator | None = None,
    add_noise: bool = True,
    apply_fov: bool = True,
) -> np.ndarray:
    """Generate beat-signal cubes for a whole batch of scenes in one pass.

    The per-target exponential factors are built as ``(B, S, axis)`` arrays
    and contracted with a single ``einsum`` call; invalid / out-of-view
    targets contribute through a zeroed amplitude, so every frame in the
    batch shares the same array shapes.

    Returns a complex array of shape
    ``(B, num_samples, num_chirps, n_azimuth, n_elevation)``.
    """
    rng = rng if rng is not None else np.random.default_rng()
    num_frames = len(batch)
    shape = (
        num_frames,
        config.num_samples,
        config.num_chirps,
        config.num_azimuth_antennas,
        config.num_elevation_antennas,
    )

    mask = batch.fov_mask(config) if apply_fov else batch.valid
    ranges, velocities, azimuths, elevations = batch.spherical()
    mask = mask & (ranges > 0.1) & (ranges < config.max_range)

    if np.any(mask):
        sample_times = np.arange(config.num_samples) / config.sample_rate
        chirp_indices = np.arange(config.num_chirps)
        az_indices = np.arange(config.num_azimuth_antennas)
        el_indices = np.arange(config.num_elevation_antennas)

        beat_frequencies = 2.0 * config.chirp_slope * ranges / SPEED_OF_LIGHT
        doppler_phase_per_chirp = (
            4.0 * np.pi * velocities * config.chirp_repetition / config.wavelength
        )
        azimuth_phase = np.pi * np.sin(azimuths) * np.cos(elevations)
        elevation_phase = np.pi * np.sin(elevations)
        amplitudes = np.where(
            mask, np.sqrt(batch.rcs) / np.maximum(ranges, 0.5) ** 2, 0.0
        )

        fast = np.exp(
            1j * 2.0 * np.pi * beat_frequencies[..., None] * sample_times
        )  # (B, S, n)
        slow = np.exp(1j * doppler_phase_per_chirp[..., None] * chirp_indices)
        az = np.exp(1j * azimuth_phase[..., None] * az_indices)
        el = np.exp(1j * elevation_phase[..., None] * el_indices)

        cubes = np.einsum(
            "bt,btn,btm,btk,btl->bnmkl", amplitudes, fast, slow, az, el, optimize=True
        )
    else:
        cubes = np.zeros(shape, dtype=np.complex128)

    if add_noise:
        noise_sigma = np.sqrt(config.noise_power / 2.0)
        cubes = cubes + noise_sigma * (
            rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
        )
    return cubes


def _rd_windows(config: RadarConfig) -> tuple[np.ndarray, np.ndarray]:
    """Range and Doppler Hann windows shaped for frame-axis broadcasting."""
    range_window = np.hanning(config.num_samples)[:, None, None, None]
    doppler_window = np.hanning(config.num_chirps)[None, :, None, None]
    return range_window, doppler_window


def range_doppler_processing(cube: RadarDataCube) -> RangeDopplerMap:
    """Apply windowed range and Doppler FFTs and build the detection map."""
    config = cube.config
    samples = cube.samples

    range_window, doppler_window = _rd_windows(config)
    range_fft = np.fft.fft(samples * range_window, axis=0)
    doppler_fft = np.fft.fft(range_fft * doppler_window, axis=1)
    spectrum = np.fft.fftshift(doppler_fft, axes=1)

    power = np.sum(np.abs(spectrum) ** 2, axis=(2, 3))
    return RangeDopplerMap(spectrum=spectrum, power=power, config=config)


def range_doppler_processing_batch(
    cubes: np.ndarray, config: RadarConfig
) -> tuple[np.ndarray, np.ndarray]:
    """Batched range/Doppler processing over ``(B, n, m, k, l)`` cubes.

    Returns ``(spectrum, power)`` with shapes ``(B, R, D, k, l)`` and
    ``(B, R, D)``; each batch entry equals the per-frame
    :func:`range_doppler_processing` output for the same cube.
    """
    if cubes.ndim != 5:
        raise ValueError(f"expected a (B, n, m, k, l) cube batch, got {cubes.shape}")
    range_window, doppler_window = _rd_windows(config)
    range_fft = np.fft.fft(cubes * range_window[None], axis=1)
    doppler_fft = np.fft.fft(range_fft * doppler_window[None], axis=2)
    spectrum = np.fft.fftshift(doppler_fft, axes=2)
    power = np.sum(np.abs(spectrum) ** 2, axis=(3, 4))
    return spectrum, power

"""End-to-end radar processing pipelines.

Two interchangeable backends turn a posed human body into an Eq. 1 point
cloud frame:

* :class:`SignalChainPipeline` — the full FMCW simulation (beat-signal
  synthesis, range FFT, Doppler FFT, CA-CFAR, angle estimation).  Faithful
  but relatively slow; used by the radar tests, the signal-chain example and
  the backend-comparison ablation.
* :class:`GeometricPipeline` — the statistical model of the same chain
  (:mod:`repro.radar.geometric`).  Used to generate the large synthetic
  dataset at MARS scale.

Both accept world-frame scatterers from :class:`repro.body.BodyScatteringModel`
and emit world-frame point clouds, so the rest of the stack does not care
which backend produced a frame.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Protocol, Sequence

import numpy as np

from ..body.surface import Scatterer
from .cfar import CfarConfig, detect_peaks, detect_peaks_batch
from .config import RadarConfig
from .doa import detections_to_points, detections_to_points_batch
from .geometric import GeometricBackendConfig, GeometricPointCloudGenerator
from .pointcloud import PointCloudBatch, PointCloudFrame
from .scene import Scene, SceneBatch, targets_from_scatterers
from .signal_chain import (
    range_doppler_processing,
    range_doppler_processing_batch,
    synthesize_data_cube,
    synthesize_data_cube_batch,
)

__all__ = ["RadarPipeline", "SignalChainPipeline", "GeometricPipeline", "make_pipeline"]


class RadarPipeline(Protocol):
    """Protocol implemented by both radar backends."""

    config: RadarConfig

    def process_scatterers(
        self,
        scatterers: Sequence[Scatterer],
        rng: np.random.Generator,
        timestamp: float = 0.0,
        frame_index: int = 0,
    ) -> PointCloudFrame:
        """Convert world-frame scatterers into a world-frame point cloud."""
        ...  # pragma: no cover - protocol definition

    def process_batch(
        self,
        batch: SceneBatch,
        rng: np.random.Generator,
        timestamps: Optional[np.ndarray] = None,
        frame_indices: Optional[np.ndarray] = None,
    ) -> PointCloudBatch:
        """Convert a batch of radar scenes into world-frame point clouds."""
        ...  # pragma: no cover - protocol definition


@dataclass
class SignalChainPipeline:
    """Full FMCW signal-chain backend."""

    config: RadarConfig = field(default_factory=RadarConfig)
    cfar_config: CfarConfig = field(default_factory=CfarConfig)
    add_noise: bool = True
    peak_grouping: bool = False

    def process_scene(
        self,
        scene: Scene,
        rng: np.random.Generator,
        timestamp: float = 0.0,
        frame_index: int = 0,
    ) -> PointCloudFrame:
        """Run the signal chain for an already-built radar scene."""
        scene = scene.within_field_of_view(self.config)
        cube = synthesize_data_cube(scene, self.config, rng=rng, add_noise=self.add_noise)
        rd_map = range_doppler_processing(cube)
        detections = detect_peaks(
            rd_map.power, self.cfar_config, peak_grouping=self.peak_grouping
        )
        points = detections_to_points(rd_map, detections, self.config)
        if points.shape[0] > 0:
            # Radar frame -> world frame: add the mounting height.
            points = points.copy()
            points[:, 2] += self.config.radar_height
        return PointCloudFrame(points, timestamp=timestamp, frame_index=frame_index)

    def process_scatterers(
        self,
        scatterers: Sequence[Scatterer],
        rng: np.random.Generator,
        timestamp: float = 0.0,
        frame_index: int = 0,
    ) -> PointCloudFrame:
        scene = targets_from_scatterers(scatterers, self.config)
        return self.process_scene(scene, rng, timestamp=timestamp, frame_index=frame_index)

    def process_batch(
        self,
        batch: SceneBatch,
        rng: np.random.Generator,
        timestamps: Optional[np.ndarray] = None,
        frame_indices: Optional[np.ndarray] = None,
    ) -> PointCloudBatch:
        """Run the full signal chain for a batch of scenes in one pass.

        Cube synthesis, the range/Doppler FFTs and the CFAR threshold are
        computed on ``(batch, ...)`` arrays; angle estimation batches every
        detection of every frame through one FFT call.
        """
        num_frames = len(batch)
        if timestamps is None:
            timestamps = np.zeros(num_frames)
        if frame_indices is None:
            frame_indices = np.arange(num_frames)
        cubes = synthesize_data_cube_batch(
            batch, self.config, rng=rng, add_noise=self.add_noise
        )
        spectra, power = range_doppler_processing_batch(cubes, self.config)
        detections = detect_peaks_batch(
            power, self.cfar_config, peak_grouping=self.peak_grouping
        )
        per_frame = detections_to_points_batch(spectra, detections, self.config)
        for points in per_frame:
            if points.shape[0] > 0:
                # Radar frame -> world frame: add the mounting height.
                points[:, 2] += self.config.radar_height
        return PointCloudBatch.from_ragged(
            per_frame, timestamps=timestamps, frame_indices=frame_indices
        )


@dataclass
class GeometricPipeline:
    """Fast statistical backend."""

    config: RadarConfig = field(default_factory=RadarConfig)
    backend_config: GeometricBackendConfig = field(default_factory=GeometricBackendConfig)

    def __post_init__(self) -> None:
        self._generator = GeometricPointCloudGenerator(
            radar_config=self.config, backend_config=self.backend_config
        )

    def process_scene(
        self,
        scene: Scene,
        rng: np.random.Generator,
        timestamp: float = 0.0,
        frame_index: int = 0,
    ) -> PointCloudFrame:
        """Generate a frame for an already-built radar scene."""
        return self._generator.generate_frame(
            scene, rng, timestamp=timestamp, frame_index=frame_index
        )

    def process_scatterers(
        self,
        scatterers: Sequence[Scatterer],
        rng: np.random.Generator,
        timestamp: float = 0.0,
        frame_index: int = 0,
    ) -> PointCloudFrame:
        scene = targets_from_scatterers(scatterers, self.config)
        return self.process_scene(scene, rng, timestamp=timestamp, frame_index=frame_index)

    def process_batch(
        self,
        batch: SceneBatch,
        rng: np.random.Generator,
        timestamps: Optional[np.ndarray] = None,
        frame_indices: Optional[np.ndarray] = None,
    ) -> PointCloudBatch:
        """Generate point clouds for a batch of scenes in one vectorized pass."""
        return self._generator.generate_batch(
            batch, rng, timestamps=timestamps, frame_indices=frame_indices
        )


def make_pipeline(
    backend: str = "geometric",
    config: Optional[RadarConfig] = None,
    **kwargs,
) -> RadarPipeline:
    """Factory for radar pipelines.

    Parameters
    ----------
    backend:
        ``"geometric"`` (fast statistical model) or ``"signal"`` (full FMCW
        simulation).
    config:
        Radar configuration; defaults to the IWR1443-like configuration.
    kwargs:
        Forwarded to the backend constructor (e.g. ``cfar_config``,
        ``backend_config``).
    """
    config = config if config is not None else RadarConfig()
    if backend == "geometric":
        return GeometricPipeline(config=config, **kwargs)
    if backend == "signal":
        return SignalChainPipeline(config=config, **kwargs)
    raise ValueError(f"unknown radar backend '{backend}' (expected 'geometric' or 'signal')")

"""``repro.radar`` — mmWave FMCW radar substrate.

Simulates a TI IWR1443-class radar end to end: chirp/waveform configuration,
beat-signal synthesis from point targets, range and Doppler FFTs, CA-CFAR
detection, angle-of-arrival estimation and point-cloud construction in the
paper's Eq. 1 format.  A fast geometric backend reproduces the same output
statistics for large-scale dataset generation.
"""

from .cfar import CfarConfig, ca_cfar_2d, detect_peaks, group_peaks
from .config import SPEED_OF_LIGHT, RadarConfig
from .doa import AngleEstimate, detections_to_points, estimate_angles
from .geometric import GeometricBackendConfig, GeometricPointCloudGenerator
from .pipeline import GeometricPipeline, RadarPipeline, SignalChainPipeline, make_pipeline
from .pointcloud import POINT_FIELDS, PointCloudFrame, PointCloudSequence, merge_frames
from .scene import RadarTarget, Scene, radar_to_world, targets_from_scatterers, world_to_radar
from .signal_chain import (
    RadarDataCube,
    RangeDopplerMap,
    range_doppler_processing,
    synthesize_data_cube,
)

__all__ = [
    "RadarConfig",
    "SPEED_OF_LIGHT",
    "PointCloudFrame",
    "PointCloudSequence",
    "POINT_FIELDS",
    "merge_frames",
    "RadarTarget",
    "Scene",
    "targets_from_scatterers",
    "world_to_radar",
    "radar_to_world",
    "RadarDataCube",
    "RangeDopplerMap",
    "synthesize_data_cube",
    "range_doppler_processing",
    "CfarConfig",
    "ca_cfar_2d",
    "group_peaks",
    "detect_peaks",
    "AngleEstimate",
    "estimate_angles",
    "detections_to_points",
    "GeometricBackendConfig",
    "GeometricPointCloudGenerator",
    "RadarPipeline",
    "SignalChainPipeline",
    "GeometricPipeline",
    "make_pipeline",
]

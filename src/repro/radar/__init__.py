"""``repro.radar`` — mmWave FMCW radar substrate.

Simulates a TI IWR1443-class radar end to end: chirp/waveform configuration,
beat-signal synthesis from point targets, range and Doppler FFTs, CA-CFAR
detection, angle-of-arrival estimation and point-cloud construction in the
paper's Eq. 1 format.  A fast geometric backend reproduces the same output
statistics for large-scale dataset generation.
"""

from .cfar import (
    CfarConfig,
    ca_cfar_2d,
    ca_cfar_2d_batch,
    detect_peaks,
    detect_peaks_batch,
    group_peaks,
)
from .config import SPEED_OF_LIGHT, RadarConfig
from .doa import (
    AngleEstimate,
    detections_to_points,
    detections_to_points_batch,
    estimate_angles,
    estimate_angles_batch,
)
from .geometric import GeometricBackendConfig, GeometricPointCloudGenerator
from .pipeline import GeometricPipeline, RadarPipeline, SignalChainPipeline, make_pipeline
from .pointcloud import (
    POINT_FIELDS,
    PointCloudBatch,
    PointCloudFrame,
    PointCloudSequence,
    merge_frames,
)
from .scene import (
    RadarTarget,
    Scene,
    SceneBatch,
    radar_to_world,
    scene_batch_from_world,
    targets_from_scatterers,
    world_to_radar,
)
from .signal_chain import (
    RadarDataCube,
    RangeDopplerMap,
    range_doppler_processing,
    range_doppler_processing_batch,
    synthesize_data_cube,
    synthesize_data_cube_batch,
)

__all__ = [
    "RadarConfig",
    "SPEED_OF_LIGHT",
    "PointCloudFrame",
    "PointCloudBatch",
    "PointCloudSequence",
    "POINT_FIELDS",
    "merge_frames",
    "RadarTarget",
    "Scene",
    "SceneBatch",
    "scene_batch_from_world",
    "targets_from_scatterers",
    "world_to_radar",
    "radar_to_world",
    "RadarDataCube",
    "RangeDopplerMap",
    "synthesize_data_cube",
    "range_doppler_processing",
    "synthesize_data_cube_batch",
    "range_doppler_processing_batch",
    "CfarConfig",
    "ca_cfar_2d",
    "group_peaks",
    "detect_peaks",
    "ca_cfar_2d_batch",
    "detect_peaks_batch",
    "AngleEstimate",
    "estimate_angles",
    "detections_to_points",
    "estimate_angles_batch",
    "detections_to_points_batch",
    "GeometricBackendConfig",
    "GeometricPointCloudGenerator",
    "RadarPipeline",
    "SignalChainPipeline",
    "GeometricPipeline",
    "make_pipeline",
]

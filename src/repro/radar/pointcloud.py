"""Point-cloud containers matching the paper's Eq. 1 format.

Each mmWave frame is a variable-length set of points
``P_i = (x_i, y_i, z_i, d_i, I_i)`` — spatial coordinates, Doppler velocity
and signal intensity (Eq. 1 in the paper).  :class:`PointCloudFrame` stores
one frame as an ``(N, 5)`` array plus metadata; :class:`PointCloudSequence`
stores an ordered run of frames from one recording session.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence

import numpy as np

__all__ = [
    "POINT_FIELDS",
    "PointCloudFrame",
    "PointCloudBatch",
    "PointCloudSequence",
    "merge_frames",
]

#: Column order of the per-point feature vector (Eq. 1).
POINT_FIELDS: tuple[str, ...] = ("x", "y", "z", "doppler", "intensity")


@dataclass
class PointCloudFrame:
    """A single mmWave point-cloud frame.

    Attributes
    ----------
    points:
        Array of shape ``(N, 5)`` with columns :data:`POINT_FIELDS`.
        ``N`` may be zero (the radar detected nothing in this interval).
    timestamp:
        Frame timestamp in seconds from the start of the recording.
    frame_index:
        Index of the frame within its sequence.
    """

    points: np.ndarray
    timestamp: float = 0.0
    frame_index: int = 0

    def __post_init__(self) -> None:
        points = np.asarray(self.points, dtype=float)
        if points.size == 0:
            points = points.reshape(0, len(POINT_FIELDS))
        if points.ndim != 2 or points.shape[1] != len(POINT_FIELDS):
            raise ValueError(
                f"points must have shape (N, {len(POINT_FIELDS)}), got {points.shape}"
            )
        self.points = points

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def num_points(self) -> int:
        return int(self.points.shape[0])

    def __len__(self) -> int:
        return self.num_points

    @property
    def xyz(self) -> np.ndarray:
        """Spatial coordinates, shape ``(N, 3)``."""
        return self.points[:, :3]

    @property
    def doppler(self) -> np.ndarray:
        """Doppler velocities, shape ``(N,)``."""
        return self.points[:, 3]

    @property
    def intensity(self) -> np.ndarray:
        """Signal intensities, shape ``(N,)``."""
        return self.points[:, 4]

    def column(self, name: str) -> np.ndarray:
        """Return one named column of the point array."""
        if name not in POINT_FIELDS:
            raise KeyError(f"unknown point field '{name}'; valid fields: {POINT_FIELDS}")
        return self.points[:, POINT_FIELDS.index(name)]

    # ------------------------------------------------------------------
    # Geometry helpers
    # ------------------------------------------------------------------
    def centroid(self) -> np.ndarray:
        """Intensity-weighted centroid of the frame (zeros if empty)."""
        if self.num_points == 0:
            return np.zeros(3)
        weights = np.maximum(self.intensity, 1e-9)
        return np.average(self.xyz, axis=0, weights=weights)

    def bounding_box(self) -> tuple[np.ndarray, np.ndarray]:
        """Axis-aligned bounding box ``(minimum, maximum)`` of the points."""
        if self.num_points == 0:
            return np.zeros(3), np.zeros(3)
        return self.xyz.min(axis=0), self.xyz.max(axis=0)

    def translated(self, offset: Sequence[float]) -> "PointCloudFrame":
        """Return a copy with all spatial coordinates shifted by ``offset``."""
        offset = np.asarray(offset, dtype=float)
        if offset.shape != (3,):
            raise ValueError(f"offset must have shape (3,), got {offset.shape}")
        points = self.points.copy()
        points[:, :3] += offset
        return PointCloudFrame(points, timestamp=self.timestamp, frame_index=self.frame_index)

    def subsampled(self, max_points: int, rng: np.random.Generator) -> "PointCloudFrame":
        """Return a copy with at most ``max_points`` points (highest intensity kept
        preferentially via weighted sampling without replacement)."""
        if max_points < 0:
            raise ValueError("max_points must be non-negative")
        if self.num_points <= max_points:
            return PointCloudFrame(
                self.points.copy(), timestamp=self.timestamp, frame_index=self.frame_index
            )
        weights = np.maximum(self.intensity, 1e-9)
        weights = weights / weights.sum()
        chosen = rng.choice(self.num_points, size=max_points, replace=False, p=weights)
        return PointCloudFrame(
            self.points[np.sort(chosen)],
            timestamp=self.timestamp,
            frame_index=self.frame_index,
        )

    @classmethod
    def empty(cls, timestamp: float = 0.0, frame_index: int = 0) -> "PointCloudFrame":
        """An empty frame (the radar saw nothing)."""
        return cls(np.zeros((0, len(POINT_FIELDS))), timestamp=timestamp, frame_index=frame_index)

    @classmethod
    def from_components(
        cls,
        xyz: np.ndarray,
        doppler: np.ndarray,
        intensity: np.ndarray,
        timestamp: float = 0.0,
        frame_index: int = 0,
    ) -> "PointCloudFrame":
        """Assemble a frame from separate coordinate/Doppler/intensity arrays."""
        xyz = np.asarray(xyz, dtype=float).reshape(-1, 3)
        doppler = np.asarray(doppler, dtype=float).reshape(-1)
        intensity = np.asarray(intensity, dtype=float).reshape(-1)
        if not (xyz.shape[0] == doppler.shape[0] == intensity.shape[0]):
            raise ValueError("xyz, doppler and intensity must have matching lengths")
        points = np.concatenate([xyz, doppler[:, None], intensity[:, None]], axis=1)
        return cls(points, timestamp=timestamp, frame_index=frame_index)


@dataclass
class PointCloudBatch:
    """A ragged batch of point-cloud frames stored as one flat array.

    The batched execution engine carries whole windows of frames through the
    radar and feature stages without materializing per-frame Python objects.
    Frame ``b`` owns the rows ``points[offsets[b]:offsets[b + 1]]``.

    Attributes
    ----------
    points:
        Array of shape ``(P, 5)`` concatenating every frame's points in
        frame order (columns are :data:`POINT_FIELDS`).
    offsets:
        Integer array of shape ``(B + 1,)`` with ``offsets[0] == 0`` and
        ``offsets[-1] == P``.
    timestamps / frame_indices:
        Per-frame metadata arrays of shape ``(B,)``.
    """

    points: np.ndarray
    offsets: np.ndarray
    timestamps: np.ndarray
    frame_indices: np.ndarray

    def __post_init__(self) -> None:
        self.points = np.asarray(self.points, dtype=float).reshape(-1, len(POINT_FIELDS))
        self.offsets = np.asarray(self.offsets, dtype=int)
        self.timestamps = np.asarray(self.timestamps, dtype=float)
        self.frame_indices = np.asarray(self.frame_indices, dtype=int)
        if self.offsets.ndim != 1 or self.offsets.shape[0] < 1:
            raise ValueError("offsets must be a 1-D array of length B + 1")
        if self.offsets[0] != 0 or self.offsets[-1] != self.points.shape[0]:
            raise ValueError("offsets must start at 0 and end at the total point count")
        if np.any(np.diff(self.offsets) < 0):
            raise ValueError("offsets must be non-decreasing")
        batch = self.offsets.shape[0] - 1
        if self.timestamps.shape != (batch,) or self.frame_indices.shape != (batch,):
            raise ValueError("timestamps and frame_indices must have one entry per frame")

    def __len__(self) -> int:
        """Number of frames in the batch."""
        return int(self.offsets.shape[0] - 1)

    def num_points_per_frame(self) -> np.ndarray:
        """Point count of each frame, shape ``(B,)``."""
        return np.diff(self.offsets)

    def frame(self, index: int) -> PointCloudFrame:
        """Materialize one frame of the batch."""
        start, stop = self.offsets[index], self.offsets[index + 1]
        return PointCloudFrame(
            self.points[start:stop].copy(),
            timestamp=float(self.timestamps[index]),
            frame_index=int(self.frame_indices[index]),
        )

    def to_frames(self) -> List[PointCloudFrame]:
        """Materialize the whole batch as per-frame objects."""
        return [self.frame(index) for index in range(len(self))]

    @classmethod
    def from_frames(cls, frames: Sequence[PointCloudFrame]) -> "PointCloudBatch":
        """Pack per-frame objects into one flat batch."""
        frames = list(frames)
        counts = [frame.num_points for frame in frames]
        offsets = np.concatenate([[0], np.cumsum(counts)]).astype(int)
        if frames:
            points = np.concatenate([frame.points for frame in frames], axis=0)
        else:
            points = np.zeros((0, len(POINT_FIELDS)))
        return cls(
            points=points,
            offsets=offsets,
            timestamps=np.array([frame.timestamp for frame in frames], dtype=float),
            frame_indices=np.array([frame.frame_index for frame in frames], dtype=int),
        )

    @classmethod
    def from_ragged(
        cls,
        per_frame_points: Sequence[np.ndarray],
        timestamps: Optional[Sequence[float]] = None,
        frame_indices: Optional[Sequence[int]] = None,
    ) -> "PointCloudBatch":
        """Pack a list of ``(N_b, 5)`` arrays into one flat batch."""
        arrays = [np.asarray(p, dtype=float).reshape(-1, len(POINT_FIELDS)) for p in per_frame_points]
        counts = [a.shape[0] for a in arrays]
        offsets = np.concatenate([[0], np.cumsum(counts)]).astype(int)
        points = (
            np.concatenate(arrays, axis=0) if arrays else np.zeros((0, len(POINT_FIELDS)))
        )
        batch = len(arrays)
        if timestamps is None:
            timestamps = np.zeros(batch)
        if frame_indices is None:
            frame_indices = np.arange(batch)
        return cls(
            points=points,
            offsets=offsets,
            timestamps=np.asarray(timestamps, dtype=float),
            frame_indices=np.asarray(frame_indices, dtype=int),
        )


@dataclass
class PointCloudSequence:
    """An ordered sequence of point-cloud frames from one recording."""

    frames: List[PointCloudFrame] = field(default_factory=list)
    frame_period: float = 0.1

    def __post_init__(self) -> None:
        if self.frame_period <= 0:
            raise ValueError("frame_period must be positive")

    def __len__(self) -> int:
        return len(self.frames)

    def __iter__(self) -> Iterator[PointCloudFrame]:
        return iter(self.frames)

    def __getitem__(self, index: int) -> PointCloudFrame:
        return self.frames[index]

    def append(self, frame: PointCloudFrame) -> None:
        """Append a frame, assigning its index/timestamp when left at defaults."""
        if frame.frame_index == 0 and self.frames:
            frame.frame_index = len(self.frames)
        if frame.timestamp == 0.0 and self.frames:
            frame.timestamp = len(self.frames) * self.frame_period
        self.frames.append(frame)

    def point_counts(self) -> np.ndarray:
        """Number of points in each frame."""
        return np.array([frame.num_points for frame in self.frames], dtype=int)

    def mean_points_per_frame(self) -> float:
        """Average sparsity of the sequence."""
        if not self.frames:
            return 0.0
        return float(self.point_counts().mean())


def merge_frames(frames: Iterable[PointCloudFrame], timestamp: Optional[float] = None) -> PointCloudFrame:
    """Concatenate several frames into one (the core of multi-frame fusion).

    The resulting frame keeps every point of every input frame; callers that
    need a fixed-size representation should pad or subsample afterwards.
    """
    frames = list(frames)
    if not frames:
        return PointCloudFrame.empty()
    points = np.concatenate([frame.points for frame in frames], axis=0)
    centre = frames[len(frames) // 2]
    return PointCloudFrame(
        points,
        timestamp=centre.timestamp if timestamp is None else timestamp,
        frame_index=centre.frame_index,
    )

"""Radar configuration modelled on the TI IWR1443 Boost evaluation module.

The MARS dataset (and hence the FUSE evaluation) was collected with a TI
IWR1443 — a 76-81 GHz FMCW radar with 3 transmit and 4 receive antennas
operated as a TDM-MIMO virtual array.  :class:`RadarConfig` captures the
waveform and array parameters needed by the signal-chain simulator and
exposes the derived quantities (range/velocity/angle resolution, maximum
unambiguous range and velocity) that determine what the point cloud can and
cannot resolve.
"""

from __future__ import annotations

from dataclasses import dataclass


__all__ = ["RadarConfig", "SPEED_OF_LIGHT"]

#: Speed of light in m/s.
SPEED_OF_LIGHT: float = 299_792_458.0


@dataclass(frozen=True)
class RadarConfig:
    """FMCW waveform and antenna-array parameters.

    The defaults approximate the IWR1443 configuration used by MARS:
    a 77 GHz carrier, ~3.5 GHz sweep (≈4.3 cm range resolution), 10 Hz frame
    rate, and a 12-element virtual array (8 azimuth x 2 elevation with
    overlap) from 3 Tx x 4 Rx antennas.

    Attributes
    ----------
    carrier_frequency:
        Chirp start frequency in Hz.
    bandwidth:
        Swept bandwidth per chirp in Hz.
    chirp_duration:
        Active chirp (ramp) duration in seconds.
    chirp_repetition:
        Chirp-to-chirp period in seconds (includes idle time and, for
        TDM-MIMO, the other transmitters' slots).
    num_chirps:
        Chirps per frame per transmitter (Doppler FFT length).
    num_samples:
        ADC samples per chirp (range FFT length).
    num_azimuth_antennas:
        Virtual antennas in the azimuth dimension.
    num_elevation_antennas:
        Virtual antennas in the elevation dimension.
    frame_period:
        Frame repetition interval in seconds (0.1 s = 10 Hz in MARS/FUSE).
    radar_height:
        Mounting height of the sensor above the floor in metres.
    noise_figure_db:
        Receiver noise level relative to a unit-RCS target at 1 m, in dB.
        Controls how many weak scatterers survive CFAR.
    """

    carrier_frequency: float = 77.0e9
    bandwidth: float = 3.5e9
    chirp_duration: float = 60.0e-6
    chirp_repetition: float = 400.0e-6
    num_chirps: int = 64
    num_samples: int = 128
    num_azimuth_antennas: int = 8
    num_elevation_antennas: int = 2
    frame_period: float = 0.1
    radar_height: float = 1.0
    noise_figure_db: float = -30.0

    def __post_init__(self) -> None:
        if self.carrier_frequency <= 0 or self.bandwidth <= 0:
            raise ValueError("carrier_frequency and bandwidth must be positive")
        if self.chirp_duration <= 0 or self.chirp_repetition < self.chirp_duration:
            raise ValueError(
                "chirp_repetition must be at least chirp_duration and both positive"
            )
        if self.num_chirps < 2 or self.num_samples < 2:
            raise ValueError("num_chirps and num_samples must be at least 2")
        if self.num_azimuth_antennas < 2 or self.num_elevation_antennas < 1:
            raise ValueError("virtual array must have >= 2 azimuth and >= 1 elevation antennas")
        if self.frame_period <= 0:
            raise ValueError("frame_period must be positive")

    # ------------------------------------------------------------------
    # Derived waveform quantities
    # ------------------------------------------------------------------
    @property
    def wavelength(self) -> float:
        """Carrier wavelength in metres (~3.9 mm at 77 GHz)."""
        return SPEED_OF_LIGHT / self.carrier_frequency

    @property
    def chirp_slope(self) -> float:
        """Frequency slope of the chirp in Hz/s."""
        return self.bandwidth / self.chirp_duration

    @property
    def sample_rate(self) -> float:
        """ADC sample rate in samples/s."""
        return self.num_samples / self.chirp_duration

    @property
    def range_resolution(self) -> float:
        """Range resolution ``c / (2 B)`` in metres."""
        return SPEED_OF_LIGHT / (2.0 * self.bandwidth)

    @property
    def max_range(self) -> float:
        """Maximum unambiguous range of the range FFT in metres."""
        return self.range_resolution * self.num_samples

    @property
    def velocity_resolution(self) -> float:
        """Doppler velocity resolution in m/s."""
        return self.wavelength / (2.0 * self.num_chirps * self.chirp_repetition)

    @property
    def max_velocity(self) -> float:
        """Maximum unambiguous radial velocity (+/-) in m/s."""
        return self.wavelength / (4.0 * self.chirp_repetition)

    @property
    def num_virtual_antennas(self) -> int:
        """Total number of virtual antenna elements."""
        return self.num_azimuth_antennas * self.num_elevation_antennas

    @property
    def azimuth_resolution(self) -> float:
        """Approximate azimuth angular resolution in radians (2 / N)."""
        return 2.0 / self.num_azimuth_antennas

    @property
    def noise_power(self) -> float:
        """Linear-scale receiver noise power used by the signal simulator."""
        return 10.0 ** (self.noise_figure_db / 10.0)

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def iwr1443_default(cls) -> "RadarConfig":
        """The configuration used throughout the reproduction."""
        return cls()

    @classmethod
    def low_resolution(cls) -> "RadarConfig":
        """A coarse configuration for fast unit tests of the signal chain."""
        return cls(num_chirps=32, num_samples=64, bandwidth=2.0e9)

    def describe(self) -> str:
        """Human-readable summary of the derived radar performance."""
        return (
            f"RadarConfig: {self.carrier_frequency / 1e9:.1f} GHz carrier, "
            f"{self.bandwidth / 1e9:.2f} GHz sweep -> {self.range_resolution * 100:.1f} cm range res, "
            f"max range {self.max_range:.1f} m, "
            f"velocity res {self.velocity_resolution:.2f} m/s (max {self.max_velocity:.1f} m/s), "
            f"{self.num_virtual_antennas} virtual antennas"
        )

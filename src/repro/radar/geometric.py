"""Fast geometric point-cloud backend.

Running the full FMCW signal chain for tens of thousands of dataset frames is
unnecessarily expensive: the chain is deterministic given the scatterer
geometry, and its output statistics (which scatterers are detected, with what
measurement error and quantization) can be modelled directly.  This module
implements that statistical model.  It shares the radar configuration with
the signal-chain backend so the two emit point clouds with the same
resolutions, sparsity and coordinate conventions — a property verified by
``benchmarks/test_ablation_radar_backend.py`` and the radar test-suite.

The model captures the effects that make mmWave point clouds hard to use for
pose estimation (the paper's core motivation):

* detection probability grows with radar cross-section and SNR, so the torso
  dominates while wrists/feet frequently drop out;
* near-static body parts are suppressed (Doppler/clutter filtering), so a
  motionless subject almost disappears;
* measurements are quantized to the radar's range/velocity/angle resolution,
  producing the characteristic "gridded" look and large lateral error at
  range;
* the firmware caps the number of emitted points per frame.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from .config import RadarConfig
from .pointcloud import PointCloudBatch, PointCloudFrame
from .scene import Scene, SceneBatch

__all__ = ["GeometricBackendConfig", "GeometricPointCloudGenerator"]


@dataclass(frozen=True)
class GeometricBackendConfig:
    """Tuning parameters of the geometric backend.

    Attributes
    ----------
    max_points:
        Maximum number of points emitted per frame (TI firmware point budget).
    detection_snr_midpoint_db:
        SNR (dB) at which the detection probability is 50%.
    detection_snr_slope:
        Steepness of the detection-probability sigmoid (per dB).
    doppler_suppression_velocity:
        Radial-velocity scale (m/s) of the static-clutter suppression: body
        parts moving slower than this are increasingly likely to be filtered.
    static_detection_floor:
        Residual detection probability multiplier for completely static
        scatterers (the torso never fully disappears).
    range_noise_scale / angle_noise_deg / doppler_noise_scale:
        Measurement noise levels (fractions of a resolution cell / degrees).
    quantize:
        Whether to snap measurements to the radar's resolution grid.
    frame_efficiency_range:
        Per-frame multiplier on the detection probability, drawn uniformly
        from this interval for every frame.  Real mmWave point clouds are
        bursty — multipath fading, interference and the CFAR noise estimate
        make some frames dramatically sparser than their neighbours — and
        this burstiness is precisely what multi-frame fusion compensates.
        Set to ``(1.0, 1.0)`` for a stationary detection process.
    """

    max_points: int = 64
    detection_snr_midpoint_db: float = 6.0
    detection_snr_slope: float = 0.6
    doppler_suppression_velocity: float = 0.12
    static_detection_floor: float = 0.25
    range_noise_scale: float = 0.5
    angle_noise_deg: float = 1.5
    doppler_noise_scale: float = 0.5
    quantize: bool = True
    angle_fft_size: int = 64
    frame_efficiency_range: tuple[float, float] = (0.35, 1.0)

    def __post_init__(self) -> None:
        if self.max_points < 1:
            raise ValueError("max_points must be >= 1")
        if not 0.0 <= self.static_detection_floor <= 1.0:
            raise ValueError("static_detection_floor must be in [0, 1]")
        if self.doppler_suppression_velocity <= 0:
            raise ValueError("doppler_suppression_velocity must be positive")
        low, high = self.frame_efficiency_range
        if not 0.0 < low <= high <= 1.0:
            raise ValueError("frame_efficiency_range must satisfy 0 < low <= high <= 1")


@dataclass
class GeometricPointCloudGenerator:
    """Generates Eq. 1 point-cloud frames directly from a radar scene."""

    radar_config: RadarConfig
    backend_config: GeometricBackendConfig = GeometricBackendConfig()

    def generate_frame(
        self,
        scene: Scene,
        rng: np.random.Generator,
        timestamp: float = 0.0,
        frame_index: int = 0,
    ) -> PointCloudFrame:
        """Produce one point-cloud frame from the given radar scene."""
        cfg = self.backend_config
        radar = self.radar_config

        scene = scene.within_field_of_view(radar)
        if len(scene) == 0:
            return PointCloudFrame.empty(timestamp=timestamp, frame_index=frame_index)

        ranges, radial_velocities, azimuths, elevations = scene.spherical()
        rcs = scene.rcs()

        snr_db = self._snr_db(rcs, ranges)
        detect_prob = self._detection_probability(snr_db, radial_velocities)
        efficiency = rng.uniform(*cfg.frame_efficiency_range)
        detected = rng.random(len(scene)) < detect_prob * efficiency
        if not np.any(detected):
            return PointCloudFrame.empty(timestamp=timestamp, frame_index=frame_index)

        ranges = ranges[detected]
        radial_velocities = radial_velocities[detected]
        azimuths = azimuths[detected]
        elevations = elevations[detected]
        snr_db = snr_db[detected]

        # Measurement noise in the radar's native (spherical) coordinates.
        ranges = ranges + rng.normal(
            0.0, cfg.range_noise_scale * radar.range_resolution, size=ranges.shape
        )
        azimuths = azimuths + rng.normal(
            0.0, np.deg2rad(cfg.angle_noise_deg), size=azimuths.shape
        )
        elevations = elevations + rng.normal(
            0.0, np.deg2rad(cfg.angle_noise_deg), size=elevations.shape
        )
        radial_velocities = radial_velocities + rng.normal(
            0.0, cfg.doppler_noise_scale * radar.velocity_resolution, size=radial_velocities.shape
        )

        if cfg.quantize:
            ranges = np.round(ranges / radar.range_resolution) * radar.range_resolution
            radial_velocities = (
                np.round(radial_velocities / radar.velocity_resolution)
                * radar.velocity_resolution
            )
            # Azimuth is estimated by a zero-padded FFT over the virtual
            # array, so quantize sin(azimuth) in spatial-frequency space with
            # the same bin width as the signal-chain backend (2 / fft_size).
            u_step = 2.0 / cfg.angle_fft_size
            u = np.clip(np.sin(azimuths), -0.999, 0.999)
            u = np.round(u / u_step) * u_step
            azimuths = np.arcsin(np.clip(u, -0.999, 0.999))

        intensity = snr_db + rng.normal(0.0, 1.5, size=snr_db.shape)

        cos_el = np.cos(elevations)
        x = ranges * np.sin(azimuths) * cos_el
        y = ranges * np.cos(azimuths) * cos_el
        z = ranges * np.sin(elevations) + radar.radar_height

        points = np.stack([x, y, z, radial_velocities, intensity], axis=1)
        frame = PointCloudFrame(points, timestamp=timestamp, frame_index=frame_index)
        if frame.num_points > cfg.max_points:
            frame = frame.subsampled(cfg.max_points, rng)
            frame.timestamp = timestamp
            frame.frame_index = frame_index
        return frame

    def generate_batch(
        self,
        batch: SceneBatch,
        rng: np.random.Generator,
        timestamps: Optional[np.ndarray] = None,
        frame_indices: Optional[np.ndarray] = None,
    ) -> PointCloudBatch:
        """Produce point clouds for a whole batch of scenes in one pass.

        The detection, noise, quantization and intensity models are applied
        to ``(B, S)`` arrays at once; only the ragged per-frame assembly (and
        the rare over-budget subsampling) touches individual frames.  The
        random draw order differs from calling :meth:`generate_frame` per
        frame, so batched and sequential outputs agree statistically rather
        than sample-for-sample.
        """
        cfg = self.backend_config
        radar = self.radar_config
        num_frames = len(batch)
        if timestamps is None:
            timestamps = np.zeros(num_frames)
        if frame_indices is None:
            frame_indices = np.arange(num_frames)

        mask = batch.fov_mask(radar)
        ranges, radial_velocities, azimuths, elevations = batch.spherical()

        snr_db = self._snr_db(batch.rcs, ranges)
        detect_prob = np.where(
            mask, self._detection_probability(snr_db, radial_velocities), 0.0
        )
        efficiency = rng.uniform(*cfg.frame_efficiency_range, size=(num_frames, 1))
        detected = rng.random(detect_prob.shape) < detect_prob * efficiency

        # Measurement noise in the radar's native (spherical) coordinates,
        # drawn for every slot at once (undetected slots discard theirs).
        shape = ranges.shape
        ranges = ranges + rng.normal(0.0, cfg.range_noise_scale * radar.range_resolution, shape)
        azimuths = azimuths + rng.normal(0.0, np.deg2rad(cfg.angle_noise_deg), shape)
        elevations = elevations + rng.normal(0.0, np.deg2rad(cfg.angle_noise_deg), shape)
        radial_velocities = radial_velocities + rng.normal(
            0.0, cfg.doppler_noise_scale * radar.velocity_resolution, shape
        )

        if cfg.quantize:
            ranges = np.round(ranges / radar.range_resolution) * radar.range_resolution
            radial_velocities = (
                np.round(radial_velocities / radar.velocity_resolution)
                * radar.velocity_resolution
            )
            u_step = 2.0 / cfg.angle_fft_size
            u = np.clip(np.sin(azimuths), -0.999, 0.999)
            u = np.round(u / u_step) * u_step
            azimuths = np.arcsin(np.clip(u, -0.999, 0.999))

        intensity = snr_db + rng.normal(0.0, 1.5, shape)

        cos_el = np.cos(elevations)
        x = ranges * np.sin(azimuths) * cos_el
        y = ranges * np.cos(azimuths) * cos_el
        z = ranges * np.sin(elevations) + radar.radar_height
        points = np.stack([x, y, z, radial_velocities, intensity], axis=-1)  # (B, S, 5)

        per_frame: List[np.ndarray] = []
        for index in range(num_frames):
            frame_points = points[index][detected[index]]
            if frame_points.shape[0] > cfg.max_points:
                weights = np.maximum(frame_points[:, 4], 1e-9)
                weights = weights / weights.sum()
                chosen = rng.choice(
                    frame_points.shape[0], size=cfg.max_points, replace=False, p=weights
                )
                frame_points = frame_points[np.sort(chosen)]
            per_frame.append(frame_points)
        return PointCloudBatch.from_ragged(
            per_frame, timestamps=timestamps, frame_indices=frame_indices
        )

    # ------------------------------------------------------------------
    # Internal statistical model
    # ------------------------------------------------------------------
    def _snr_db(self, rcs: np.ndarray, ranges: np.ndarray) -> np.ndarray:
        """Per-scatterer SNR from the radar equation (R^4 spreading loss)."""
        radar = self.radar_config
        snr_linear = rcs / np.maximum(ranges, 0.5) ** 4 / radar.noise_power
        return 10.0 * np.log10(np.maximum(snr_linear, 1e-12))

    def _detection_probability(
        self, snr_db: np.ndarray, radial_velocities: np.ndarray
    ) -> np.ndarray:
        """Detection probability combining SNR and Doppler clutter filtering."""
        cfg = self.backend_config
        snr_term = 1.0 / (
            1.0
            + np.exp(-cfg.detection_snr_slope * (snr_db - cfg.detection_snr_midpoint_db))
        )
        motion = np.abs(radial_velocities) / cfg.doppler_suppression_velocity
        doppler_term = cfg.static_detection_floor + (1.0 - cfg.static_detection_floor) * (
            1.0 - np.exp(-motion)
        )
        return np.clip(snr_term * doppler_term, 0.0, 1.0)

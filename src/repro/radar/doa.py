"""Direction-of-arrival (angle) estimation across the virtual antenna array.

For every CFAR detection the radar extracts the complex antenna snapshot at
that range-Doppler cell and estimates the azimuth and elevation angles of the
reflector.  Azimuth uses a zero-padded FFT over the 8-element azimuth array
(the standard TI processing); elevation uses the phase difference between the
two elevation rows.  Together with the range and Doppler of the cell this
yields one point of the Eq. 1 point cloud.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from .config import RadarConfig
from .signal_chain import RangeDopplerMap

__all__ = ["AngleEstimate", "estimate_angles", "detections_to_points"]


@dataclass(frozen=True)
class AngleEstimate:
    """Angle estimate for one detection."""

    azimuth: float
    elevation: float
    power: float


def estimate_angles(
    snapshot: np.ndarray, config: RadarConfig, fft_size: int = 64
) -> Optional[AngleEstimate]:
    """Estimate azimuth/elevation from one antenna snapshot.

    Parameters
    ----------
    snapshot:
        Complex array of shape ``(num_azimuth_antennas, num_elevation_antennas)``.
    config:
        Radar configuration (array geometry).
    fft_size:
        Zero-padded FFT length for the azimuth spectrum.

    Returns
    -------
    ``AngleEstimate`` or ``None`` when the estimate is unphysical (spatial
    frequency outside the array's unambiguous region), which real radars
    discard as ghost detections.
    """
    snapshot = np.asarray(snapshot)
    expected = (config.num_azimuth_antennas, config.num_elevation_antennas)
    if snapshot.shape != expected:
        raise ValueError(f"snapshot has shape {snapshot.shape}, expected {expected}")

    # Azimuth: FFT across the azimuth elements (combine elevation rows
    # coherently after removing their mean phase difference).
    azimuth_signal = snapshot.sum(axis=1)
    spectrum = np.fft.fftshift(np.fft.fft(azimuth_signal, n=fft_size))
    peak_bin = int(np.argmax(np.abs(spectrum)))
    # Spatial frequency u = sin(az) * cos(el) in [-1, 1) for lambda/2 spacing.
    u = (peak_bin - fft_size // 2) * (2.0 / fft_size)
    power = float(np.abs(spectrum[peak_bin]) ** 2)

    # Elevation: phase difference between the two elevation rows.
    if config.num_elevation_antennas >= 2:
        row_a = snapshot[:, 0].sum()
        row_b = snapshot[:, 1].sum()
        phase_delta = float(np.angle(row_b * np.conj(row_a)))
        sin_el = phase_delta / np.pi
        sin_el = float(np.clip(sin_el, -0.999, 0.999))
    else:
        sin_el = 0.0
    elevation = float(np.arcsin(sin_el))

    cos_el = float(np.cos(elevation))
    if cos_el < 1e-6:
        return None
    sin_az = u / cos_el
    if abs(sin_az) >= 1.0:
        return None
    azimuth = float(np.arcsin(sin_az))
    return AngleEstimate(azimuth=azimuth, elevation=elevation, power=power)


def detections_to_points(
    rd_map: RangeDopplerMap,
    detections: List[Tuple[int, int]],
    config: RadarConfig,
) -> np.ndarray:
    """Convert CFAR detections into point-cloud rows.

    Returns an array of shape ``(N, 5)`` with columns
    ``(x, y, z, doppler, intensity)`` in the radar coordinate frame
    (conversion to the world frame — adding the mounting height — is done by
    the pipeline).  Intensity is reported in dB, matching the TI firmware.
    """
    points = []
    for range_bin, doppler_bin in detections:
        snapshot = rd_map.spectrum[range_bin, doppler_bin]
        estimate = estimate_angles(snapshot, config)
        if estimate is None:
            continue
        distance = rd_map.range_of_bin(range_bin)
        if distance <= 0.0:
            continue
        velocity = rd_map.velocity_of_bin(doppler_bin)
        cos_el = np.cos(estimate.elevation)
        x = distance * np.sin(estimate.azimuth) * cos_el
        y = distance * np.cos(estimate.azimuth) * cos_el
        z = distance * np.sin(estimate.elevation)
        intensity_db = 10.0 * np.log10(max(estimate.power, 1e-12))
        points.append([x, y, z, velocity, intensity_db])
    if not points:
        return np.zeros((0, 5))
    return np.asarray(points, dtype=float)

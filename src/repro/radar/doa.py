"""Direction-of-arrival (angle) estimation across the virtual antenna array.

For every CFAR detection the radar extracts the complex antenna snapshot at
that range-Doppler cell and estimates the azimuth and elevation angles of the
reflector.  Azimuth uses a zero-padded FFT over the 8-element azimuth array
(the standard TI processing); elevation uses the phase difference between the
two elevation rows.  Together with the range and Doppler of the cell this
yields one point of the Eq. 1 point cloud.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from .config import RadarConfig
from .signal_chain import RangeDopplerMap

__all__ = [
    "AngleEstimate",
    "estimate_angles",
    "estimate_angles_batch",
    "detections_to_points",
    "detections_to_points_batch",
]


@dataclass(frozen=True)
class AngleEstimate:
    """Angle estimate for one detection."""

    azimuth: float
    elevation: float
    power: float


def estimate_angles(
    snapshot: np.ndarray, config: RadarConfig, fft_size: int = 64
) -> Optional[AngleEstimate]:
    """Estimate azimuth/elevation from one antenna snapshot.

    Parameters
    ----------
    snapshot:
        Complex array of shape ``(num_azimuth_antennas, num_elevation_antennas)``.
    config:
        Radar configuration (array geometry).
    fft_size:
        Zero-padded FFT length for the azimuth spectrum.

    Returns
    -------
    ``AngleEstimate`` or ``None`` when the estimate is unphysical (spatial
    frequency outside the array's unambiguous region), which real radars
    discard as ghost detections.
    """
    snapshot = np.asarray(snapshot)
    expected = (config.num_azimuth_antennas, config.num_elevation_antennas)
    if snapshot.shape != expected:
        raise ValueError(f"snapshot has shape {snapshot.shape}, expected {expected}")

    # Azimuth: FFT across the azimuth elements (combine elevation rows
    # coherently after removing their mean phase difference).
    azimuth_signal = snapshot.sum(axis=1)
    spectrum = np.fft.fftshift(np.fft.fft(azimuth_signal, n=fft_size))
    peak_bin = int(np.argmax(np.abs(spectrum)))
    # Spatial frequency u = sin(az) * cos(el) in [-1, 1) for lambda/2 spacing.
    u = (peak_bin - fft_size // 2) * (2.0 / fft_size)
    power = float(np.abs(spectrum[peak_bin]) ** 2)

    # Elevation: phase difference between the two elevation rows.
    if config.num_elevation_antennas >= 2:
        row_a = snapshot[:, 0].sum()
        row_b = snapshot[:, 1].sum()
        phase_delta = float(np.angle(row_b * np.conj(row_a)))
        sin_el = phase_delta / np.pi
        sin_el = float(np.clip(sin_el, -0.999, 0.999))
    else:
        sin_el = 0.0
    elevation = float(np.arcsin(sin_el))

    cos_el = float(np.cos(elevation))
    if cos_el < 1e-6:
        return None
    sin_az = u / cos_el
    if abs(sin_az) >= 1.0:
        return None
    azimuth = float(np.arcsin(sin_az))
    return AngleEstimate(azimuth=azimuth, elevation=elevation, power=power)


def estimate_angles_batch(
    snapshots: np.ndarray, config: RadarConfig, fft_size: int = 64
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized angle estimation for ``(N, n_az, n_el)`` antenna snapshots.

    Performs the zero-padded azimuth FFT for every snapshot in one call and
    the elevation phase comparison with array arithmetic.  Returns
    ``(azimuths, elevations, powers, valid)`` arrays of shape ``(N,)``; rows
    with ``valid == False`` correspond to detections a real radar would
    discard as ghosts (unphysical spatial frequency).
    """
    snapshots = np.asarray(snapshots)
    expected = (config.num_azimuth_antennas, config.num_elevation_antennas)
    if snapshots.ndim != 3 or snapshots.shape[1:] != expected:
        raise ValueError(
            f"snapshots must have shape (N, {expected[0]}, {expected[1]}), "
            f"got {snapshots.shape}"
        )
    count = snapshots.shape[0]
    if count == 0:
        empty = np.zeros(0)
        return empty, empty, empty, np.zeros(0, dtype=bool)

    # Azimuth: one zero-padded FFT across the azimuth elements for all rows.
    azimuth_signal = snapshots.sum(axis=2)  # (N, n_az)
    spectrum = np.fft.fftshift(np.fft.fft(azimuth_signal, n=fft_size, axis=1), axes=1)
    magnitude = np.abs(spectrum)
    peak_bins = np.argmax(magnitude, axis=1)
    u = (peak_bins - fft_size // 2) * (2.0 / fft_size)
    powers = np.take_along_axis(magnitude, peak_bins[:, None], axis=1)[:, 0] ** 2

    # Elevation: phase difference between the two elevation rows.
    if config.num_elevation_antennas >= 2:
        row_a = snapshots[:, :, 0].sum(axis=1)
        row_b = snapshots[:, :, 1].sum(axis=1)
        phase_delta = np.angle(row_b * np.conj(row_a))
        sin_el = np.clip(phase_delta / np.pi, -0.999, 0.999)
    else:
        sin_el = np.zeros(count)
    elevations = np.arcsin(sin_el)

    cos_el = np.cos(elevations)
    valid = cos_el >= 1e-6
    sin_az = np.where(valid, u / np.where(valid, cos_el, 1.0), 0.0)
    valid = valid & (np.abs(sin_az) < 1.0)
    azimuths = np.arcsin(np.clip(sin_az, -0.999999999, 0.999999999))
    return azimuths, elevations, powers, valid


def _cells_to_points(
    snapshots: np.ndarray,
    cells: np.ndarray,
    config: RadarConfig,
    num_doppler_bins: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Shared vectorized kernel mapping detection cells to Eq. 1 point rows.

    ``snapshots`` holds one antenna snapshot per detection cell (gathered by
    the caller, possibly across several frames).  Returns ``(points, valid)``
    with one row per input cell so callers can slice per frame; rows with
    ``valid == False`` are ghost detections a real radar discards.
    """
    azimuths, elevations, powers, valid = estimate_angles_batch(snapshots, config)

    distances = cells[:, 0] * config.range_resolution
    centre = num_doppler_bins // 2
    velocities = (cells[:, 1] - centre) * config.velocity_resolution
    valid = valid & (distances > 0.0)

    cos_el = np.cos(elevations)
    x = distances * np.sin(azimuths) * cos_el
    y = distances * np.cos(azimuths) * cos_el
    z = distances * np.sin(elevations)
    intensity_db = 10.0 * np.log10(np.maximum(powers, 1e-12))
    return np.stack([x, y, z, velocities, intensity_db], axis=1), valid


def detections_to_points(
    rd_map: RangeDopplerMap,
    detections: List[Tuple[int, int]],
    config: RadarConfig,
) -> np.ndarray:
    """Convert CFAR detections into point-cloud rows.

    Returns an array of shape ``(N, 5)`` with columns
    ``(x, y, z, doppler, intensity)`` in the radar coordinate frame
    (conversion to the world frame — adding the mounting height — is done by
    the pipeline).  Intensity is reported in dB, matching the TI firmware.
    All detections of the frame are processed with one vectorized FFT rather
    than a Python loop per detection.
    """
    cells = np.asarray(detections, dtype=int).reshape(-1, 2)
    if cells.shape[0] == 0:
        return np.zeros((0, 5))
    snapshots = rd_map.spectrum[cells[:, 0], cells[:, 1]]
    points, valid = _cells_to_points(snapshots, cells, config, rd_map.num_doppler_bins)
    return points[valid] if np.any(valid) else np.zeros((0, 5))


def detections_to_points_batch(
    spectra: np.ndarray,
    detections: List[np.ndarray],
    config: RadarConfig,
) -> List[np.ndarray]:
    """Batched variant over ``(B, R, D, n_az, n_el)`` spectra.

    ``detections[b]`` holds the CFAR cells of frame ``b``; the angle
    estimation for every detection of every frame runs through a single
    vectorized kernel, and the results are split back per frame along the
    known per-frame offsets.
    """
    if spectra.ndim != 5:
        raise ValueError(f"expected (B, R, D, n_az, n_el) spectra, got {spectra.shape}")
    if len(detections) != spectra.shape[0]:
        raise ValueError("one detection array per frame is required")
    per_frame_cells = [np.asarray(d, dtype=int).reshape(-1, 2) for d in detections]
    counts = np.array([c.shape[0] for c in per_frame_cells], dtype=int)
    if counts.sum() == 0:
        return [np.zeros((0, 5)) for _ in detections]

    frame_ids = np.repeat(np.arange(len(detections)), counts)
    cells = np.concatenate(per_frame_cells, axis=0)
    snapshots = spectra[frame_ids, cells[:, 0], cells[:, 1]]
    points, valid = _cells_to_points(snapshots, cells, config, spectra.shape[2])

    offsets = np.concatenate([[0], np.cumsum(counts)])
    frames: List[np.ndarray] = []
    for index in range(len(detections)):
        start, stop = offsets[index], offsets[index + 1]
        keep = valid[start:stop]
        frames.append(points[start:stop][keep] if keep.any() else np.zeros((0, 5)))
    return frames

"""Radar scene description: point targets in the radar coordinate frame.

The radar simulator operates on :class:`RadarTarget` objects — idealized
point scatterers with a position, a velocity and a radar cross-section.  This
module also performs the world-to-radar coordinate conversion (the radar is
mounted at ``radar_height`` above the floor and looks along +y) and computes
the spherical quantities (range, radial velocity, azimuth, elevation) that
drive the FMCW signal model.

Two representations coexist:

* :class:`Scene` — a list of :class:`RadarTarget` objects, the original
  per-frame API.  Its accessors are computed from stacked arrays (built once
  and cached) rather than per-target Python properties, so even the
  object-based path is vectorized internally.
* :class:`SceneBatch` — a struct-of-arrays batch of ``(batch, targets, ...)``
  NumPy arrays used by the batched execution engine.  A validity mask takes
  the place of per-frame filtering so that every frame in the batch shares
  one array shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..body.surface import Scatterer
from .config import RadarConfig

__all__ = [
    "RadarTarget",
    "Scene",
    "SceneBatch",
    "targets_from_scatterers",
    "scene_batch_from_world",
]

#: Default angular field-of-view limits shared by Scene and SceneBatch.
DEFAULT_AZIMUTH_LIMIT: float = np.deg2rad(60.0)
DEFAULT_ELEVATION_LIMIT: float = np.deg2rad(45.0)


@dataclass(frozen=True)
class RadarTarget:
    """A point scatterer expressed in the radar coordinate frame.

    Attributes
    ----------
    position:
        ``(x, y, z)`` in metres, radar at the origin, +y boresight, +z up.
    velocity:
        ``(vx, vy, vz)`` in m/s.
    rcs:
        Radar cross-section (linear scale, relative units).
    """

    position: np.ndarray
    velocity: np.ndarray
    rcs: float

    @property
    def range(self) -> float:
        """Slant range from the radar in metres."""
        return float(np.linalg.norm(self.position))

    @property
    def radial_velocity(self) -> float:
        """Range-rate in m/s (positive when moving away from the radar)."""
        distance = self.range
        if distance < 1e-9:
            return 0.0
        return float(np.dot(self.velocity, self.position) / distance)

    @property
    def azimuth(self) -> float:
        """Azimuth angle in radians (positive to the radar's right)."""
        return float(np.arctan2(self.position[0], self.position[1]))

    @property
    def elevation(self) -> float:
        """Elevation angle in radians (positive above the boresight plane)."""
        horizontal = float(np.hypot(self.position[0], self.position[1]))
        return float(np.arctan2(self.position[2], horizontal))


def _spherical_from_arrays(
    positions: np.ndarray, velocities: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized ``(range, radial velocity, azimuth, elevation)`` arrays.

    Works on any leading shape: ``positions``/``velocities`` of shape
    ``(..., 3)`` produce four arrays of shape ``(...)``.
    """
    ranges = np.linalg.norm(positions, axis=-1)
    safe = np.maximum(ranges, 1e-9)
    radial = np.einsum("...i,...i->...", velocities, positions) / safe
    radial = np.where(ranges < 1e-9, 0.0, radial)
    azimuths = np.arctan2(positions[..., 0], positions[..., 1])
    horizontal = np.hypot(positions[..., 0], positions[..., 1])
    elevations = np.arctan2(positions[..., 2], horizontal)
    return ranges, radial, azimuths, elevations


@dataclass
class Scene:
    """A collection of radar targets observed during one frame.

    The accessors stack the per-target attributes into arrays and compute
    the spherical quantities vectorized (much faster than the original
    per-target Python properties).  Nothing is cached: the public
    ``targets`` list — and the arrays inside each target — stay freely
    mutable without any risk of stale derived values.
    """

    targets: List[RadarTarget]

    def __len__(self) -> int:
        return len(self.targets)

    def __iter__(self):
        return iter(self.targets)

    # ------------------------------------------------------------------
    # Vectorized array views
    # ------------------------------------------------------------------
    def positions(self) -> np.ndarray:
        """Target positions stacked into an ``(N, 3)`` array."""
        if not self.targets:
            return np.zeros((0, 3))
        return np.stack([t.position for t in self.targets]).astype(float)

    def velocities(self) -> np.ndarray:
        """Target velocities stacked into an ``(N, 3)`` array."""
        if not self.targets:
            return np.zeros((0, 3))
        return np.stack([t.velocity for t in self.targets]).astype(float)

    def spherical(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """``(ranges, radial velocities, azimuths, elevations)``, each ``(N,)``.

        Prefer this over calling the individual accessors when several
        quantities are needed — it stacks the targets once.
        """
        return _spherical_from_arrays(self.positions(), self.velocities())

    def ranges(self) -> np.ndarray:
        return self.spherical()[0]

    def radial_velocities(self) -> np.ndarray:
        return self.spherical()[1]

    def azimuths(self) -> np.ndarray:
        return self.spherical()[2]

    def elevations(self) -> np.ndarray:
        return self.spherical()[3]

    def rcs(self) -> np.ndarray:
        return np.array([t.rcs for t in self.targets], dtype=float)

    def within_field_of_view(
        self, config: RadarConfig, azimuth_limit: float = DEFAULT_AZIMUTH_LIMIT,
        elevation_limit: float = DEFAULT_ELEVATION_LIMIT,
    ) -> "Scene":
        """Return a scene containing only targets the radar can actually see."""
        if not self.targets:
            return Scene([])
        ranges, _, azimuths, elevations = self.spherical()
        visible = (
            (ranges < config.max_range)
            & (np.abs(azimuths) < azimuth_limit)
            & (np.abs(elevations) < elevation_limit)
        )
        return Scene([target for target, keep in zip(self.targets, visible) if keep])


@dataclass
class SceneBatch:
    """A batch of radar scenes stored as ``(batch, targets, ...)`` arrays.

    Every frame in the batch holds the same number of target slots ``S``;
    frames with fewer physical targets mark the padding rows invalid through
    ``valid``.  All positions are expressed in the radar coordinate frame
    (sensor at the origin, +y boresight).

    Attributes
    ----------
    positions / velocities:
        Arrays of shape ``(B, S, 3)``.
    rcs:
        Array of shape ``(B, S)`` (linear-scale radar cross-sections).
    valid:
        Boolean array of shape ``(B, S)``; padding and discarded targets are
        ``False`` and contribute nothing downstream.
    """

    positions: np.ndarray
    velocities: np.ndarray
    rcs: np.ndarray
    valid: np.ndarray
    _spherical: Optional[tuple] = field(default=None, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.positions = np.asarray(self.positions, dtype=float)
        self.velocities = np.asarray(self.velocities, dtype=float)
        self.rcs = np.asarray(self.rcs, dtype=float)
        if self.positions.ndim != 3 or self.positions.shape[-1] != 3:
            raise ValueError(
                f"positions must have shape (B, S, 3), got {self.positions.shape}"
            )
        if self.velocities.shape != self.positions.shape:
            raise ValueError("velocities must match positions in shape")
        expected = self.positions.shape[:2]
        if self.rcs.shape != expected:
            raise ValueError(f"rcs must have shape {expected}, got {self.rcs.shape}")
        if self.valid is None:
            self.valid = np.ones(expected, dtype=bool)
        self.valid = np.asarray(self.valid, dtype=bool)
        if self.valid.shape != expected:
            raise ValueError(f"valid must have shape {expected}, got {self.valid.shape}")

    # ------------------------------------------------------------------
    # Shape information
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of frames in the batch."""
        return int(self.positions.shape[0])

    @property
    def num_slots(self) -> int:
        """Target slots per frame (including invalid padding)."""
        return int(self.positions.shape[1])

    # ------------------------------------------------------------------
    # Vectorized spherical quantities
    # ------------------------------------------------------------------
    def spherical(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """``(ranges, radial velocities, azimuths, elevations)``, each ``(B, S)``.

        Computed once and cached: a :class:`SceneBatch` is treated as
        immutable after construction (the engine builds a fresh batch per
        chunk), and ``fov_mask`` plus the backends would otherwise derive
        the same four arrays several times per chunk.
        """
        if self._spherical is None:
            self._spherical = _spherical_from_arrays(self.positions, self.velocities)
        return self._spherical

    def ranges(self) -> np.ndarray:
        return self.spherical()[0]

    def radial_velocities(self) -> np.ndarray:
        return self.spherical()[1]

    def azimuths(self) -> np.ndarray:
        return self.spherical()[2]

    def elevations(self) -> np.ndarray:
        return self.spherical()[3]

    def fov_mask(
        self,
        config: RadarConfig,
        azimuth_limit: float = DEFAULT_AZIMUTH_LIMIT,
        elevation_limit: float = DEFAULT_ELEVATION_LIMIT,
    ) -> np.ndarray:
        """Validity mask restricted to targets inside the field of view."""
        ranges, _, azimuths, elevations = self.spherical()
        return (
            self.valid
            & (ranges < config.max_range)
            & (np.abs(azimuths) < azimuth_limit)
            & (np.abs(elevations) < elevation_limit)
        )

    # ------------------------------------------------------------------
    # Interop with the per-frame representation
    # ------------------------------------------------------------------
    def scene(self, index: int) -> Scene:
        """Materialize one frame of the batch as an object-based :class:`Scene`."""
        mask = self.valid[index]
        return Scene(
            [
                RadarTarget(
                    position=self.positions[index, slot].copy(),
                    velocity=self.velocities[index, slot].copy(),
                    rcs=float(self.rcs[index, slot]),
                )
                for slot in np.flatnonzero(mask)
            ]
        )

    def scenes(self) -> List[Scene]:
        """Materialize the whole batch as per-frame scenes."""
        return [self.scene(index) for index in range(len(self))]

    @classmethod
    def from_scenes(cls, scenes: Sequence[Scene]) -> "SceneBatch":
        """Pack object-based scenes into one padded array batch."""
        batch = len(scenes)
        slots = max((len(scene) for scene in scenes), default=0)
        positions = np.zeros((batch, slots, 3))
        velocities = np.zeros((batch, slots, 3))
        rcs = np.zeros((batch, slots))
        valid = np.zeros((batch, slots), dtype=bool)
        for index, scene in enumerate(scenes):
            count = len(scene)
            if count:
                positions[index, :count] = scene.positions()
                velocities[index, :count] = scene.velocities()
                rcs[index, :count] = scene.rcs()
                valid[index, :count] = True
        return cls(positions=positions, velocities=velocities, rcs=rcs, valid=valid)


def world_to_radar(positions: np.ndarray, config: RadarConfig) -> np.ndarray:
    """Convert world coordinates (floor origin) into the radar frame.

    The world frame places the origin on the floor directly below the radar;
    the radar frame shares x/y axes but its origin is at the sensor, which is
    mounted ``config.radar_height`` metres above the floor.
    """
    positions = np.asarray(positions, dtype=float)
    shifted = positions.copy()
    shifted[..., 2] = shifted[..., 2] - config.radar_height
    return shifted


def radar_to_world(positions: np.ndarray, config: RadarConfig) -> np.ndarray:
    """Inverse of :func:`world_to_radar`."""
    positions = np.asarray(positions, dtype=float)
    shifted = positions.copy()
    shifted[..., 2] = shifted[..., 2] + config.radar_height
    return shifted


def targets_from_scatterers(
    scatterers: Sequence[Scatterer], config: RadarConfig
) -> Scene:
    """Convert body-surface scatterers (world frame) into a radar scene."""
    targets = []
    for scatterer in scatterers:
        position = world_to_radar(np.asarray(scatterer.position, dtype=float), config)
        targets.append(
            RadarTarget(
                position=position,
                velocity=np.asarray(scatterer.velocity, dtype=float),
                rcs=float(scatterer.rcs),
            )
        )
    return Scene(targets)


def scene_batch_from_world(
    positions: np.ndarray,
    velocities: np.ndarray,
    rcs: np.ndarray,
    config: RadarConfig,
    valid: Optional[np.ndarray] = None,
) -> SceneBatch:
    """Build a :class:`SceneBatch` from world-frame scatterer arrays.

    Parameters
    ----------
    positions / velocities:
        World-frame arrays of shape ``(B, S, 3)``.
    rcs:
        Array of shape ``(B, S)``.
    valid:
        Optional boolean mask ``(B, S)``; defaults to all-valid.
    """
    positions = world_to_radar(np.asarray(positions, dtype=float), config)
    rcs = np.asarray(rcs, dtype=float)
    if valid is None:
        valid = np.ones(rcs.shape, dtype=bool)
    return SceneBatch(
        positions=positions,
        velocities=np.asarray(velocities, dtype=float),
        rcs=rcs,
        valid=valid,
    )

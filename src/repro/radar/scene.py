"""Radar scene description: point targets in the radar coordinate frame.

The radar simulator operates on :class:`RadarTarget` objects — idealized
point scatterers with a position, a velocity and a radar cross-section.  This
module also performs the world-to-radar coordinate conversion (the radar is
mounted at ``radar_height`` above the floor and looks along +y) and computes
the spherical quantities (range, radial velocity, azimuth, elevation) that
drive the FMCW signal model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..body.surface import Scatterer
from .config import RadarConfig

__all__ = ["RadarTarget", "Scene", "targets_from_scatterers"]


@dataclass(frozen=True)
class RadarTarget:
    """A point scatterer expressed in the radar coordinate frame.

    Attributes
    ----------
    position:
        ``(x, y, z)`` in metres, radar at the origin, +y boresight, +z up.
    velocity:
        ``(vx, vy, vz)`` in m/s.
    rcs:
        Radar cross-section (linear scale, relative units).
    """

    position: np.ndarray
    velocity: np.ndarray
    rcs: float

    @property
    def range(self) -> float:
        """Slant range from the radar in metres."""
        return float(np.linalg.norm(self.position))

    @property
    def radial_velocity(self) -> float:
        """Range-rate in m/s (positive when moving away from the radar)."""
        distance = self.range
        if distance < 1e-9:
            return 0.0
        return float(np.dot(self.velocity, self.position) / distance)

    @property
    def azimuth(self) -> float:
        """Azimuth angle in radians (positive to the radar's right)."""
        return float(np.arctan2(self.position[0], self.position[1]))

    @property
    def elevation(self) -> float:
        """Elevation angle in radians (positive above the boresight plane)."""
        horizontal = float(np.hypot(self.position[0], self.position[1]))
        return float(np.arctan2(self.position[2], horizontal))


@dataclass
class Scene:
    """A collection of radar targets observed during one frame."""

    targets: List[RadarTarget]

    def __len__(self) -> int:
        return len(self.targets)

    def __iter__(self):
        return iter(self.targets)

    def ranges(self) -> np.ndarray:
        return np.array([t.range for t in self.targets])

    def radial_velocities(self) -> np.ndarray:
        return np.array([t.radial_velocity for t in self.targets])

    def azimuths(self) -> np.ndarray:
        return np.array([t.azimuth for t in self.targets])

    def elevations(self) -> np.ndarray:
        return np.array([t.elevation for t in self.targets])

    def rcs(self) -> np.ndarray:
        return np.array([t.rcs for t in self.targets])

    def within_field_of_view(
        self, config: RadarConfig, azimuth_limit: float = np.deg2rad(60.0),
        elevation_limit: float = np.deg2rad(45.0),
    ) -> "Scene":
        """Return a scene containing only targets the radar can actually see."""
        visible = [
            target
            for target in self.targets
            if target.range < config.max_range
            and abs(target.azimuth) < azimuth_limit
            and abs(target.elevation) < elevation_limit
        ]
        return Scene(visible)


def world_to_radar(positions: np.ndarray, config: RadarConfig) -> np.ndarray:
    """Convert world coordinates (floor origin) into the radar frame.

    The world frame places the origin on the floor directly below the radar;
    the radar frame shares x/y axes but its origin is at the sensor, which is
    mounted ``config.radar_height`` metres above the floor.
    """
    positions = np.asarray(positions, dtype=float)
    shifted = positions.copy()
    shifted[..., 2] = shifted[..., 2] - config.radar_height
    return shifted


def radar_to_world(positions: np.ndarray, config: RadarConfig) -> np.ndarray:
    """Inverse of :func:`world_to_radar`."""
    positions = np.asarray(positions, dtype=float)
    shifted = positions.copy()
    shifted[..., 2] = shifted[..., 2] + config.radar_height
    return shifted


def targets_from_scatterers(
    scatterers: Sequence[Scatterer], config: RadarConfig
) -> Scene:
    """Convert body-surface scatterers (world frame) into a radar scene."""
    targets = []
    for scatterer in scatterers:
        position = world_to_radar(np.asarray(scatterer.position, dtype=float), config)
        targets.append(
            RadarTarget(
                position=position,
                velocity=np.asarray(scatterer.velocity, dtype=float),
                rcs=float(scatterer.rcs),
            )
        )
    return Scene(targets)

"""Constant false alarm rate (CFAR) detection on range-Doppler maps.

The paper's processing chain removes noise with a CFAR detector before
constructing the point cloud (Section 3.1.1).  This module implements the
classic cell-averaging CFAR (CA-CFAR) in two dimensions plus a peak-grouping
step that collapses clusters of adjacent detections onto local maxima — the
same post-processing the TI mmWave SDK applies before emitting points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np
from scipy.ndimage import maximum_filter, uniform_filter

__all__ = [
    "CfarConfig",
    "ca_cfar_2d",
    "ca_cfar_2d_batch",
    "group_peaks",
    "detect_peaks",
    "detect_peaks_batch",
]


@dataclass(frozen=True)
class CfarConfig:
    """CA-CFAR parameters.

    Attributes
    ----------
    guard_cells:
        Half-width (in cells) of the guard window around the cell under test,
        excluded from the noise estimate, per dimension ``(range, doppler)``.
    training_cells:
        Half-width of the training window used to estimate the local noise
        floor, per dimension.
    threshold_db:
        Detection threshold above the estimated noise floor, in dB.
    max_detections:
        Upper bound on the number of detections returned per frame (strongest
        kept), mirroring the point budget of the TI firmware.
    """

    guard_cells: Tuple[int, int] = (2, 2)
    training_cells: Tuple[int, int] = (8, 4)
    threshold_db: float = 9.0
    max_detections: int = 96

    def __post_init__(self) -> None:
        for value in (*self.guard_cells, *self.training_cells):
            if value < 0:
                raise ValueError("CFAR window sizes must be non-negative")
        if self.training_cells[0] + self.training_cells[1] == 0:
            raise ValueError("CFAR needs a non-empty training window")
        if self.max_detections < 1:
            raise ValueError("max_detections must be >= 1")


def _local_noise_estimate(power: np.ndarray, config: CfarConfig) -> np.ndarray:
    """Estimate the local noise floor of each cell from its training ring.

    Implemented with two uniform filters: the mean over the full
    training+guard window minus the mean over the guard window, which is the
    standard separable formulation of 2-D CA-CFAR.  Accepts either one
    ``(R, D)`` map or a ``(B, R, D)`` stack — a window size of one along the
    batch axis keeps every frame's estimate independent.
    """
    guard_r, guard_d = config.guard_cells
    train_r, train_d = config.training_cells

    outer_size = (2 * (guard_r + train_r) + 1, 2 * (guard_d + train_d) + 1)
    inner_size = (2 * guard_r + 1, 2 * guard_d + 1)
    if power.ndim == 3:
        outer_size = (1, *outer_size)
        inner_size = (1, *inner_size)

    outer_mean = uniform_filter(power, size=outer_size, mode="nearest")
    inner_mean = uniform_filter(power, size=inner_size, mode="nearest")

    outer_count = outer_size[-2] * outer_size[-1]
    inner_count = inner_size[-2] * inner_size[-1]
    training_count = outer_count - inner_count

    noise = (outer_mean * outer_count - inner_mean * inner_count) / training_count
    return np.maximum(noise, 1e-12)


def _cfar_mask(power: np.ndarray, config: CfarConfig) -> np.ndarray:
    """Shared CA-CFAR thresholding for 2-D maps and 3-D stacks."""
    noise = _local_noise_estimate(power, config)
    threshold = noise * 10.0 ** (config.threshold_db / 10.0)
    return power > threshold


def ca_cfar_2d(power: np.ndarray, config: CfarConfig | None = None) -> np.ndarray:
    """Run 2-D cell-averaging CFAR and return a boolean detection mask."""
    config = config if config is not None else CfarConfig()
    power = np.asarray(power, dtype=float)
    if power.ndim != 2:
        raise ValueError(f"CFAR expects a 2-D power map, got shape {power.shape}")
    return _cfar_mask(power, config)


def ca_cfar_2d_batch(power: np.ndarray, config: CfarConfig | None = None) -> np.ndarray:
    """Batched CA-CFAR over ``(B, R, D)`` power maps.

    Shares the noise-estimate and threshold formulas with
    :func:`ca_cfar_2d`, so each batch entry equals the per-frame mask.
    """
    config = config if config is not None else CfarConfig()
    power = np.asarray(power, dtype=float)
    if power.ndim != 3:
        raise ValueError(f"batched CFAR expects a (B, R, D) power stack, got {power.shape}")
    return _cfar_mask(power, config)


def group_peaks(power: np.ndarray, mask: np.ndarray, neighborhood: int = 3) -> np.ndarray:
    """Keep only detections that are local maxima of the power map.

    Without grouping, a single strong reflector smears across several
    range-Doppler cells and produces a blob of detections; peak grouping
    collapses each blob to its strongest cell, as the TI SDK does.  Accepts
    one ``(R, D)`` map or a ``(B, R, D)`` stack (the grouping window never
    crosses the batch axis).
    """
    if power.shape != mask.shape:
        raise ValueError("power and mask must have identical shapes")
    size: int | tuple = neighborhood
    if power.ndim == 3:
        size = (1, neighborhood, neighborhood)
    local_max = power == maximum_filter(power, size=size, mode="nearest")
    return mask & local_max


def _top_detections(power: np.ndarray, mask: np.ndarray, max_detections: int) -> np.ndarray:
    """Extract masked cells as ``(N, 2)`` indices sorted by decreasing power."""
    indices = np.argwhere(mask)
    if indices.size == 0:
        return np.zeros((0, 2), dtype=int)
    strengths = power[indices[:, 0], indices[:, 1]]
    order = np.argsort(strengths)[::-1]
    return indices[order][:max_detections]


def detect_peaks(
    power: np.ndarray, config: CfarConfig | None = None, peak_grouping: bool = False
) -> List[Tuple[int, int]]:
    """Full CFAR detection: threshold, optionally group, and cap the peaks.

    Peak grouping (collapsing blobs to local maxima) is optional because the
    TI out-of-box firmware exposes it as a configuration switch; for human
    sensing it is usually left off so that an extended target like a torso
    contributes several points instead of one.

    Returns a list of ``(range_bin, doppler_bin)`` indices sorted by
    decreasing power.
    """
    config = config if config is not None else CfarConfig()
    mask = ca_cfar_2d(power, config)
    if peak_grouping:
        mask = group_peaks(power, mask)
    indices = _top_detections(np.asarray(power, dtype=float), mask, config.max_detections)
    return [(int(r), int(d)) for r, d in indices]


def detect_peaks_batch(
    power: np.ndarray, config: CfarConfig | None = None, peak_grouping: bool = False
) -> List[np.ndarray]:
    """Batched CFAR detection over ``(B, R, D)`` power maps.

    Thresholding (and optional peak grouping) is vectorized across the whole
    batch; only the final ragged top-K extraction runs per frame.  Returns a
    list of ``(N_b, 2)`` integer arrays of ``(range_bin, doppler_bin)``
    indices sorted by decreasing power, matching :func:`detect_peaks`.
    """
    config = config if config is not None else CfarConfig()
    power = np.asarray(power, dtype=float)
    mask = ca_cfar_2d_batch(power, config)
    if peak_grouping:
        mask = group_peaks(power, mask)
    return [
        _top_detections(frame_power, frame_mask, config.max_detections)
        for frame_mask, frame_power in zip(mask, power)
    ]

"""Constant false alarm rate (CFAR) detection on range-Doppler maps.

The paper's processing chain removes noise with a CFAR detector before
constructing the point cloud (Section 3.1.1).  This module implements the
classic cell-averaging CFAR (CA-CFAR) in two dimensions plus a peak-grouping
step that collapses clusters of adjacent detections onto local maxima — the
same post-processing the TI mmWave SDK applies before emitting points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np
from scipy.ndimage import maximum_filter, uniform_filter

__all__ = ["CfarConfig", "ca_cfar_2d", "group_peaks", "detect_peaks"]


@dataclass(frozen=True)
class CfarConfig:
    """CA-CFAR parameters.

    Attributes
    ----------
    guard_cells:
        Half-width (in cells) of the guard window around the cell under test,
        excluded from the noise estimate, per dimension ``(range, doppler)``.
    training_cells:
        Half-width of the training window used to estimate the local noise
        floor, per dimension.
    threshold_db:
        Detection threshold above the estimated noise floor, in dB.
    max_detections:
        Upper bound on the number of detections returned per frame (strongest
        kept), mirroring the point budget of the TI firmware.
    """

    guard_cells: Tuple[int, int] = (2, 2)
    training_cells: Tuple[int, int] = (8, 4)
    threshold_db: float = 9.0
    max_detections: int = 96

    def __post_init__(self) -> None:
        for value in (*self.guard_cells, *self.training_cells):
            if value < 0:
                raise ValueError("CFAR window sizes must be non-negative")
        if self.training_cells[0] + self.training_cells[1] == 0:
            raise ValueError("CFAR needs a non-empty training window")
        if self.max_detections < 1:
            raise ValueError("max_detections must be >= 1")


def _local_noise_estimate(power: np.ndarray, config: CfarConfig) -> np.ndarray:
    """Estimate the local noise floor of each cell from its training ring.

    Implemented with two uniform filters: the mean over the full
    training+guard window minus the mean over the guard window, which is the
    standard separable formulation of 2-D CA-CFAR.
    """
    guard_r, guard_d = config.guard_cells
    train_r, train_d = config.training_cells

    outer_size = (2 * (guard_r + train_r) + 1, 2 * (guard_d + train_d) + 1)
    inner_size = (2 * guard_r + 1, 2 * guard_d + 1)

    outer_mean = uniform_filter(power, size=outer_size, mode="nearest")
    inner_mean = uniform_filter(power, size=inner_size, mode="nearest")

    outer_count = outer_size[0] * outer_size[1]
    inner_count = inner_size[0] * inner_size[1]
    training_count = outer_count - inner_count

    noise = (outer_mean * outer_count - inner_mean * inner_count) / training_count
    return np.maximum(noise, 1e-12)


def ca_cfar_2d(power: np.ndarray, config: CfarConfig | None = None) -> np.ndarray:
    """Run 2-D cell-averaging CFAR and return a boolean detection mask."""
    config = config if config is not None else CfarConfig()
    power = np.asarray(power, dtype=float)
    if power.ndim != 2:
        raise ValueError(f"CFAR expects a 2-D power map, got shape {power.shape}")
    noise = _local_noise_estimate(power, config)
    threshold = noise * 10.0 ** (config.threshold_db / 10.0)
    return power > threshold


def group_peaks(power: np.ndarray, mask: np.ndarray, neighborhood: int = 3) -> np.ndarray:
    """Keep only detections that are local maxima of the power map.

    Without grouping, a single strong reflector smears across several
    range-Doppler cells and produces a blob of detections; peak grouping
    collapses each blob to its strongest cell, as the TI SDK does.
    """
    if power.shape != mask.shape:
        raise ValueError("power and mask must have identical shapes")
    local_max = power == maximum_filter(power, size=neighborhood, mode="nearest")
    return mask & local_max


def detect_peaks(
    power: np.ndarray, config: CfarConfig | None = None, peak_grouping: bool = False
) -> List[Tuple[int, int]]:
    """Full CFAR detection: threshold, optionally group, and cap the peaks.

    Peak grouping (collapsing blobs to local maxima) is optional because the
    TI out-of-box firmware exposes it as a configuration switch; for human
    sensing it is usually left off so that an extended target like a torso
    contributes several points instead of one.

    Returns a list of ``(range_bin, doppler_bin)`` indices sorted by
    decreasing power.
    """
    config = config if config is not None else CfarConfig()
    mask = ca_cfar_2d(power, config)
    if peak_grouping:
        mask = group_peaks(power, mask)
    indices = np.argwhere(mask)
    if indices.size == 0:
        return []
    strengths = power[indices[:, 0], indices[:, 1]]
    order = np.argsort(strengths)[::-1]
    indices = indices[order][: config.max_detections]
    return [(int(r), int(d)) for r, d in indices]

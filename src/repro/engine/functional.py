"""Task-batched functional execution of ``repro.nn`` models.

Meta-learning adapts one model per task, which naively means ``T`` separate
forward/backward passes per meta-iteration.  This module runs all tasks at
once: every parameter of the underlying model is replicated into a
``(tasks, ...)`` tensor, and the network is replayed *functionally* — the
module tree supplies the architecture while the per-task parameter tensors
supply the weights — using the grouped kernels
(:func:`repro.nn.conv2d_batched`, :func:`repro.nn.linear_batched`).

Because tasks are mathematically independent, backpropagating the **sum** of
per-task losses through the ``(tasks, ...)`` parameters yields exactly each
task's own gradient in its slice — no cross-task terms — which is what makes
the batched inner loop numerically equivalent to the sequential one.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence

import numpy as np

from .. import nn

__all__ = [
    "supports_batched_execution",
    "replicate_parameters",
    "batched_forward",
    "gradient_step",
    "predict_with_parameters",
    "lowrank_shapes",
    "lowrank_parameters",
    "lowrank_forward",
]


def supports_batched_execution(module: nn.Module) -> bool:
    """Whether every layer of ``module`` has a task-batched functional kernel."""
    for child in module.modules():
        if isinstance(
            child, (nn.Sequential, nn.Conv2d, nn.Linear, nn.ReLU, nn.Tanh, nn.Sigmoid, nn.Flatten)
        ):
            continue
        if isinstance(child, nn.Dropout):
            if child.p == 0.0:
                continue
            return False
        if child._modules and not child._parameters:
            continue  # pure container (e.g. PoseCNN wrapping its Sequential)
        return False
    return True


def replicate_parameters(module: nn.Module, tasks: int) -> List[nn.Tensor]:
    """Copy a module's parameters into per-task ``(tasks, ...)`` leaf tensors."""
    if tasks < 1:
        raise ValueError("tasks must be >= 1")
    replicated: List[nn.Tensor] = []
    for param in module.parameters():
        stacked = np.broadcast_to(param.data, (tasks, *param.data.shape)).copy()
        replicated.append(nn.Tensor(stacked, requires_grad=True))
    return replicated


def gradient_step(params: Sequence[nn.Tensor], learning_rate: float) -> List[nn.Tensor]:
    """One plain gradient-descent step on per-task leaf tensors.

    Returns fresh leaf tensors ``param - learning_rate * grad`` (parameters
    without a gradient are copied unchanged) and consumes the gradient
    buffers in place to avoid an extra ``(tasks, ...)``-sized temporary per
    parameter.  This is the shared update rule of the meta-learning inner
    loop (Eq. 5) and of batched population fine-tuning.
    """
    updated: List[nn.Tensor] = []
    for param in params:
        if param.grad is None:
            updated.append(nn.Tensor(param.data.copy(), requires_grad=True))
            continue
        step = param.grad
        step *= -learning_rate
        step += param.data
        param.grad = None
        updated.append(nn.Tensor(step, requires_grad=True))
    return updated


def batched_forward(
    module: nn.Module, params: Sequence[nn.Tensor], x: nn.Tensor
) -> nn.Tensor:
    """Run ``module`` functionally with per-task parameters.

    Parameters
    ----------
    module:
        The architecture template (a :class:`repro.nn.Sequential` or a module
        tree of supported layers).  Its own parameters are **not** used.
    params:
        Per-task parameter tensors in ``module.parameters()`` order; each has
        shape ``(tasks, *original_shape)``.
    x:
        Input tensor of shape ``(tasks, batch, ...)``.

    Returns
    -------
    Output tensor of shape ``(tasks, batch, out_features)``.
    """
    iterator = iter(params)
    out = _forward_module(module, iterator, x)
    leftover = next(iterator, None)
    if leftover is not None:
        raise ValueError("more per-task parameters supplied than the module consumes")
    return out


def predict_with_parameters(
    module: nn.Module, parameters: Sequence[np.ndarray], features: np.ndarray
) -> np.ndarray:
    """Inference with an explicit parameter set, leaving ``module`` untouched.

    This is how the serving layer predicts with per-user adapted weights:
    the module supplies only the architecture, ``parameters`` (plain arrays
    in ``module.parameters()`` order) supply the weights, and the module's
    own state is neither read nor mutated.  Returns the flat ``(batch, out)``
    predictions for ``(batch, ...)`` features.
    """
    expected = sum(1 for _ in module.parameters())
    if len(parameters) != expected:
        raise ValueError(
            f"module has {expected} parameters but {len(parameters)} were supplied"
        )
    params = [nn.Tensor(np.asarray(p, dtype=float)[None]) for p in parameters]
    with nn.no_grad():
        out = batched_forward(module, params, nn.Tensor(np.asarray(features)[None]))
    return out.numpy()[0]


def lowrank_shapes(module: nn.Module) -> List[tuple]:
    """``(fan_out, fan_in)`` of every adaptable weight, in layer order.

    Convolution weights count with their im2col lowering: ``fan_in`` is the
    patch width ``in_channels * kh * kw``.  Biases are not adaptable under
    low-rank adaptation (the shared base bias is served as-is), so they do
    not appear here.
    """
    shapes: List[tuple] = []
    for child in module.modules():
        if isinstance(child, nn.Conv2d):
            out_channels, in_channels, kh, kw = child.weight.shape
            shapes.append((int(out_channels), int(in_channels * kh * kw)))
        elif isinstance(child, nn.Linear):
            out_features, in_features = child.weight.shape
            shapes.append((int(out_features), int(in_features)))
    return shapes


def lowrank_parameters(
    module: nn.Module, rank: int, task_seeds: Sequence[int]
) -> List[nn.Tensor]:
    """Fresh rank-``rank`` factor tensors for ``len(task_seeds)`` tasks.

    Returns ``[a_0, b_0, a_1, b_1, ...]`` — one ``(tasks, rank, fan_in)``
    down-projection and one ``(tasks, fan_out, rank)`` up-projection per
    adaptable layer, all with ``requires_grad=True``.  Every task's ``a``
    rows are drawn from its own :class:`numpy.random.Generator` seeded by
    ``task_seeds[t]`` (layers consume the stream in order), so a task's
    initialization — and therefore its whole adaptation trajectory — is
    bitwise independent of which other tasks share the grouped call.  The
    ``b`` factors start at zero, the standard low-rank init: the delta is
    exactly zero until the first update, and the first gradient step flows
    through ``b``.
    """
    if rank < 1:
        raise ValueError("rank must be >= 1")
    if not task_seeds:
        raise ValueError("at least one task seed is required")
    shapes = lowrank_shapes(module)
    if not shapes:
        raise ValueError("module has no adaptable Conv2d/Linear layers")
    rngs = [np.random.default_rng(int(seed)) for seed in task_seeds]
    factors: List[nn.Tensor] = []
    for fan_out, fan_in in shapes:
        a = np.stack(
            [rng.normal(0.0, 1.0 / np.sqrt(fan_in), size=(rank, fan_in)) for rng in rngs]
        )
        b = np.zeros((len(task_seeds), fan_out, rank))
        factors.append(nn.Tensor(a, requires_grad=True))
        factors.append(nn.Tensor(b, requires_grad=True))
    return factors


def lowrank_forward(
    module: nn.Module,
    base_params: Sequence[nn.Tensor],
    factors: Sequence[nn.Tensor],
    x: nn.Tensor,
) -> nn.Tensor:
    """Run ``module`` functionally as shared base + per-task rank-r deltas.

    ``base_params`` are the *shared* parameters in ``module.parameters()``
    order (typically frozen snapshots — no task axis); ``factors`` is the
    ``[a, b]`` interleaving produced by :func:`lowrank_parameters`.  Each
    Conv2d/Linear layer runs the grouped low-rank kernels
    (:func:`repro.nn.conv2d_lowrank_batched`,
    :func:`repro.nn.linear_lowrank_batched`), so gradients reach only the
    factors — the arithmetic behind ``scope="lora"`` adaptation.

    ``x`` has shape ``(tasks, batch, ...)``; the result is
    ``(tasks, batch, out_features)``.
    """
    base = iter(base_params)
    pairs = iter(factors)
    out = _lowrank_forward_module(module, base, pairs, x)
    if next(base, None) is not None:
        raise ValueError("more base parameters supplied than the module consumes")
    if next(pairs, None) is not None:
        raise ValueError("more low-rank factors supplied than the module consumes")
    return out


def _lowrank_forward_module(
    module: nn.Module,
    base: Iterator[nn.Tensor],
    factors: Iterator[nn.Tensor],
    x: nn.Tensor,
) -> nn.Tensor:
    if isinstance(module, nn.Sequential):
        for child in module:
            x = _lowrank_forward_module(child, base, factors, x)
        return x
    if isinstance(module, nn.Conv2d):
        weight = _take(base, module, "weight")
        bias = _take(base, module, "bias") if module.bias is not None else None
        a = _take(factors, module, "a")
        b = _take(factors, module, "b")
        return nn.conv2d_lowrank_batched(
            x, weight, a, b, bias=bias, stride=module.stride, padding=module.padding
        )
    if isinstance(module, nn.Linear):
        weight = _take(base, module, "weight")
        bias = _take(base, module, "bias") if module.bias is not None else None
        a = _take(factors, module, "a")
        b = _take(factors, module, "b")
        return nn.linear_lowrank_batched(x, weight, a, b, bias=bias)
    if isinstance(module, nn.ReLU):
        return x.relu()
    if isinstance(module, nn.Tanh):
        return x.tanh()
    if isinstance(module, nn.Sigmoid):
        return x.sigmoid()
    if isinstance(module, nn.Flatten):
        return x.reshape(x.shape[0], x.shape[1], -1)
    if isinstance(module, nn.Dropout) and module.p == 0.0:
        return x
    children = list(module._modules.values())
    if children and not module._parameters:
        for child in children:
            x = _lowrank_forward_module(child, base, factors, x)
        return x
    raise NotImplementedError(f"no low-rank kernel for layer {module!r}")


def _take(iterator: Iterator[nn.Tensor], layer: nn.Module, name: str) -> nn.Tensor:
    try:
        return next(iterator)
    except StopIteration:  # pragma: no cover - defensive
        raise ValueError(f"ran out of per-task parameters at {layer!r} ({name})") from None


def _forward_module(
    module: nn.Module, params: Iterator[nn.Tensor], x: nn.Tensor
) -> nn.Tensor:
    if isinstance(module, nn.Sequential):
        for child in module:
            x = _forward_module(child, params, x)
        return x
    if isinstance(module, nn.Conv2d):
        weight = _take(params, module, "weight")
        bias = _take(params, module, "bias") if module.bias is not None else None
        return nn.conv2d_batched(x, weight, bias, stride=module.stride, padding=module.padding)
    if isinstance(module, nn.Linear):
        weight = _take(params, module, "weight")
        bias = _take(params, module, "bias") if module.bias is not None else None
        return nn.linear_batched(x, weight, bias)
    if isinstance(module, nn.ReLU):
        return x.relu()
    if isinstance(module, nn.Tanh):
        return x.tanh()
    if isinstance(module, nn.Sigmoid):
        return x.sigmoid()
    if isinstance(module, nn.Flatten):
        # Per-task flatten keeps the (tasks, batch) axes and folds the rest.
        return x.reshape(x.shape[0], x.shape[1], -1)
    if isinstance(module, nn.Dropout) and module.p == 0.0:
        return x
    # Modules with children but no kernel of their own (e.g. PoseCNN wrapping
    # a Sequential) recurse into their children in registration order.
    children = list(module._modules.values())
    if children and not module._parameters:
        for child in children:
            x = _forward_module(child, params, x)
        return x
    raise NotImplementedError(
        f"no task-batched kernel for layer {module!r}; "
        "run with BatchPlan(vectorized=False) instead"
    )

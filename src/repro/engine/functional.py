"""Task-batched functional execution of ``repro.nn`` models.

Meta-learning adapts one model per task, which naively means ``T`` separate
forward/backward passes per meta-iteration.  This module runs all tasks at
once: every parameter of the underlying model is replicated into a
``(tasks, ...)`` tensor, and the network is replayed *functionally* — the
module tree supplies the architecture while the per-task parameter tensors
supply the weights — using the grouped kernels
(:func:`repro.nn.conv2d_batched`, :func:`repro.nn.linear_batched`).

Because tasks are mathematically independent, backpropagating the **sum** of
per-task losses through the ``(tasks, ...)`` parameters yields exactly each
task's own gradient in its slice — no cross-task terms — which is what makes
the batched inner loop numerically equivalent to the sequential one.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence

import numpy as np

from .. import nn

__all__ = [
    "supports_batched_execution",
    "replicate_parameters",
    "batched_forward",
    "gradient_step",
    "predict_with_parameters",
]


def supports_batched_execution(module: nn.Module) -> bool:
    """Whether every layer of ``module`` has a task-batched functional kernel."""
    for child in module.modules():
        if isinstance(
            child, (nn.Sequential, nn.Conv2d, nn.Linear, nn.ReLU, nn.Tanh, nn.Sigmoid, nn.Flatten)
        ):
            continue
        if isinstance(child, nn.Dropout):
            if child.p == 0.0:
                continue
            return False
        if child._modules and not child._parameters:
            continue  # pure container (e.g. PoseCNN wrapping its Sequential)
        return False
    return True


def replicate_parameters(module: nn.Module, tasks: int) -> List[nn.Tensor]:
    """Copy a module's parameters into per-task ``(tasks, ...)`` leaf tensors."""
    if tasks < 1:
        raise ValueError("tasks must be >= 1")
    replicated: List[nn.Tensor] = []
    for param in module.parameters():
        stacked = np.broadcast_to(param.data, (tasks, *param.data.shape)).copy()
        replicated.append(nn.Tensor(stacked, requires_grad=True))
    return replicated


def gradient_step(params: Sequence[nn.Tensor], learning_rate: float) -> List[nn.Tensor]:
    """One plain gradient-descent step on per-task leaf tensors.

    Returns fresh leaf tensors ``param - learning_rate * grad`` (parameters
    without a gradient are copied unchanged) and consumes the gradient
    buffers in place to avoid an extra ``(tasks, ...)``-sized temporary per
    parameter.  This is the shared update rule of the meta-learning inner
    loop (Eq. 5) and of batched population fine-tuning.
    """
    updated: List[nn.Tensor] = []
    for param in params:
        if param.grad is None:
            updated.append(nn.Tensor(param.data.copy(), requires_grad=True))
            continue
        step = param.grad
        step *= -learning_rate
        step += param.data
        param.grad = None
        updated.append(nn.Tensor(step, requires_grad=True))
    return updated


def batched_forward(
    module: nn.Module, params: Sequence[nn.Tensor], x: nn.Tensor
) -> nn.Tensor:
    """Run ``module`` functionally with per-task parameters.

    Parameters
    ----------
    module:
        The architecture template (a :class:`repro.nn.Sequential` or a module
        tree of supported layers).  Its own parameters are **not** used.
    params:
        Per-task parameter tensors in ``module.parameters()`` order; each has
        shape ``(tasks, *original_shape)``.
    x:
        Input tensor of shape ``(tasks, batch, ...)``.

    Returns
    -------
    Output tensor of shape ``(tasks, batch, out_features)``.
    """
    iterator = iter(params)
    out = _forward_module(module, iterator, x)
    leftover = next(iterator, None)
    if leftover is not None:
        raise ValueError("more per-task parameters supplied than the module consumes")
    return out


def predict_with_parameters(
    module: nn.Module, parameters: Sequence[np.ndarray], features: np.ndarray
) -> np.ndarray:
    """Inference with an explicit parameter set, leaving ``module`` untouched.

    This is how the serving layer predicts with per-user adapted weights:
    the module supplies only the architecture, ``parameters`` (plain arrays
    in ``module.parameters()`` order) supply the weights, and the module's
    own state is neither read nor mutated.  Returns the flat ``(batch, out)``
    predictions for ``(batch, ...)`` features.
    """
    expected = sum(1 for _ in module.parameters())
    if len(parameters) != expected:
        raise ValueError(
            f"module has {expected} parameters but {len(parameters)} were supplied"
        )
    params = [nn.Tensor(np.asarray(p, dtype=float)[None]) for p in parameters]
    with nn.no_grad():
        out = batched_forward(module, params, nn.Tensor(np.asarray(features)[None]))
    return out.numpy()[0]


def _take(iterator: Iterator[nn.Tensor], layer: nn.Module, name: str) -> nn.Tensor:
    try:
        return next(iterator)
    except StopIteration:  # pragma: no cover - defensive
        raise ValueError(f"ran out of per-task parameters at {layer!r} ({name})") from None


def _forward_module(
    module: nn.Module, params: Iterator[nn.Tensor], x: nn.Tensor
) -> nn.Tensor:
    if isinstance(module, nn.Sequential):
        for child in module:
            x = _forward_module(child, params, x)
        return x
    if isinstance(module, nn.Conv2d):
        weight = _take(params, module, "weight")
        bias = _take(params, module, "bias") if module.bias is not None else None
        return nn.conv2d_batched(x, weight, bias, stride=module.stride, padding=module.padding)
    if isinstance(module, nn.Linear):
        weight = _take(params, module, "weight")
        bias = _take(params, module, "bias") if module.bias is not None else None
        return nn.linear_batched(x, weight, bias)
    if isinstance(module, nn.ReLU):
        return x.relu()
    if isinstance(module, nn.Tanh):
        return x.tanh()
    if isinstance(module, nn.Sigmoid):
        return x.sigmoid()
    if isinstance(module, nn.Flatten):
        # Per-task flatten keeps the (tasks, batch) axes and folds the rest.
        return x.reshape(x.shape[0], x.shape[1], -1)
    if isinstance(module, nn.Dropout) and module.p == 0.0:
        return x
    # Modules with children but no kernel of their own (e.g. PoseCNN wrapping
    # a Sequential) recurse into their children in registration order.
    children = list(module._modules.values())
    if children and not module._parameters:
        for child in children:
            x = _forward_module(child, params, x)
        return x
    raise NotImplementedError(
        f"no task-batched kernel for layer {module!r}; "
        "run with BatchPlan(vectorized=False) instead"
    )

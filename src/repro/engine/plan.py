"""The :class:`BatchPlan` — the engine's view of the execution policy.

Historically the batched execution engine owned its own plan object.  The
policy half (workers, shard layout, vectorization, cache policy, backend)
now lives in :class:`repro.runtime.ExecutionPlan`, which every subsystem —
dataset generation, the engine, serving, the experiment drivers — consults.
``BatchPlan`` remains as a thin compatibility façade: a subclass adding no
fields, so every existing construction site, ``isinstance`` check and
``dataclasses.replace`` call keeps working, while new code can type against
the runtime class directly.

The estimator (:class:`repro.core.FusePoseEstimator`), the meta-trainer and
the experiment drivers all consume the same plan, so one object switches the
whole stack between the vectorized and the per-frame reference paths — and,
since the runtime refactor, between serial and multi-process execution.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..runtime.plan import ExecutionPlan

__all__ = ["BatchPlan"]


@dataclass(frozen=True)
class BatchPlan(ExecutionPlan):
    """Compatibility façade over :class:`repro.runtime.ExecutionPlan`.

    See the runtime class for the field documentation.  ``BatchPlan()`` and
    ``BatchPlan.reference()`` behave exactly as they always have; the
    ``workers`` / ``shard_size`` fields added by the runtime layer default to
    serial execution.
    """

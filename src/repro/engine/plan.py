"""The :class:`BatchPlan` — one object describing how the hot path executes.

A plan bundles the knobs of the batched execution engine: how many radar
frames are pushed through the vectorized signal chain per chunk, whether
built feature maps are memoized in the content-addressed cache, and which
radar backend produces the point clouds.  The estimator
(:class:`repro.core.FusePoseEstimator`), the meta-trainer and the experiment
drivers all consume the same plan, so one object switches the whole stack
between the vectorized and the per-frame reference paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["BatchPlan"]


@dataclass(frozen=True)
class BatchPlan:
    """Execution plan of the batched engine.

    Attributes
    ----------
    vectorized:
        Master switch: ``True`` (default) routes radar synthesis, feature
        building and meta-learning inner loops through the batched kernels;
        ``False`` selects the frame-at-a-time / task-at-a-time reference
        paths (used by the equivalence tests and throughput benchmarks).
    batch_size:
        Number of radar frames processed per vectorized chunk.  Bounds peak
        memory of the signal-chain backend (each frame's data cube is a
        ``(samples, chirps, antennas)`` complex array).
    cache_policy:
        ``"memory"`` memoizes built feature/label arrays in the in-process
        content-addressed LRU cache (:mod:`repro.dataset.cache`);
        ``"disk"`` additionally spills entries to ``cache_dir`` so other
        processes (and later runs) reuse them; ``"none"`` rebuilds on every
        call.
    cache_capacity:
        Maximum number of cached feature datasets when caching is enabled.
    cache_dir:
        Directory of the on-disk cache tier (required when ``cache_policy``
        is ``"disk"``).
    cache_disk_capacity:
        Maximum number of persisted entries before the oldest are evicted.
    backend:
        Optional radar-backend override (``"geometric"`` or ``"signal"``)
        applied by engine helpers that construct pipelines; ``None`` keeps
        the caller's configured backend.
    """

    vectorized: bool = True
    batch_size: int = 64
    cache_policy: str = "memory"
    cache_capacity: int = 16
    cache_dir: Optional[str] = None
    cache_disk_capacity: int = 64
    backend: Optional[str] = None

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.cache_policy not in ("none", "memory", "disk"):
            raise ValueError(f"unknown cache policy '{self.cache_policy}'")
        if self.cache_policy == "disk" and not self.cache_dir:
            raise ValueError("cache_policy='disk' requires cache_dir")
        if self.cache_capacity < 1:
            raise ValueError("cache_capacity must be >= 1")
        if self.cache_disk_capacity < 1:
            raise ValueError("cache_disk_capacity must be >= 1")
        if self.backend is not None and self.backend not in ("geometric", "signal"):
            raise ValueError(f"unknown radar backend '{self.backend}'")

    @classmethod
    def reference(cls) -> "BatchPlan":
        """The per-frame / per-task reference plan (no vectorization, no cache)."""
        return cls(vectorized=False, cache_policy="none")

"""Batched radar execution: whole trajectories through the signal chain.

:class:`BatchedRadarEngine` is the engine-side entry point for turning a
posed motion trajectory into a point-cloud sequence.  It samples the body
scatterers for every frame at once, packs them into a
:class:`repro.radar.SceneBatch` and pushes chunks of ``plan.batch_size``
frames through the selected radar backend's ``process_batch`` kernel; with
``plan.vectorized`` disabled it reproduces the historical frame-at-a-time
loop, which the throughput benchmark uses as its baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..body.motion import MotionTrajectory
from ..body.surface import BodyScatteringModel
from ..radar.config import RadarConfig
from ..radar.pipeline import RadarPipeline, make_pipeline
from ..radar.pointcloud import PointCloudSequence
from ..radar.scene import scene_batch_from_world
from .plan import BatchPlan

__all__ = ["BatchedRadarEngine"]


@dataclass
class BatchedRadarEngine:
    """Executes the radar stage of the hot path according to a plan."""

    plan: BatchPlan = field(default_factory=BatchPlan)

    def make_pipeline(
        self, backend: str, config: Optional[RadarConfig] = None, **kwargs
    ) -> RadarPipeline:
        """Build a radar pipeline, honouring the plan's backend override."""
        backend = self.plan.backend if self.plan.backend is not None else backend
        return make_pipeline(backend, config=config, **kwargs)

    def point_cloud_sequence(
        self,
        scattering: BodyScatteringModel,
        trajectory: MotionTrajectory,
        pipeline: RadarPipeline,
        rng: np.random.Generator,
    ) -> PointCloudSequence:
        """Convert a posed trajectory into one point cloud per frame.

        The vectorized path samples every frame's scatterers in one call and
        feeds ``plan.batch_size``-frame chunks through the backend's batched
        kernel; the reference path mirrors the original per-frame loop.
        """
        frame_rate = trajectory.frame_rate
        sequence = PointCloudSequence(frame_period=1.0 / frame_rate)

        if not self.plan.vectorized:
            for index in range(trajectory.num_frames):
                positions, velocities = trajectory.frame(index)
                scatterers = scattering.scatterers(positions, velocities, rng)
                sequence.append(
                    pipeline.process_scatterers(
                        scatterers,
                        rng,
                        timestamp=float(trajectory.timestamps[index]),
                        frame_index=index,
                    )
                )
            return sequence

        positions, velocities, rcs = scattering.scatterer_batch(
            trajectory.positions, trajectory.velocities, rng
        )
        num_frames = trajectory.num_frames
        for start in range(0, num_frames, self.plan.batch_size):
            stop = min(start + self.plan.batch_size, num_frames)
            chunk = scene_batch_from_world(
                positions[start:stop],
                velocities[start:stop],
                rcs[start:stop],
                pipeline.config,
            )
            batch = pipeline.process_batch(
                chunk,
                rng,
                timestamps=trajectory.timestamps[start:stop],
                frame_indices=np.arange(start, stop),
            )
            for frame in batch.to_frames():
                sequence.append(frame)
        return sequence

"""``repro.engine`` — the vectorized batched execution engine.

The engine is the architectural seam between "what the reproduction
computes" and "how fast it computes it".  Its pieces:

* :class:`BatchPlan` — one frozen object selecting batch size, feature-cache
  policy, worker processes and radar backend, consumed by
  :class:`repro.core.FusePoseEstimator` and the experiment drivers.  Since
  the runtime refactor it is a thin façade over
  :class:`repro.runtime.ExecutionPlan`, the shared execution-policy layer;
* :class:`BatchedRadarEngine` — whole-trajectory radar execution over
  ``(batch, frame, ...)`` arrays;
* task-batched functional model execution
  (:func:`replicate_parameters` / :func:`batched_forward`) used by the
  meta-learning and fine-tuning task loops.

Every vectorized path has a per-frame / per-task reference twin selected by
``BatchPlan.reference()``; the equivalence tests in ``tests/engine`` pin the
two together numerically, and ``benchmarks/test_engine_throughput.py``
tracks the speedup as ``BENCH_engine.json``.
"""

from .functional import (
    batched_forward,
    lowrank_forward,
    lowrank_parameters,
    lowrank_shapes,
    predict_with_parameters,
    replicate_parameters,
    supports_batched_execution,
)
from .plan import BatchPlan
from .radar import BatchedRadarEngine

__all__ = [
    "BatchPlan",
    "BatchedRadarEngine",
    "batched_forward",
    "lowrank_forward",
    "lowrank_parameters",
    "lowrank_shapes",
    "predict_with_parameters",
    "replicate_parameters",
    "supports_batched_execution",
]

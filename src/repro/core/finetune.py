"""Online fine-tuning of a deployed model (Section 3.3.3 / 4.3).

After deployment, a small number of frames from a new user or movement
(:math:`D_{test}`, 200 frames in the paper) become available.  Fine-tuning
updates the model on those frames — either every layer or only the final
fully connected layer — while the evaluation tracks two curves per epoch:

* MAE on the remaining (unseen) new-user frames — how quickly the model
  adapts (Figures 3b / 4b);
* MAE on the original training distribution — how much the model forgets
  (Figures 3a / 4a).

The FUSE claim is that a meta-learned initialization adapts within ~5 epochs
without catastrophic forgetting, whereas the supervised baseline needs ~4x
more epochs and forgets the original data in the process.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from .. import nn
from ..dataset.loader import ArrayDataset, BatchLoader
from ..engine.functional import (
    batched_forward,
    gradient_step,
    replicate_parameters,
    supports_batched_execution,
)
from .evaluation import evaluate_model, mae_per_axis_cm
from .models import PoseCNN
from .training import TrainingConfig

__all__ = ["FineTuneConfig", "FineTuneResult", "FineTuner", "finetune_population"]


@dataclass(frozen=True)
class FineTuneConfig:
    """Hyper-parameters of online fine-tuning.

    Attributes
    ----------
    epochs:
        Number of passes over the fine-tuning frames (the paper sweeps up to
        50 and reports 5-epoch / intersection / 50-epoch snapshots).
    scope:
        ``"all"`` fine-tunes every layer; ``"last"`` only the final FC layer.
    optimizer:
        ``"sgd"`` (default) performs plain gradient steps — the same update
        rule as the meta-learning inner loop, i.e. the step the FUSE
        initialization was optimized for; ``"adam"`` is also supported.
        Both models in a comparison always use the same setting.
    learning_rate / batch_size / loss:
        Optimization settings (L1 loss throughout, as in the paper).
    """

    epochs: int = 50
    scope: str = "all"
    optimizer: str = "sgd"
    learning_rate: float = 1e-2
    batch_size: int = 32
    loss: str = "l1"
    shuffle: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")
        if self.scope not in ("all", "last"):
            raise ValueError(f"unknown fine-tuning scope '{self.scope}'")
        if self.optimizer not in ("sgd", "adam"):
            raise ValueError(f"unknown fine-tuning optimizer '{self.optimizer}'")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")


@dataclass
class FineTuneResult:
    """Per-epoch MAE curves produced by fine-tuning.

    ``curves`` maps an evaluation-set name (e.g. ``"new"``, ``"original"``)
    to the list of MAE values in cm, one entry per epoch; index 0 of
    ``initial_mae_cm`` holds the pre-fine-tuning value of each curve.
    """

    curves: Dict[str, List[float]] = field(default_factory=dict)
    initial_mae_cm: Dict[str, float] = field(default_factory=dict)
    train_loss: List[float] = field(default_factory=list)
    scope: str = "all"

    def curve_with_initial(self, name: str) -> List[float]:
        """Return ``[initial, epoch1, epoch2, ...]`` for one evaluation set."""
        if name not in self.curves:
            raise KeyError(f"no curve named '{name}'; available: {sorted(self.curves)}")
        return [self.initial_mae_cm[name], *self.curves[name]]

    def mae_at_epoch(self, name: str, epoch: int) -> float:
        """MAE of curve ``name`` after ``epoch`` fine-tuning epochs (0 = initial)."""
        series = self.curve_with_initial(name)
        epoch = min(epoch, len(series) - 1)
        return series[epoch]


class FineTuner:
    """Fine-tunes a trained :class:`PoseCNN` on a small adaptation set."""

    def __init__(self, model: PoseCNN, config: Optional[FineTuneConfig] = None) -> None:
        self.model = model
        self.config = config if config is not None else FineTuneConfig()
        self._loss_fn = TrainingConfig(loss=self.config.loss).loss_function()
        parameters = (
            model.parameters() if self.config.scope == "all" else model.last_layer_parameters()
        )
        if self.config.optimizer == "adam":
            self.optimizer: nn.Optimizer = nn.Adam(parameters, lr=self.config.learning_rate)
        else:
            self.optimizer = nn.SGD(parameters, lr=self.config.learning_rate)

    def finetune(
        self,
        adaptation_data: ArrayDataset,
        evaluation_sets: Optional[Dict[str, ArrayDataset]] = None,
        epochs: Optional[int] = None,
        verbose: bool = False,
    ) -> FineTuneResult:
        """Fine-tune on ``adaptation_data`` while tracking MAE curves.

        Parameters
        ----------
        adaptation_data:
            The small set of new-scenario frames available online.
        evaluation_sets:
            Named feature/label datasets evaluated after every epoch;
            typically ``{"new": ..., "original": ...}``.
        epochs:
            Override the configured epoch count.
        """
        if len(adaptation_data) == 0:
            raise ValueError("adaptation_data must not be empty")
        epochs = epochs if epochs is not None else self.config.epochs
        evaluation_sets = evaluation_sets or {}

        result = FineTuneResult(scope=self.config.scope)
        for name, dataset in evaluation_sets.items():
            result.curves[name] = []
            result.initial_mae_cm[name] = evaluate_model(self.model, dataset).mae_average

        loader = BatchLoader(
            adaptation_data,
            batch_size=min(self.config.batch_size, len(adaptation_data)),
            shuffle=self.config.shuffle,
            seed=self.config.seed,
        )
        for epoch in range(1, epochs + 1):
            self.model.train()
            losses: List[float] = []
            for features, labels in loader:
                self.optimizer.zero_grad()
                self.model.zero_grad()
                predictions = self.model(nn.Tensor(features))
                loss = self._loss_fn(predictions, nn.Tensor(labels))
                loss.backward()
                self.optimizer.step()
                losses.append(loss.item())
            result.train_loss.append(float(np.mean(losses)) if losses else 0.0)

            for name, dataset in evaluation_sets.items():
                report = evaluate_model(self.model, dataset)
                result.curves[name].append(report.mae_average)
            if verbose:
                summary = ", ".join(
                    f"{name} {result.curves[name][-1]:.2f} cm" for name in evaluation_sets
                )
                print(f"fine-tune epoch {epoch:3d}: loss {result.train_loss[-1]:.4f} {summary}")
        return result


def finetune_population(
    models: Sequence[PoseCNN],
    adaptation_sets: Sequence[ArrayDataset],
    evaluation_sets: Optional[Sequence[Dict[str, ArrayDataset]]] = None,
    config: Optional[FineTuneConfig] = None,
    epochs: Optional[int] = None,
) -> List[FineTuneResult]:
    """Fine-tune several deployed models on their own adaptation sets at once.

    This batches the *scenario* dimension of online adaptation: every model
    (e.g. the supervised baseline and the meta-learned FUSE model, or one
    model per newly onboarded user) is adapted in parallel through the
    task-batched functional kernels, sharing one grouped forward/backward
    call per mini-batch instead of a Python loop over scenarios.

    Restrictions compared to :class:`FineTuner`: all models must share one
    architecture, all adaptation sets must have equal sizes (so mini-batches
    stack), and only the ``"all"`` scope with the plain SGD update rule is
    supported — exactly the setting the FUSE initialization was optimized
    for.  Results match running :class:`FineTuner` per model with the same
    configuration (shared shuffling seed) up to floating-point reduction
    order.  The adapted parameters are written back into each model.
    """
    config = config if config is not None else FineTuneConfig()
    if config.scope != "all":
        raise ValueError("finetune_population only supports scope='all'")
    if config.optimizer != "sgd":
        raise ValueError("finetune_population only supports the sgd optimizer")
    if len(models) == 0 or len(models) != len(adaptation_sets):
        raise ValueError("one adaptation set per model is required")
    sizes = {len(dataset) for dataset in adaptation_sets}
    if len(sizes) != 1 or 0 in sizes:
        raise ValueError("adaptation sets must be non-empty and equally sized")
    template = models[0]
    if not supports_batched_execution(template):
        raise ValueError("model architecture has no task-batched kernels")
    evaluation_sets = list(evaluation_sets) if evaluation_sets is not None else [
        {} for _ in models
    ]
    if len(evaluation_sets) != len(models):
        raise ValueError("one evaluation-set mapping per model is required")

    num_models = len(models)
    epochs = epochs if epochs is not None else config.epochs
    size = sizes.pop()
    batch_size = min(config.batch_size, size)

    # Stack per-model parameters: slice t holds model t's weights.
    params = replicate_parameters(template, num_models)
    for slot, model in enumerate(models):
        for stacked, param in zip(params, model.parameters()):
            stacked.data[slot] = param.data

    features = np.stack([dataset.features for dataset in adaptation_sets])
    labels = np.stack([dataset.labels for dataset in adaptation_sets])

    results = [FineTuneResult(scope=config.scope) for _ in models]

    def evaluate_all() -> List[Dict[str, float]]:
        maes: List[Dict[str, float]] = [{} for _ in models]
        all_names = sorted(set().union(*(named.keys() for named in evaluation_sets)))
        with nn.no_grad():
            for name in all_names:
                datasets = [named.get(name) for named in evaluation_sets]
                eval_sizes = {len(d) for d in datasets if d is not None}
                if all(d is not None for d in datasets) and len(eval_sizes) == 1:
                    # Every model evaluates an equally sized set under this
                    # name (the common case): one stacked forward for all.
                    x = nn.Tensor(np.stack([d.features for d in datasets]))
                    predictions = batched_forward(template, params, x).numpy()
                    for slot, dataset in enumerate(datasets):
                        maes[slot][name] = float(
                            mae_per_axis_cm(predictions[slot], dataset.labels).mean()
                        )
                    continue
                for slot, dataset in enumerate(datasets):
                    if dataset is None:
                        continue
                    single = [nn.Tensor(p.data[slot][None]) for p in params]
                    predictions = batched_forward(
                        template, single, nn.Tensor(dataset.features[None])
                    ).numpy()[0]
                    maes[slot][name] = float(
                        mae_per_axis_cm(predictions, dataset.labels).mean()
                    )
        return maes

    for slot, row in enumerate(evaluate_all()):
        for name, value in row.items():
            results[slot].curves[name] = []
            results[slot].initial_mae_cm[name] = value

    for epoch in range(epochs):
        # Mirror BatchLoader's shuffling so per-model curves match the
        # sequential FineTuner run with the same seed.
        indices = np.arange(size)
        if config.shuffle:
            indices = np.random.default_rng(config.seed + epoch).permutation(size)
        epoch_losses = np.zeros(num_models)
        num_batches = 0
        for start in range(0, size, batch_size):
            batch = indices[start : start + batch_size]
            x = nn.Tensor(features[:, batch])
            y = nn.Tensor(labels[:, batch])
            predictions = batched_forward(template, params, x)
            losses = nn.per_task_loss(predictions, y, config.loss)
            losses.sum().backward()
            epoch_losses += losses.data
            num_batches += 1
            params = gradient_step(params, config.learning_rate)

        for slot, row in enumerate(evaluate_all()):
            results[slot].train_loss.append(float(epoch_losses[slot] / max(num_batches, 1)))
            for name, value in row.items():
                results[slot].curves[name].append(value)

    # Write the adapted parameters back into the deployed models.
    for slot, model in enumerate(models):
        for stacked, param in zip(params, model.parameters()):
            param.data = stacked.data[slot].copy()
    return results

"""Online fine-tuning of a deployed model (Section 3.3.3 / 4.3).

After deployment, a small number of frames from a new user or movement
(:math:`D_{test}`, 200 frames in the paper) become available.  Fine-tuning
updates the model on those frames — either every layer or only the final
fully connected layer — while the evaluation tracks two curves per epoch:

* MAE on the remaining (unseen) new-user frames — how quickly the model
  adapts (Figures 3b / 4b);
* MAE on the original training distribution — how much the model forgets
  (Figures 3a / 4a).

The FUSE claim is that a meta-learned initialization adapts within ~5 epochs
without catastrophic forgetting, whereas the supervised baseline needs ~4x
more epochs and forgets the original data in the process.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from .. import nn
from ..dataset.loader import ArrayDataset, BatchLoader
from .evaluation import evaluate_model
from .models import PoseCNN
from .training import TrainingConfig

__all__ = ["FineTuneConfig", "FineTuneResult", "FineTuner"]


@dataclass(frozen=True)
class FineTuneConfig:
    """Hyper-parameters of online fine-tuning.

    Attributes
    ----------
    epochs:
        Number of passes over the fine-tuning frames (the paper sweeps up to
        50 and reports 5-epoch / intersection / 50-epoch snapshots).
    scope:
        ``"all"`` fine-tunes every layer; ``"last"`` only the final FC layer.
    optimizer:
        ``"sgd"`` (default) performs plain gradient steps — the same update
        rule as the meta-learning inner loop, i.e. the step the FUSE
        initialization was optimized for; ``"adam"`` is also supported.
        Both models in a comparison always use the same setting.
    learning_rate / batch_size / loss:
        Optimization settings (L1 loss throughout, as in the paper).
    """

    epochs: int = 50
    scope: str = "all"
    optimizer: str = "sgd"
    learning_rate: float = 1e-2
    batch_size: int = 32
    loss: str = "l1"
    shuffle: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")
        if self.scope not in ("all", "last"):
            raise ValueError(f"unknown fine-tuning scope '{self.scope}'")
        if self.optimizer not in ("sgd", "adam"):
            raise ValueError(f"unknown fine-tuning optimizer '{self.optimizer}'")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")


@dataclass
class FineTuneResult:
    """Per-epoch MAE curves produced by fine-tuning.

    ``curves`` maps an evaluation-set name (e.g. ``"new"``, ``"original"``)
    to the list of MAE values in cm, one entry per epoch; index 0 of
    ``initial_mae_cm`` holds the pre-fine-tuning value of each curve.
    """

    curves: Dict[str, List[float]] = field(default_factory=dict)
    initial_mae_cm: Dict[str, float] = field(default_factory=dict)
    train_loss: List[float] = field(default_factory=list)
    scope: str = "all"

    def curve_with_initial(self, name: str) -> List[float]:
        """Return ``[initial, epoch1, epoch2, ...]`` for one evaluation set."""
        if name not in self.curves:
            raise KeyError(f"no curve named '{name}'; available: {sorted(self.curves)}")
        return [self.initial_mae_cm[name], *self.curves[name]]

    def mae_at_epoch(self, name: str, epoch: int) -> float:
        """MAE of curve ``name`` after ``epoch`` fine-tuning epochs (0 = initial)."""
        series = self.curve_with_initial(name)
        epoch = min(epoch, len(series) - 1)
        return series[epoch]


class FineTuner:
    """Fine-tunes a trained :class:`PoseCNN` on a small adaptation set."""

    def __init__(self, model: PoseCNN, config: Optional[FineTuneConfig] = None) -> None:
        self.model = model
        self.config = config if config is not None else FineTuneConfig()
        self._loss_fn = TrainingConfig(loss=self.config.loss).loss_function()
        parameters = (
            model.parameters() if self.config.scope == "all" else model.last_layer_parameters()
        )
        if self.config.optimizer == "adam":
            self.optimizer: nn.Optimizer = nn.Adam(parameters, lr=self.config.learning_rate)
        else:
            self.optimizer = nn.SGD(parameters, lr=self.config.learning_rate)

    def finetune(
        self,
        adaptation_data: ArrayDataset,
        evaluation_sets: Optional[Dict[str, ArrayDataset]] = None,
        epochs: Optional[int] = None,
        verbose: bool = False,
    ) -> FineTuneResult:
        """Fine-tune on ``adaptation_data`` while tracking MAE curves.

        Parameters
        ----------
        adaptation_data:
            The small set of new-scenario frames available online.
        evaluation_sets:
            Named feature/label datasets evaluated after every epoch;
            typically ``{"new": ..., "original": ...}``.
        epochs:
            Override the configured epoch count.
        """
        if len(adaptation_data) == 0:
            raise ValueError("adaptation_data must not be empty")
        epochs = epochs if epochs is not None else self.config.epochs
        evaluation_sets = evaluation_sets or {}

        result = FineTuneResult(scope=self.config.scope)
        for name, dataset in evaluation_sets.items():
            result.curves[name] = []
            result.initial_mae_cm[name] = evaluate_model(self.model, dataset).mae_average

        loader = BatchLoader(
            adaptation_data,
            batch_size=min(self.config.batch_size, len(adaptation_data)),
            shuffle=self.config.shuffle,
            seed=self.config.seed,
        )
        for epoch in range(1, epochs + 1):
            self.model.train()
            losses: List[float] = []
            for features, labels in loader:
                self.optimizer.zero_grad()
                self.model.zero_grad()
                predictions = self.model(nn.Tensor(features))
                loss = self._loss_fn(predictions, nn.Tensor(labels))
                loss.backward()
                self.optimizer.step()
                losses.append(loss.item())
            result.train_loss.append(float(np.mean(losses)) if losses else 0.0)

            for name, dataset in evaluation_sets.items():
                report = evaluate_model(self.model, dataset)
                result.curves[name].append(report.mae_average)
            if verbose:
                summary = ", ".join(
                    f"{name} {result.curves[name][-1]:.2f} cm" for name in evaluation_sets
                )
                print(f"fine-tune epoch {epoch:3d}: loss {result.train_loss[-1]:.4f} {summary}")
        return result
